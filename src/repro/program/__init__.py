"""Synthetic program substrate: model, generator, trace executor."""

from .generator import GeneratorConfig, generate_program
from .model import CallSiteDef, FunctionDef, LibraryDef, Program
from .trace import (
    PhaseSpec,
    ThreadSpec,
    TraceExecutor,
    WorkloadSpec,
    run_workload,
)

__all__ = [
    "CallSiteDef",
    "FunctionDef",
    "GeneratorConfig",
    "LibraryDef",
    "PhaseSpec",
    "Program",
    "ThreadSpec",
    "TraceExecutor",
    "WorkloadSpec",
    "generate_program",
    "run_workload",
]
