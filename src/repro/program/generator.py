"""Parameterized synthetic-program generator.

Builds :class:`~repro.program.model.Program` instances whose *dynamic*
call graphs have prescribed characteristics — node/edge counts, indirect
call sites with many or few targets, recursion cycles, tail calls, PLT
calls into (possibly lazily loaded) libraries, and Zipf-skewed hot paths.
The benchmark suite (``repro.bench``) instantiates one configuration per
SPEC CPU2006 / Parsec 2.1 program, seeded from the paper's Table 1.

Construction strategy: functions are numbered ``0..n-1`` with ``main = 0``
and direct call sites target strictly higher indices, so the base
structure is acyclic; recursion is added as explicit cycle-closing sites
(targeting lower indices).  Points-to false positives are sampled from
functions the site never calls dynamically — including a pool of
*static-only* functions that exist in the binary but are never executed,
reproducing the node/edge inflation PCCE suffers in Table 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.events import CallKind
from .model import CallSiteDef, FunctionDef, LibraryDef, Program


@dataclass
class GeneratorConfig:
    """Knobs for synthetic-program construction.

    The defaults produce a small, well-behaved program; the benchmark
    suite overrides nearly everything per benchmark.
    """

    name: str = "synthetic"
    seed: int = 0
    #: Dynamically reachable functions (the DACCE "Nodes" column).
    functions: int = 60
    #: Dynamic call edges to aim for (the DACCE "Edges" column).
    edges: int = 140
    #: Additional functions that exist statically but never run.
    static_only_functions: int = 30
    #: Additional never-taken call sites among static-only/dynamic code.
    static_only_edges: int = 80
    #: Never-taken *backward* edges among hot functions.  Each closes a
    #: static cycle through the hot region, so PCCE's frequency-blind
    #: classification may trap a hot edge as a back edge — the paper's
    #: perlbench/xalancbmk mechanism (Section 6.4).  DACCE never sees
    #: these edges (they never execute).
    hot_cycle_edges: int = 0
    #: Fraction of call sites that are indirect.
    indirect_fraction: float = 0.08
    #: Dynamic target count range for indirect sites.
    indirect_targets: tuple = (2, 4)
    #: Extra points-to-only targets per indirect site (false positives).
    pointsto_false_targets: tuple = (2, 8)
    #: Cycle-closing recursive call sites.
    recursive_sites: int = 2
    #: Selection weight of each recursive site relative to the Zipf
    #: weights of normal sites (which start at 1.0).  Controls how often
    #: recursion is *entered*; the workload's ``recursion_affinity``
    #: controls how deep a recursion burst goes once entered.
    recursion_weight: float = 0.05
    #: Fraction of direct sites that are tail calls.
    tail_fraction: float = 0.03
    #: Library functions reached through PLT call sites.
    library_functions: int = 8
    #: Number of shared libraries those functions spread over.
    libraries: int = 2
    #: Whether the last library is loaded lazily (dlopen plugin).
    lazy_library: bool = False
    #: Zipf skew for call-site weights (higher = hotter hot paths).
    hot_skew: float = 1.2
    #: Maximum out-call-sites per function.
    max_fanout: int = 8


def generate_program(config: Optional[GeneratorConfig] = None) -> Program:
    """Build a program for ``config`` (deterministic in ``config.seed``)."""
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    builder = _Builder(config, rng)
    return builder.build()


class _Builder:
    def __init__(self, config: GeneratorConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.next_callsite = 0
        self.functions: List[FunctionDef] = []

    # ------------------------------------------------------------------
    def build(self) -> Program:
        config = self.config
        app_count = max(2, config.functions)
        lib_count = max(0, config.library_functions)
        static_count = max(0, config.static_only_functions)

        libraries = self._make_libraries(app_count, lib_count)
        self._make_app_functions(app_count)
        self._make_library_functions(app_count, lib_count, libraries)
        self._make_static_only_functions(app_count + lib_count, static_count)

        self._wire_direct_edges(app_count)
        self._stabilise_hot_backbone(app_count)
        self._wire_indirect_edges(app_count)
        self._wire_plt_edges(app_count, lib_count)
        self._wire_recursion(app_count)
        self._wire_static_only_edges(app_count, lib_count, static_count)
        self._wire_hot_cycle_edges(app_count)
        self._ensure_reachable(app_count)

        return Program(
            self.functions,
            main=0,
            libraries=libraries,
            name=config.name,
        )

    # ------------------------------------------------------------------
    def _make_libraries(self, app_count: int, lib_count: int) -> List[LibraryDef]:
        config = self.config
        libraries: List[LibraryDef] = []
        if lib_count <= 0 or config.libraries <= 0:
            return libraries
        per_library = max(1, lib_count // config.libraries)
        for index in range(config.libraries):
            start = app_count + index * per_library
            end = app_count + lib_count if index == config.libraries - 1 else (
                start + per_library
            )
            members = list(range(start, min(end, app_count + lib_count)))
            if not members:
                continue
            libraries.append(
                LibraryDef(
                    name="lib%d.so" % index,
                    functions=members,
                    load_lazily=(
                        config.lazy_library and index == config.libraries - 1
                    ),
                )
            )
        return libraries

    def _make_app_functions(self, app_count: int) -> None:
        for fid in range(app_count):
            name = "main" if fid == 0 else "fn_%03d" % fid
            self.functions.append(
                FunctionDef(fid, name, work=self.rng.uniform(0.5, 2.0))
            )

    def _make_library_functions(
        self, app_count: int, lib_count: int, libraries: List[LibraryDef]
    ) -> None:
        owner = {}
        for library in libraries:
            for fid in library.functions:
                owner[fid] = library.name
        for offset in range(lib_count):
            fid = app_count + offset
            self.functions.append(
                FunctionDef(
                    fid,
                    "lib_fn_%03d" % fid,
                    library=owner.get(fid),
                    work=self.rng.uniform(0.5, 2.0),
                )
            )

    def _make_static_only_functions(self, base: int, count: int) -> None:
        for offset in range(count):
            fid = base + offset
            self.functions.append(FunctionDef(fid, "cold_fn_%03d" % fid))

    # ------------------------------------------------------------------
    def _new_site_id(self) -> int:
        self.next_callsite += 1
        return self.next_callsite

    def _weight(self, rank: int) -> float:
        """Zipf-style weight for the ``rank``-th site of a function."""
        return 1.0 / ((rank + 1) ** self.config.hot_skew)

    def _wire_direct_edges(self, app_count: int) -> None:
        """Forward (acyclic) direct call sites among application code."""
        config = self.config
        budget = max(app_count - 1, config.edges - self._reserved_edges())
        # First guarantee connectivity: every non-main function gets one
        # caller with a lower index.
        for fid in range(1, app_count):
            caller = self.rng.randrange(0, fid)
            self._add_direct_site(caller, fid, rank=len(
                self.functions[caller].callsites))
            budget -= 1
        attempts = 0
        while budget > 0 and attempts < budget * 20:
            attempts += 1
            caller = self.rng.randrange(0, app_count - 1)
            if len(self.functions[caller].callsites) >= config.max_fanout:
                continue
            callee = self.rng.randrange(caller + 1, app_count)
            # main never tail-calls: its frame must survive the whole run.
            is_tail = caller != 0 and self.rng.random() < config.tail_fraction
            self._add_direct_site(
                caller,
                callee,
                rank=len(self.functions[caller].callsites),
                tail=is_tail,
            )
            budget -= 1

    def _reserved_edges(self) -> int:
        """Edges wired by the indirect / PLT / recursion passes."""
        config = self.config
        indirect_sites = int(config.edges * config.indirect_fraction)
        mean_targets = sum(config.indirect_targets) / 2.0
        return int(
            indirect_sites * mean_targets
            + config.library_functions
            + config.recursive_sites
        )

    def _add_direct_site(
        self, caller: int, callee: int, rank: int, tail: bool = False
    ) -> None:
        kind = CallKind.TAIL if tail else CallKind.NORMAL
        self.functions[caller].callsites.append(
            CallSiteDef(
                id=self._new_site_id(),
                kind=kind,
                targets=[callee],
                weight=self._weight(rank),
            )
        )

    def _wire_indirect_edges(self, app_count: int) -> None:
        config = self.config
        site_count = int(config.edges * config.indirect_fraction)
        total = len(self.functions)
        for _ in range(site_count):
            caller = self.rng.randrange(0, app_count - 1)
            lo, hi = config.indirect_targets
            want = self.rng.randint(lo, max(lo, hi))
            candidates = list(range(caller + 1, app_count))
            if not candidates:
                continue
            self.rng.shuffle(candidates)
            targets = candidates[:want]
            false_lo, false_hi = config.pointsto_false_targets
            n_false = self.rng.randint(false_lo, max(false_lo, false_hi))
            # Points-to false positives point *forward* (or into the
            # never-executed pool); accidental static cycles through hot
            # code are modelled explicitly by hot_cycle_edges instead.
            false_pool = list(range(caller + 1, total))
            false_targets = [
                fid
                for fid in self.rng.sample(
                    false_pool, min(n_false, len(false_pool))
                )
                if fid not in targets
            ]
            # Indirect target popularity is flatter than call-site
            # popularity: vtable/function-pointer dispatch spreads over
            # its targets (the many-target x264 case needs deep chains).
            weights = [1.0 / ((i + 1) ** 0.7) for i in range(len(targets))]
            self.functions[caller].callsites.append(
                CallSiteDef(
                    id=self._new_site_id(),
                    kind=CallKind.INDIRECT,
                    targets=targets,
                    target_weights=weights,
                    static_targets=targets + false_targets,
                    weight=self._weight(
                        len(self.functions[caller].callsites)
                    ),
                )
            )

    def _wire_plt_edges(self, app_count: int, lib_count: int) -> None:
        for offset in range(lib_count):
            callee = app_count + offset
            caller = self.rng.randrange(0, app_count)
            self.functions[caller].callsites.append(
                CallSiteDef(
                    id=self._new_site_id(),
                    kind=CallKind.PLT,
                    targets=[callee],
                    weight=self._weight(len(self.functions[caller].callsites)),
                )
            )

    def _stabilise_hot_backbone(self, app_count: int) -> None:
        """Pin the rank-0 chain's weights across phase reshuffles.

        Real programs keep the same hot kernel for their whole run;
        phases modulate everything around it.  Without a stable backbone
        the notion of "hot edges" (which both the adaptive encoder and
        PCCE's profile ordering depend on) would dissolve at every phase.
        """
        for fid in self._hot_chain(app_count):
            sites = [s for s in self.functions[fid].callsites if s.weight > 0]
            if sites:
                sites[0].phase_stable = True

    def _hot_chain(self, app_count: int, limit: int = 24) -> List[int]:
        """The rank-0 call chain from main — the hottest path at start."""
        chain = [0]
        seen = {0}
        current = 0
        while len(chain) < limit:
            sites = [
                s
                for s in self.functions[current].callsites
                if s.weight > 0 and len(s.targets) == 1
            ]
            if not sites:
                break
            target = sites[0].targets[0]
            if target in seen or target >= app_count:
                break
            chain.append(target)
            seen.add(target)
            current = target
        return chain

    def _wire_recursion(self, app_count: int) -> None:
        """Cycle-closing call sites: some self-recursive, some mutual.

        Sites are placed along the rank-0 hot chain from main so they
        actually execute, and are phase-stable (a program's recursive
        kernels do not move around).  The small ``recursion_weight``
        keeps entry into recursion rare, matching the low ccStack rates
        of Table 1.
        """
        if app_count <= 1:
            return
        chain = self._hot_chain(app_count)
        # Only functions that already make other calls may host a
        # recursive site: otherwise the site is the host's *only*
        # callable site and recursion stops being weight-proportional.
        candidates = [
            fid
            for fid in chain[1:]
            if any(s.weight > 0 for s in self.functions[fid].callsites)
        ] or [c for c in chain[1:]] or [min(1, app_count - 1)]
        # Spread the sites over the whole chain — the walk dwells at
        # moderate depth, so recursion anchored only near main would
        # hardly ever execute.
        k = max(1, self.config.recursive_sites)
        hosts = [
            candidates[(i * (len(candidates) - 1)) // max(1, k - 1)]
            if k > 1 else candidates[len(candidates) // 2]
            for i in range(k)
        ]
        for index in range(self.config.recursive_sites):
            position = index % len(hosts)
            caller = hosts[position]
            if index % 2 == 0 or position == 0:
                callee = caller  # direct self recursion
            else:
                callee = hosts[position - 1]  # mutual, one chain hop up
            self.functions[caller].callsites.append(
                CallSiteDef(
                    id=self._new_site_id(),
                    kind=CallKind.NORMAL,
                    targets=[callee],
                    weight=self.config.recursion_weight,
                    phase_stable=True,
                    recursive=True,
                )
            )

    def _wire_static_only_edges(
        self, app_count: int, lib_count: int, static_count: int
    ) -> None:
        """Never-executed call sites that only PCCE's static view sees.

        Forward-directed (caller index < callee index) so they inflate
        PCCE's node/edge counts and encoding space without accidentally
        closing cycles; cycle-closing dead edges are added separately by
        :meth:`_wire_hot_cycle_edges` in a controlled dose.
        """
        if static_count <= 0 and self.config.static_only_edges <= 0:
            return
        total = app_count + lib_count + static_count
        if total < 2:
            return
        for _ in range(self.config.static_only_edges):
            caller = self.rng.randrange(0, total - 1)
            callee = self.rng.randrange(caller + 1, total)
            site = CallSiteDef(
                id=self._new_site_id(),
                kind=CallKind.NORMAL,
                targets=[callee],
                weight=0.0,  # never selected by the executor
            )
            self.functions[caller].callsites.append(site)

    def _wire_hot_cycle_edges(self, app_count: int) -> None:
        """Dead backward edges closing static cycles through hot code.

        Each edge runs from a hot function back to a hotter (lower-index)
        one, so the complete static graph contains a cycle whose other
        edges are the real, frequently executed forward chain.  A
        frequency-blind DFS classification will trap one edge of each
        such cycle — with a fair chance it is a *hot* one, which is
        exactly how never-executed code inflates PCCE's ccStack traffic
        in the paper (Section 6.4), while DACCE's dynamic graph, which
        never contains the dead edge, keeps the hot chain encoded.
        """
        if self.config.hot_cycle_edges <= 0 or app_count < 4:
            return
        # Pair each dead edge with a *real* hot edge u -> v (a rank-0/1
        # direct site of a hot function), closing the 2-cycle v -> u.  A
        # frequency-blind DFS then traps whichever of the two it scans
        # second — about half the time the hot one.
        chain = self._hot_chain(app_count)
        candidates = list(zip(chain, chain[1:]))
        hot_limit = max(4, min(app_count, 2 + app_count // 8))
        for fid in range(hot_limit):
            for rank, site in enumerate(self.functions[fid].callsites):
                if (
                    site.weight > 0
                    and site.kind is CallKind.NORMAL
                    and rank < 2
                    and len(site.targets) == 1
                    and site.targets[0] != fid
                ):
                    candidates.append((fid, site.targets[0]))
        if not candidates:
            return
        for _ in range(self.config.hot_cycle_edges):
            caller_of_hot, hot_target = candidates[
                self.rng.randrange(len(candidates))
            ]
            site = CallSiteDef(
                id=self._new_site_id(),
                kind=CallKind.NORMAL,
                targets=[caller_of_hot],
                weight=0.0,  # dead code: never executed
            )
            self.functions[hot_target].callsites.append(site)

    def _ensure_reachable(self, app_count: int) -> None:
        """Guarantee main has at least one callable site."""
        main = self.functions[0]
        if not any(site.weight > 0 for site in main.callsites):
            main.callsites.append(
                CallSiteDef(
                    id=self._new_site_id(),
                    targets=[1] if app_count > 1 else [0],
                    weight=1.0,
                )
            )
