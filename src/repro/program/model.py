"""Synthetic program model — the substrate the engines run on.

The paper instruments x86 binaries; the reproduction replaces the binary
with an explicit model: a set of functions, each containing call sites of
a given kind (normal / indirect / tail / PLT), plus the shared libraries
whose functions are only reachable after loading.  The trace executor
walks this model stochastically, producing the event stream the engines
consume.

The model also carries *static* information that only the PCCE baseline
is allowed to see: the conservative points-to target sets of indirect
call sites (a superset of the dynamically realised targets — the false
positives the paper's Issue 1 complains about) and functions/call sites
that exist in the binary but are never executed (Issue 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.errors import ProgramModelError
from ..core.events import CallKind, CallSiteId, FunctionId


@dataclass
class CallSiteDef:
    """A call site inside a function body.

    ``targets`` are the *dynamically possible* callees with selection
    weights; for direct calls there is exactly one.  ``static_targets``
    is what conservative points-to analysis would report for an indirect
    site — always a superset of ``targets`` (may include functions the
    program never calls).  ``weight`` is the relative probability that
    the executor picks this site when the containing function makes a
    call.
    """

    id: CallSiteId
    kind: CallKind = CallKind.NORMAL
    targets: List[FunctionId] = field(default_factory=list)
    target_weights: List[float] = field(default_factory=list)
    static_targets: List[FunctionId] = field(default_factory=list)
    weight: float = 1.0
    #: Phase reshuffles leave this site's weight untouched (used for
    #: recursion sites, whose intensity is a stable program property).
    phase_stable: bool = False
    #: A designated cycle-closing (recursive) site.  The executor's
    #: recursion-burst machinery only engages on these.
    recursive: bool = False

    def __post_init__(self) -> None:
        if not self.targets:
            raise ProgramModelError("call site %d has no targets" % self.id)
        if not self.target_weights:
            self.target_weights = [1.0] * len(self.targets)
        if len(self.target_weights) != len(self.targets):
            raise ProgramModelError(
                "call site %d: %d targets but %d weights"
                % (self.id, len(self.targets), len(self.target_weights))
            )
        if not self.static_targets:
            self.static_targets = list(self.targets)


@dataclass
class FunctionDef:
    """A function: an id, a name, an owning library, and its call sites.

    ``work`` scales the baseline cycles attributed per activation by the
    cost model (leaf compute functions do more work per call than thin
    wrappers).
    """

    id: FunctionId
    name: str
    callsites: List[CallSiteDef] = field(default_factory=list)
    library: Optional[str] = None
    work: float = 1.0

    def callsite(self, callsite_id: CallSiteId) -> CallSiteDef:
        for site in self.callsites:
            if site.id == callsite_id:
                return site
        raise ProgramModelError(
            "function %s has no call site %d" % (self.name, callsite_id)
        )


@dataclass
class LibraryDef:
    """A shared library: functions only callable once it is loaded.

    ``load_lazily`` models ``dlopen`` — the library enters the process
    image mid-run, which static approaches cannot anticipate (Issue 2).
    """

    name: str
    functions: List[FunctionId] = field(default_factory=list)
    load_lazily: bool = False


class Program:
    """A complete synthetic program: functions, libraries, entry point."""

    def __init__(
        self,
        functions: Sequence[FunctionDef],
        main: FunctionId = 0,
        libraries: Sequence[LibraryDef] = (),
        name: str = "program",
    ):
        self.name = name
        self.main = main
        self._functions: Dict[FunctionId, FunctionDef] = {}
        for function in functions:
            if function.id in self._functions:
                raise ProgramModelError("duplicate function id %d" % function.id)
            self._functions[function.id] = function
        if main not in self._functions:
            raise ProgramModelError("entry function %d is not defined" % main)
        self.libraries: Dict[str, LibraryDef] = {
            library.name: library for library in libraries
        }
        self._callsite_owner: Dict[CallSiteId, FunctionId] = {}
        for function in self._functions.values():
            for site in function.callsites:
                if site.id in self._callsite_owner:
                    raise ProgramModelError(
                        "call site %d appears in two functions" % site.id
                    )
                self._callsite_owner[site.id] = function.id
        self._validate_targets()

    def _validate_targets(self) -> None:
        for function in self._functions.values():
            for site in function.callsites:
                for target in site.targets + site.static_targets:
                    if target not in self._functions:
                        raise ProgramModelError(
                            "call site %d targets unknown function %d"
                            % (site.id, target)
                        )

    # ------------------------------------------------------------------
    def function(self, function_id: FunctionId) -> FunctionDef:
        try:
            return self._functions[function_id]
        except KeyError:
            raise ProgramModelError(
                "unknown function %d" % function_id
            ) from None

    def functions(self) -> Iterator[FunctionDef]:
        return iter(self._functions.values())

    def function_ids(self) -> List[FunctionId]:
        return list(self._functions.keys())

    @property
    def num_functions(self) -> int:
        return len(self._functions)

    def callsite_owner(self, callsite_id: CallSiteId) -> FunctionId:
        try:
            return self._callsite_owner[callsite_id]
        except KeyError:
            raise ProgramModelError(
                "unknown call site %d" % callsite_id
            ) from None

    def callsite(self, callsite_id: CallSiteId) -> CallSiteDef:
        owner = self.callsite_owner(callsite_id)
        return self._functions[owner].callsite(callsite_id)

    def all_callsites(self) -> Iterator[Tuple[FunctionDef, CallSiteDef]]:
        for function in self._functions.values():
            for site in function.callsites:
                yield function, site

    def library_of(self, function_id: FunctionId) -> Optional[str]:
        return self.function(function_id).library

    # ------------------------------------------------------------------
    # static views (PCCE only)
    # ------------------------------------------------------------------
    def static_edges(
        self, include_lazy_libraries: bool = False
    ) -> List[Tuple[FunctionId, FunctionId, CallSiteId, CallKind]]:
        """The complete static call graph (Issue 1's over-approximation).

        Indirect sites contribute one edge per *points-to* target.  Lazily
        loaded libraries are invisible to static analysis unless
        ``include_lazy_libraries`` — PCCE cannot see ``dlopen`` plugins.
        """
        hidden = set()
        if not include_lazy_libraries:
            for library in self.libraries.values():
                if library.load_lazily:
                    hidden.update(library.functions)
        edges = []
        for function, site in self.all_callsites():
            if function.id in hidden:
                continue
            for target in site.static_targets:
                if target in hidden:
                    continue
                edges.append((function.id, target, site.id, site.kind))
        return edges

    def __repr__(self) -> str:
        return "Program(%r, functions=%d, libraries=%d)" % (
            self.name,
            self.num_functions,
            len(self.libraries),
        )
