"""Stochastic trace executor — turns a program model into an event stream.

The executor is a stack machine: per thread it keeps the live frame stack
and repeatedly either calls (picking a call site by weight, then a target
by target weight) or returns, steering the stack depth toward a target
with a logistic policy.  It reproduces the dynamic phenomena the paper's
evaluation depends on:

* Zipf-skewed hot call paths (site weights from the generator),
* execution *phases* that reshuffle the hot paths mid-run — the paper's
  trigger "the frequently invoked call paths have changed",
* recursion with a two-knob model matching Table 1's shape: *entry* into
  recursion is rare (tiny weights on cycle-closing sites) while a burst,
  once entered, keeps recursing with probability ``recursion_affinity``
  — giving the low ccStack rates but non-trivial depths of
  445.gobmk/483.xalancbmk (Figure 10),
* lazily loaded libraries whose PLT targets only bind at runtime,
* multiple threads with interleaved scheduling and ``clone`` events,
* periodic sampling (the libpfm4 module of Section 6.1).

Everything is deterministic in the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.columnar import EventColumns
from ..core.errors import TraceError
from ..core.events import (
    EV_CALL,
    EV_LIBRARY_LOAD,
    EV_RETURN,
    EV_SAMPLE,
    EV_THREAD_EXIT,
    EV_THREAD_START,
    KIND_CODE,
    CallKind,
    CallSiteId,
    CompactEvent,
    Event,
    FunctionId,
    ThreadId,
    inflate,
)
from .model import CallSiteDef, Program


@dataclass
class ThreadSpec:
    """A worker thread: spawned by main once ``spawn_at_call`` calls ran."""

    thread: ThreadId
    entry: FunctionId
    spawn_at_call: int = 0


@dataclass
class PhaseSpec:
    """A phase change: at ``at_call``, hot paths are reshuffled.

    Per-site weight multipliers are redrawn from an exponential
    distribution seeded with ``seed`` and indirect target preferences are
    rotated, so previously cold paths become hot — which is what makes
    the adaptive trigger 2 fire mid-run.
    """

    at_call: int
    seed: int = 1


@dataclass
class WorkloadSpec:
    """Executor parameters."""

    calls: int = 50_000
    seed: int = 0
    #: Emit a SampleEvent every this many calls (0 disables sampling).
    sample_period: int = 97
    target_depth: int = 12
    depth_scale: float = 3.0
    max_depth: int = 220
    #: Probability that a recursion burst continues one more level once
    #: entered (entry itself is governed by recursive-site weights).
    recursion_affinity: float = 0.0
    #: Whether recursion establishes a persistent base under which normal
    #: calling continues (gobmk/xalancbmk-style long-lived recursion —
    #: high average ccStack depth, low ccStack rate) or unwinds promptly
    #: (milc-style rapid push/pop — high rate, near-zero depth).
    persistent_recursion: bool = True
    threads: List[ThreadSpec] = field(default_factory=list)
    phases: List[PhaseSpec] = field(default_factory=list)
    #: Average number of consecutive steps a thread keeps the CPU.
    scheduler_burst: int = 24
    #: Mean number of quanta between *unwind episodes*: the thread
    #: returns to (near) its bottom frame and re-descends, the way a
    #: program's main loop starts a fresh iteration.  Without this the
    #: depth-steering walk would stay inside one subtree for the whole
    #: run — real call profiles repeatedly re-enter the hot paths from
    #: the top.  0 disables episodes.
    unwind_period: int = 300
    #: Maximum consecutive tail-call replacements of one frame.  Deep
    #: forward tail chains are rare in real code (compilers rewrite the
    #: common self-tail case into loops) and would otherwise grow the
    #: logical context without bound.
    max_tail_chain: int = 3


@dataclass
class _ExecThread:
    """Executor-side per-thread state.

    ``rec_positions`` holds the stack indices of recursively entered
    frames.  The depth policy steers the stack *relative to the deepest
    recursion frame*, so a recursion burst establishes a new base under
    which normal calling continues — real recursive programs (gobmk's
    game-tree search, xalancbmk's tree walks) keep their recursion alive
    while making millions of ordinary calls beneath it, which is what
    gives Table 1's combination of high average ccStack depth and low
    ccStack operation rate.
    """

    stack: List[Tuple[FunctionId, bool]]
    onstack: Dict[FunctionId, int] = field(default_factory=dict)
    rec_positions: List[int] = field(default_factory=list)
    burst_remaining: int = 0
    persist_bases: bool = True
    unwind_to: int = 0  # >0: returning to this depth (main-loop restart)
    tail_chain: int = 0  # consecutive tail replacements of the top frame

    #: Persistent recursion bases stop stacking beyond this many levels:
    #: real recursive kernels re-enter from a bounded nesting, they do
    #: not ratchet to the stack limit.
    MAX_BASES = 10

    def push(self, function: FunctionId, recursive: bool) -> None:
        if (
            recursive
            and self.persist_bases
            and len(self.rec_positions) < self.MAX_BASES
        ):
            self.rec_positions.append(len(self.stack))
        self.stack.append((function, recursive))
        self.onstack[function] = self.onstack.get(function, 0) + 1

    def pop(self) -> FunctionId:
        function, _recursive = self.stack.pop()
        # A base is dropped exactly when the frame sitting at its
        # recorded index pops (positions are increasing, stack is LIFO).
        if self.rec_positions and self.rec_positions[-1] == len(self.stack):
            self.rec_positions.pop()
        remaining = self.onstack.get(function, 0) - 1
        if remaining <= 0:
            self.onstack.pop(function, None)
        else:
            self.onstack[function] = remaining
        return function

    def replace_top(self, function: FunctionId) -> None:
        self.pop()
        # A tail-callee frame is never a recursion-burst frame: the burst
        # frame it replaced is gone.
        self.push(function, False)

    @property
    def top(self) -> Tuple[FunctionId, bool]:
        return self.stack[-1]

    @property
    def depth(self) -> int:
        return len(self.stack)

    @property
    def effective_depth(self) -> int:
        """Frames above the deepest recursion base."""
        if not self.rec_positions:
            return len(self.stack)
        return len(self.stack) - self.rec_positions[-1]


class TraceExecutor:
    """Single-pass event generator over a program model."""

    def __init__(self, program: Program, spec: Optional[WorkloadSpec] = None):
        self.program = program
        self.spec = spec or WorkloadSpec()
        self._rng = random.Random(self.spec.seed)
        self._loaded_libraries = {
            name
            for name, library in program.libraries.items()
            if not library.load_lazily
        }
        self._site_scale: Dict[CallSiteId, float] = {}
        self._target_rotation: Dict[CallSiteId, int] = {}
        self.calls_emitted = 0

    # ------------------------------------------------------------------
    def events(self) -> Iterator[Event]:
        """Generate the full event stream as dataclass events.

        Compatibility wrapper over :meth:`compact_events` — the executor
        produces compact tuples natively (the hot-path wire format of
        ``repro.core.events``) and inflates them here for consumers that
        want the dataclass API.
        """
        for record in self.compact_events():
            yield inflate(record)

    def column_events(self, batch_size: int = 4096) -> Iterator[EventColumns]:
        """Generate the event stream as struct-of-arrays slabs.

        The columnar producer: each yielded :class:`EventColumns` holds
        up to ``batch_size`` events ready for
        ``DacceEngine.process_columns`` (see
        :func:`run_workload_columnar`).  One slab object is reused
        across yields — consume (or copy) each slab before advancing
        the iterator.
        """
        cols = EventColumns.with_capacity(batch_size)
        push = cols.push
        for record in self.compact_events():
            push(record)
            if len(cols) >= batch_size:
                yield cols
                cols.clear()
        if len(cols):
            yield cols

    def compact_events(self) -> Iterator[CompactEvent]:
        """Generate the full event stream as compact tuples (single pass).

        This is the fast producer: feed it to
        ``DacceEngine.process_batch`` (see :func:`run_workload_batched`)
        to skip per-event dataclass allocation entirely.
        """
        spec = self.spec
        threads: Dict[ThreadId, _ExecThread] = {0: self._new_thread(self.program.main)}
        pending_threads = sorted(
            spec.threads, key=lambda thread: thread.spawn_at_call
        )
        pending_phases = sorted(spec.phases, key=lambda phase: phase.at_call)
        since_sample = 0
        current: ThreadId = 0
        burst_left = spec.scheduler_burst

        while self.calls_emitted < spec.calls:
            while pending_phases and pending_phases[0].at_call <= self.calls_emitted:
                self._apply_phase(pending_phases.pop(0))
            while (
                pending_threads
                and pending_threads[0].spawn_at_call <= self.calls_emitted
            ):
                thread = pending_threads.pop(0)
                if thread.thread in threads:
                    raise TraceError("duplicate thread id %d" % thread.thread)
                entry = self._viable_entry(thread.entry)
                threads[thread.thread] = self._new_thread(entry)
                yield (EV_THREAD_START, thread.thread, 0, entry)

            burst_left -= 1
            if burst_left <= 0 or current not in threads:
                live = sorted(threads)
                current = live[self._rng.randrange(len(live))]
                burst_left = max(
                    1,
                    int(self._rng.expovariate(1.0 / max(1, spec.scheduler_burst))),
                )

            for event in self._step(current, threads[current]):
                yield event

            since_sample += 1
            if spec.sample_period and since_sample >= spec.sample_period:
                since_sample = 0
                yield (EV_SAMPLE, current)

        # Drain: unwind every thread; workers exit, main keeps frame 0.
        for thread_id in sorted(threads):
            state = threads[thread_id]
            while state.depth > 1:
                state.pop()
                yield (EV_RETURN, thread_id)
            if thread_id != 0:
                yield (EV_THREAD_EXIT, thread_id)

    def _viable_entry(self, requested: FunctionId) -> FunctionId:
        """A worker entry that can actually do work.

        Generated programs may leave the requested function with only
        dead (never-executed) call sites; a real thread pool would not
        park its workers there, so fall back to the nearest function
        with live out-calls.
        """
        def live(function_id: FunctionId) -> bool:
            return any(
                s.weight > 0
                for s in self.program.function(function_id).callsites
            )

        if live(requested):
            return requested
        for function_id in sorted(self.program.function_ids()):
            if function_id != self.program.main and live(function_id):
                return function_id
        return requested

    def _new_thread(self, entry: FunctionId) -> _ExecThread:
        state = _ExecThread(
            stack=[], persist_bases=self.spec.persistent_recursion
        )
        state.push(entry, False)
        return state

    # ------------------------------------------------------------------
    def _step(
        self, thread: ThreadId, state: _ExecThread
    ) -> Iterator[CompactEvent]:
        """One scheduling quantum: a call or a return on ``thread``."""
        spec = self.spec
        depth = state.depth

        # Unwind episodes: pop back toward the bottom frame, then resume.
        if state.unwind_to:
            if depth > state.unwind_to:
                state.pop()
                state.burst_remaining = 0
                yield (EV_RETURN, thread)
                return
            state.unwind_to = 0
        elif (
            spec.unwind_period
            and depth > 2
            and self._rng.random() < 1.0 / spec.unwind_period
        ):
            state.unwind_to = self._rng.randint(1, 2)
            state.pop()
            state.burst_remaining = 0
            yield (EV_RETURN, thread)
            return

        current_fn, frame_is_recursive = state.top
        function = self.program.function(current_fn)
        sites = self._callable_sites(
            function.callsites, depth, allow_tail=self._tail_allowed(state)
        )

        # Transient recursion (milc/GemsFDTD-style) unwinds promptly:
        # ccStack *operations* happen at the paper's rate while the
        # average ccStack depth stays near zero (Table 1's combination
        # for the non-persistent programs).
        if (
            frame_is_recursive
            and not spec.persistent_recursion
            and state.burst_remaining == 0
            and depth > 1
            and self._rng.random() < 0.85
        ):
            state.pop()
            yield (EV_RETURN, thread)
            return

        # Recursion-burst continuation: an active burst keeps taking a
        # designated cycle-closing site until its drawn length is spent.
        if state.burst_remaining > 0 and depth < spec.max_depth and sites:
            recursive = [s for s in sites if s.recursive]
            if recursive:
                site = recursive[self._rng.randrange(len(recursive))]
                yield from self._emit_call(thread, state, site)
                return
            # No cycle-closing site here; the burst fizzles out.
            state.burst_remaining = 0

        must_call = depth <= 1
        must_return = depth >= spec.max_depth or not sites
        if must_call and must_return:
            return  # leaf bottom frame: idle one quantum
        if must_return:
            do_call = False
        elif must_call:
            do_call = True
        else:
            bias = (
                state.effective_depth - spec.target_depth
            ) / spec.depth_scale
            do_call = self._rng.random() < 1.0 / (1.0 + math.exp(bias))

        if not do_call:
            state.pop()
            state.tail_chain = 0
            yield (EV_RETURN, thread)
            return

        site = self._pick_site(sites)
        yield from self._emit_call(thread, state, site)

    def _tail_allowed(self, state: _ExecThread) -> bool:
        return state.tail_chain < self.spec.max_tail_chain

    def _emit_call(
        self, thread: ThreadId, state: _ExecThread, site: CallSiteDef
    ) -> Iterator[CompactEvent]:
        target = self._pick_target(site)
        library = self.program.library_of(target)
        if library is not None and library not in self._loaded_libraries:
            self._loaded_libraries.add(library)
            yield (EV_LIBRARY_LOAD, thread, library)  # type: ignore[misc]

        caller, _ = state.top
        # Only designated cycle-closing sites engage the burst machinery;
        # classifying any on-stack target as "recursion" would create a
        # positive feedback loop at depth (everything looks recursive).
        recursive = site.recursive and site.kind is not CallKind.TAIL
        if recursive:
            if state.burst_remaining > 0:
                state.burst_remaining -= 1
            elif self.spec.recursion_affinity > 0:
                # Entering recursion: draw the burst length (geometric
                # with mean affinity / (1 - affinity) extra levels).
                a = min(0.95, self.spec.recursion_affinity)
                u = self._rng.random()
                state.burst_remaining = (
                    int(math.log(max(u, 1e-12)) / math.log(a)) if a > 0 else 0
                )
        self.calls_emitted += 1
        yield (EV_CALL, thread, site.id, caller, target, KIND_CODE[site.kind])
        if site.kind is CallKind.TAIL:
            state.replace_top(target)
            state.tail_chain += 1
        else:
            state.push(target, recursive)
            state.tail_chain = 0

    def _callable_sites(
        self, sites: List[CallSiteDef], depth: int, allow_tail: bool = True
    ) -> List[CallSiteDef]:
        """Sites the executor may take right now."""
        out = []
        for site in sites:
            if site.weight <= 0:
                continue
            if site.kind is CallKind.TAIL and (depth <= 1 or not allow_tail):
                continue  # bottom frame must survive / chain capped
            out.append(site)
        return out

    def _pick_site(self, sites: List[CallSiteDef]) -> CallSiteDef:
        weights = [
            site.weight * self._site_scale.get(site.id, 1.0) for site in sites
        ]
        return self._weighted_choice(sites, weights)

    def _pick_target(self, site: CallSiteDef) -> FunctionId:
        if len(site.targets) == 1:
            return site.targets[0]
        rotation = self._target_rotation.get(site.id, 0)
        weights = [
            site.target_weights[(i + rotation) % len(site.targets)]
            for i in range(len(site.targets))
        ]
        return self._weighted_choice(site.targets, weights)

    def _weighted_choice(self, items: List, weights: List[float]):
        total = sum(weights)
        if total <= 0:
            return items[self._rng.randrange(len(items))]
        point = self._rng.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            cumulative += weight
            if point <= cumulative:
                return item
        return items[-1]

    def _apply_phase(self, phase: PhaseSpec) -> None:
        """Reshuffle hot paths: new site multipliers, rotated targets."""
        phase_rng = random.Random(phase.seed)
        for _function, site in self.program.all_callsites():
            if site.weight <= 0 or site.phase_stable:
                continue
            # Clamp the multiplier: unbounded draws occasionally crush a
            # function's entire normal out-degree, leaving its (tiny,
            # phase-stable) recursive site dominant — a calibration
            # artifact, not a phase change.
            self._site_scale[site.id] = min(
                4.0, max(0.25, phase_rng.expovariate(1.0))
            )
            if len(site.targets) > 1:
                self._target_rotation[site.id] = phase_rng.randrange(
                    len(site.targets)
                )


def run_workload(program: Program, spec: WorkloadSpec, engine) -> None:
    """Drive ``engine`` (anything with ``on_event``) over the workload."""
    executor = TraceExecutor(program, spec)
    for event in executor.events():
        engine.on_event(event)


def run_workload_batched(
    program: Program,
    spec: WorkloadSpec,
    engine,
    batch_size: int = 4096,
) -> None:
    """Drive ``engine`` over the workload through the batched fast lane.

    Chunks the executor's compact-tuple stream into ``batch_size`` slices
    for ``engine.process_batch`` — behaviourally identical to
    :func:`run_workload` (the differential property tests assert it) but
    without per-event dataclass allocation or dispatch.
    """
    executor = TraceExecutor(program, spec)
    batch: List[CompactEvent] = []
    append = batch.append
    for record in executor.compact_events():
        append(record)
        if len(batch) >= batch_size:
            engine.process_batch(batch)
            batch.clear()
    if batch:
        engine.process_batch(batch)


def run_workload_columnar(
    program: Program,
    spec: WorkloadSpec,
    engine,
    batch_size: int = 4096,
) -> None:
    """Drive ``engine`` over the workload as struct-of-arrays slabs.

    The columnar counterpart of :func:`run_workload_batched`: events
    flow through ``engine.process_columns`` and its code-generated
    dispatch kernel.  Behaviourally identical to :func:`run_workload`
    (the differential property tests assert it); only speed changes.
    """
    executor = TraceExecutor(program, spec)
    for cols in executor.column_events(batch_size):
        engine.process_columns(cols)
