"""Render registry snapshots as Prometheus text or JSON.

Both exporters consume the plain-data snapshot produced by
:meth:`repro.obs.registry.MetricsRegistry.snapshot` — they never touch
live instruments, so an export is a consistent point-in-time view and
can be serialized off-thread.

The Prometheus exposition follows the text format 0.0.4: ``# HELP`` /
``# TYPE`` headers, cumulative ``_bucket{le=...}`` series plus ``_sum``
and ``_count`` for histograms.  Re-encoding pass reports ride along as
an info-style series (``dacce_reencode_pass_duration_seconds``) labelled
with the pass's ``gts`` and trigger ``reasons`` so a scrape shows *why*
every encoding epoch exists.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional

from .report import ReencodePassReport

SNAPSHOT_FORMAT_VERSION = 1


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in sorted(labels.items())
    )
    return "{%s}" % inner


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus_text(
    snapshot: Dict[str, Dict[str, Any]],
    pass_reports: Iterable[ReencodePassReport] = (),
) -> str:
    """Render a snapshot (plus optional pass reports) as exposition text."""
    lines: List[str] = []
    for name in sorted(snapshot):
        metric = snapshot[name]
        if metric["help"]:
            lines.append("# HELP %s %s" % (name, metric["help"]))
        lines.append("# TYPE %s %s" % (name, metric["kind"]))
        for series in metric["series"]:
            labels = series["labels"]
            if metric["kind"] == "histogram":
                for le, count in series["buckets"]:
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_number(le)
                    lines.append(
                        "%s_bucket%s %d"
                        % (name, _format_labels(bucket_labels), count)
                    )
                lines.append(
                    "%s_sum%s %s"
                    % (name, _format_labels(labels), _format_number(series["sum"]))
                )
                lines.append(
                    "%s_count%s %d" % (name, _format_labels(labels), series["count"])
                )
            else:
                lines.append(
                    "%s%s %s"
                    % (name, _format_labels(labels), _format_number(series["value"]))
                )
    lines.extend(_pass_report_lines(list(pass_reports)))
    return "\n".join(lines) + ("\n" if lines else "")


def _pass_report_lines(reports: List[ReencodePassReport]) -> List[str]:
    if not reports:
        return []
    lines = [
        "# HELP dacce_reencode_pass_duration_seconds Wall-clock duration "
        "of each re-encoding pass, labelled by gTimeStamp and trigger "
        "reasons.",
        "# TYPE dacce_reencode_pass_duration_seconds gauge",
    ]
    for report in reports:
        labels = {
            "gts": str(report.timestamp),
            "reasons": ",".join(report.reasons),
            "at_call": str(report.at_call),
            "max_id": str(report.max_id),
        }
        lines.append(
            "dacce_reencode_pass_duration_seconds%s %s"
            % (_format_labels(labels), _format_number(report.duration_seconds))
        )
    return lines


def to_json_snapshot(
    snapshot: Dict[str, Dict[str, Any]],
    pass_reports: Iterable[ReencodePassReport] = (),
    extra: Optional[Dict[str, Any]] = None,
    indent: Optional[int] = None,
) -> str:
    """Render a snapshot as one JSON document (round-trippable)."""
    document: Dict[str, Any] = {
        "format": SNAPSHOT_FORMAT_VERSION,
        "metrics": snapshot,
        "reencode_passes": [report.to_dict() for report in pass_reports],
    }
    if extra:
        document.update(extra)
    return json.dumps(document, indent=indent, sort_keys=True)


def parse_json_snapshot(text: str) -> Dict[str, Any]:
    """Parse :func:`to_json_snapshot` output back to plain data."""
    document = json.loads(text)
    if document.get("format") != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(
            "unsupported snapshot format %r" % document.get("format")
        )
    return document
