"""Span tracing and latency attribution for the engine → ingest pipeline.

A *span* is one timed unit of work: a name, a stage (the pipeline phase
it belongs to — ``emit``, ``spool``, ``send``, ``admit``, ``fold``,
``publish``, ``engine``), a wall-clock start timestamp, a monotonic
duration, and a ``trace_id``/``span_id``/``parent_id`` triple that
stitches spans into cross-process trees.  The producer opens one trace
per emitter flush and stamps its ids into the frame's additive
``trace`` field; the ingest service continues the same trace on its own
recorder, so a single ``trace_id`` covers emit → spool/send → admit →
fold → publish even though the halves run in different processes and
write different span logs.

Design rules, mirroring :mod:`repro.obs.trace`:

- **Strictly no-op when disabled.**  Call sites guard on one boolean
  (``spans.enabled``) and the shared :data:`NULL_SPANS` singleton makes
  every method a constant-time no-op, so the hot path pays a single
  attribute load when tracing is off.
- **Bounded by construction.**  Finished spans land in a bounded
  in-memory ring and are optionally mirrored as JSON Lines to any
  ``write``/``flush`` stream — including
  :class:`repro.obs.trace.RotatingTraceStream`, which also bounds the
  on-disk log.
- **No decoding on the emission path.**  Records carry compact ids,
  timestamps and counts; reconstruction (``dacce spans waterfall``) is
  a consumer concern.

One span record is one flat JSON object::

    {"trace": <32 hex>, "span": <16 hex>, "parent": <16 hex, optional>,
     "name": "emit.flush", "stage": "emit", "svc": "producer",
     "ts": <unix seconds>, "dur": <seconds>, "attrs": {...}, "schema":
     "dacce.spans.v1"}
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

logger = logging.getLogger(__name__)

SPAN_SCHEMA = "dacce.spans.v1"

DEFAULT_SPAN_CAPACITY = 4096

#: The pipeline stages a full producer → service waterfall covers.
PIPELINE_STAGES = ("emit", "spool", "send", "admit", "fold", "publish")

SpanRecord = Dict[str, Any]


def _random_hex(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


def default_id_source() -> Tuple[str, str]:
    """(trace_id, span_id) — 128-bit and 64-bit random hex."""
    return _random_hex(16), _random_hex(8)


class SpanContext:
    """The propagatable identity of a span: trace id + span id."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str):
        self.trace_id = trace_id
        self.span_id = span_id

    def to_frame_field(self) -> Dict[str, str]:
        """The additive ``trace`` field stamped into engine frames."""
        return {"id": self.trace_id, "span": self.span_id}

    @classmethod
    def from_frame_field(cls, field: Any) -> Optional["SpanContext"]:
        """Parse a frame ``trace`` field; ``None`` when absent/malformed."""
        if not isinstance(field, dict):
            return None
        trace_id = field.get("id")
        span_id = field.get("span")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        if not trace_id or not span_id:
            return None
        return cls(trace_id, span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SpanContext(trace=%s, span=%s)" % (self.trace_id, self.span_id)


class Span:
    """One in-flight unit of work.  Created by :meth:`SpanRecorder.span`."""

    __slots__ = (
        "name",
        "stage",
        "context",
        "parent_id",
        "attrs",
        "_recorder",
        "_ts",
        "_t0",
        "finished",
    )

    def __init__(
        self,
        recorder: "SpanRecorder",
        name: str,
        stage: str,
        context: SpanContext,
        parent_id: Optional[str],
        attrs: Optional[Dict[str, Any]],
    ):
        self.name = name
        self.stage = stage
        self.context = context
        self.parent_id = parent_id
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self._recorder = recorder
        self._ts = recorder._clock()
        self._t0 = recorder._monotonic()
        self.finished = False

    # ------------------------------------------------------------------
    @property
    def trace_id(self) -> str:
        return self.context.trace_id

    @property
    def span_id(self) -> str:
        return self.context.span_id

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (merged into ``attrs``)."""
        self.attrs.update(attrs)
        return self

    def finish(self) -> SpanRecord:
        """Close the span and hand the record to the recorder."""
        if self.finished:
            raise ValueError("span %r finished twice" % self.name)
        self.finished = True
        duration = self._recorder._monotonic() - self._t0
        return self._recorder._finish(self, self._ts, duration)

    # -- context-manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._recorder._pop(self)
        self.finish()


class _NullSpan:
    """Shared do-nothing span handed out by :data:`NULL_SPANS`."""

    __slots__ = ()

    name = ""
    stage = ""
    parent_id = None
    finished = True
    context = SpanContext("", "")
    trace_id = ""
    span_id = ""
    attrs: Dict[str, Any] = {}

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self) -> SpanRecord:
        return {}

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Bounded ring of finished spans with optional JSONL mirroring.

    ``svc`` names the process-level component (``producer``,
    ``ingest``, ``engine``); it is stamped into every record so a
    cross-process waterfall can attribute each span to its side of the
    wire.  ``stream`` may be any object with ``write``/``flush`` —
    a plain file or a :class:`repro.obs.trace.RotatingTraceStream`.

    Nested ``span()`` calls on the same thread auto-parent: the
    innermost open span is the default parent and supplies the trace
    id, so call sites only pass explicit context at process boundaries
    (continuing a trace propagated in a frame).
    """

    enabled = True

    def __init__(
        self,
        service: str,
        capacity: int = DEFAULT_SPAN_CAPACITY,
        stream: Optional[Any] = None,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.perf_counter,
        id_source: Callable[[], Tuple[str, str]] = default_id_source,
    ):
        if capacity <= 0:
            raise ValueError("span capacity must be positive")
        self.service = service
        self.capacity = capacity
        self.stream = stream
        self._clock = clock
        self._monotonic = monotonic
        self._id_source = id_source
        self._ring: Deque[SpanRecord] = deque(maxlen=capacity)
        self._local = threading.local()
        self._lock = threading.Lock()
        self.emitted = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> Optional[SpanContext]:
        """Context of the innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1].context if stack else None

    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        stage: str = "",
        parent: Optional[SpanContext] = None,
        new_trace: bool = False,
        **attrs: Any,
    ) -> Span:
        """Open a span; use as a context manager or call ``finish()``.

        Parent resolution: an explicit ``parent`` wins (its trace is
        continued); otherwise the innermost open span on this thread;
        otherwise a fresh root trace.  ``new_trace=True`` forces a root
        even when a span is open (the emitter's one-trace-per-flush
        discipline).
        """
        trace_id, span_id = self._id_source()
        parent_id: Optional[str] = None
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        elif not new_trace:
            current = self.current()
            if current is not None:
                trace_id = current.trace_id
                parent_id = current.span_id
        span = Span(
            self,
            name,
            stage,
            SpanContext(trace_id, span_id),
            parent_id,
            attrs or None,
        )
        self._stack().append(span)
        return span

    def record(
        self,
        name: str,
        stage: str = "",
        duration: float = 0.0,
        ts: Optional[float] = None,
        parent: Optional[SpanContext] = None,
        trace_id: Optional[str] = None,
        **attrs: Any,
    ) -> SpanRecord:
        """Record an already-measured span after the fact.

        For work timed outside the recorder (the HTTP handler measures
        admission before it knows which trace the body continues).
        """
        own_trace, span_id = self._id_source()
        parent_id: Optional[str] = None
        if parent is not None:
            own_trace = parent.trace_id
            parent_id = parent.span_id
        if trace_id is not None:
            own_trace = trace_id
        record: SpanRecord = {
            "schema": SPAN_SCHEMA,
            "trace": own_trace,
            "span": span_id,
            "name": name,
            "stage": stage,
            "svc": self.service,
            "ts": self._clock() if ts is None else ts,
            "dur": duration,
        }
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self._append(record)
        return record

    # ------------------------------------------------------------------
    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # out-of-order exit; drop it and warn once
            stack.remove(span)
            logger.warning("span %r exited out of order", span.name)

    def _finish(self, span: Span, ts: float, duration: float) -> SpanRecord:
        record: SpanRecord = {
            "schema": SPAN_SCHEMA,
            "trace": span.context.trace_id,
            "span": span.context.span_id,
            "name": span.name,
            "stage": span.stage,
            "svc": self.service,
            "ts": ts,
            "dur": duration,
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        if span.attrs:
            record["attrs"] = span.attrs
        self._append(record)
        return record

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self.emitted += 1
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
            if self.stream is not None:
                try:
                    self.stream.write(json.dumps(record, sort_keys=True) + "\n")
                except (OSError, ValueError):
                    logger.warning("span stream write failed; detaching stream")
                    self.stream = None

    # ------------------------------------------------------------------
    def spans(
        self, stage: Optional[str] = None, name: Optional[str] = None
    ) -> List[SpanRecord]:
        """Retained records, oldest first, optionally filtered."""
        with self._lock:
            records = list(self._ring)
        if stage is not None:
            records = [r for r in records if r.get("stage") == stage]
        if name is not None:
            records = [r for r in records if r.get("name") == name]
        return records

    def __len__(self) -> int:
        return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    def flush(self) -> None:
        if self.stream is not None:
            try:
                self.stream.flush()
            except (OSError, ValueError):
                self.stream = None


class _NullSpanRecorder:
    """Disabled recorder: every operation is a constant-time no-op.

    Shared singleton — never attach state to it.
    """

    enabled = False
    service = ""
    capacity = 0
    emitted = 0
    dropped = 0

    def span(self, name: str, stage: str = "", **kwargs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, stage: str = "", **kwargs: Any) -> SpanRecord:
        return {}

    def current(self) -> Optional[SpanContext]:
        return None

    def spans(self, stage: Optional[str] = None, name: Optional[str] = None) -> List[SpanRecord]:
        return []

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        return None

    def flush(self) -> None:
        return None


NULL_SPANS = _NullSpanRecorder()


# ----------------------------------------------------------------------
# Consumer-side reconstruction (``dacce spans {report,waterfall}``).


def is_span_record(record: Dict[str, Any]) -> bool:
    """True when a JSONL record looks like a ``dacce.spans.v1`` span."""
    if record.get("schema") != SPAN_SCHEMA:
        return False
    return (
        isinstance(record.get("trace"), str)
        and isinstance(record.get("span"), str)
        and isinstance(record.get("ts"), (int, float))
        and isinstance(record.get("dur"), (int, float))
    )


def group_traces(
    records: Iterable[Dict[str, Any]]
) -> Dict[str, List[SpanRecord]]:
    """Group span records by trace id; spans sorted by start timestamp.

    Non-span records (other JSONL lines sharing the log) are skipped, so
    span and event streams may share a rotated file.
    """
    traces: Dict[str, List[SpanRecord]] = {}
    for record in records:
        if not is_span_record(record):
            continue
        traces.setdefault(record["trace"], []).append(record)
    for spans in traces.values():
        spans.sort(key=lambda r: (r["ts"], r.get("dur", 0.0)))
    return traces


def stage_summary(
    records: Iterable[Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """Per-(stage, name) aggregates: count / total / p50 / p95 / max."""
    buckets: Dict[Tuple[str, str], List[float]] = {}
    for record in records:
        if not is_span_record(record):
            continue
        key = (record.get("stage") or "?", record.get("name") or "?")
        buckets.setdefault(key, []).append(float(record["dur"]))
    out: Dict[str, Dict[str, Any]] = {}
    for (stage, name), durations in sorted(buckets.items()):
        durations.sort()
        out["%s/%s" % (stage, name)] = {
            "stage": stage,
            "name": name,
            "count": len(durations),
            "total": sum(durations),
            "p50": _percentile(durations, 0.50),
            "p95": _percentile(durations, 0.95),
            "max": durations[-1],
        }
    return out


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def build_waterfall(spans: List[SpanRecord]) -> List[Tuple[int, SpanRecord]]:
    """One trace's spans as (depth, record) rows in tree order.

    Roots (no ``parent``, or a parent missing from this trace — its
    span log may have rotated away) come first by start time; children
    nest under their parent, also by start time.
    """
    by_id = {record["span"]: record for record in spans}
    children: Dict[Optional[str], List[SpanRecord]] = {}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda r: (r["ts"], r.get("dur", 0.0)))

    rows: List[Tuple[int, SpanRecord]] = []
    seen: set = set()

    def visit(record: SpanRecord, depth: int) -> None:
        if record["span"] in seen:  # defensive: malformed cycles
            return
        seen.add(record["span"])
        rows.append((depth, record))
        for child in children.get(record["span"], []):
            visit(child, depth + 1)

    for root in children.get(None, []):
        visit(root, 0)
    return rows


def load_span_records(
    paths: Iterable[str], backups: Optional[int] = None
) -> Iterator[SpanRecord]:
    """Yield span records from one or more rotated span logs.

    Each ``path`` is read via
    :func:`repro.obs.trace.read_rotated_jsonl`, so backups produced by
    :class:`RotatingTraceStream` are folded in chronologically.
    """
    from .trace import DEFAULT_ROTATE_BACKUPS, read_rotated_jsonl

    scan = DEFAULT_ROTATE_BACKUPS if backups is None else backups
    for path in paths:
        for record in read_rotated_jsonl(path, backups=scan):
            if is_span_record(record):
                yield record
