"""The engine-facing telemetry facade.

:class:`Telemetry` bundles the three observability surfaces — metrics
registry, structured trace stream, re-encoding pass reports — behind one
object the engine can hold.  A disabled engine holds
:data:`NULL_TELEMETRY` instead, whose ``enabled`` flag short-circuits
every hot-path hook to a single boolean test and whose instruments are
shared no-ops, so the telemetry layer costs nothing unless asked for.

Typical use::

    from repro.obs import Telemetry
    from repro.core.engine import DacceEngine

    telemetry = Telemetry()
    engine = DacceEngine(root=program.main, telemetry=telemetry)
    engine.run(events)

    exposition = telemetry.to_prometheus()      # Prometheus text format
    document = telemetry.to_json(indent=2)      # JSON snapshot
    passes = telemetry.pass_reports.to_list()   # why each gTS bump fired
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Any, Dict, Optional, Tuple

from .exporters import to_json_snapshot, to_prometheus_text
from .registry import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_DURATION_BUCKETS,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from .report import PassReportLog, ReencodePassReport
from .trace import DEFAULT_TRACE_CAPACITY, TraceEmitter


@dataclass
class TelemetryConfig:
    """Knobs for the telemetry surfaces."""

    #: Retained trace records (older records are evicted, counted).
    trace_capacity: int = DEFAULT_TRACE_CAPACITY
    #: ccStack / call-stack depth histogram bucket upper bounds.
    depth_buckets: Tuple[float, ...] = DEFAULT_DEPTH_BUCKETS
    #: Re-encoding pass duration buckets, seconds.
    duration_buckets: Tuple[float, ...] = DEFAULT_DURATION_BUCKETS
    #: Metric name prefix.
    namespace: str = "dacce"


class Telemetry:
    """Live telemetry: registry + trace emitter + pass-report log."""

    enabled = True

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        trace_stream: Optional[IO[str]] = None,
    ):
        self.config = config or TelemetryConfig()
        self.registry = registry or MetricsRegistry(
            enabled=True, namespace=self.config.namespace
        )
        self.trace = TraceEmitter(
            capacity=self.config.trace_capacity, stream=trace_stream
        )
        self.pass_reports = PassReportLog()
        self._pass_duration = self.registry.histogram(
            "reencode_duration_seconds",
            "Wall-clock duration of re-encoding passes.",
            buckets=self.config.duration_buckets,
        )
        self._pass_count = self.registry.counter(
            "reencode_passes_total",
            "Re-encoding passes by trigger reason.",
            labelnames=("reason",),
        )

    # ------------------------------------------------------------------
    def record_pass(self, report: ReencodePassReport) -> None:
        """Store one pass report; updates metrics and emits a trace record."""
        self.pass_reports.append(report)
        self._pass_duration.observe(report.duration_seconds)
        for reason in report.reasons:
            self._pass_count.labels(reason).inc()
        self.trace.emit("reencode-pass", **report.to_dict())

    def emit(self, event: str, **fields: Any) -> None:
        """Forward a structured event to the trace stream."""
        self.trace.emit(event, **fields)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.registry.snapshot()

    def to_prometheus(self) -> str:
        return to_prometheus_text(self.snapshot(), self.pass_reports)

    def to_json(self, indent: Optional[int] = None) -> str:
        return to_json_snapshot(
            self.snapshot(),
            self.pass_reports,
            extra={"trace_dropped": self.trace.dropped},
            indent=indent,
        )


class _NullTelemetry:
    """Disabled telemetry: every surface is an inert shared object.

    The engine stores this by default; hooks guard on ``enabled`` and
    anything that slips through lands on no-op instruments.  Immutable
    and shared — do not attach state to it.
    """

    enabled = False
    config = TelemetryConfig()

    def __init__(self):
        self.registry = MetricsRegistry(enabled=False)
        self.pass_reports = PassReportLog()
        self._pass_duration = NULL_INSTRUMENT
        self._pass_count = NULL_INSTRUMENT

    @property
    def trace(self):
        raise AttributeError(
            "telemetry is disabled; construct the engine with "
            "telemetry=Telemetry() to record traces"
        )

    def record_pass(self, report: ReencodePassReport) -> None:
        pass

    def emit(self, event: str, **fields: Any) -> None:
        pass

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {}

    def to_prometheus(self) -> str:
        return ""

    def to_json(self, indent: Optional[int] = None) -> str:
        return to_json_snapshot({}, (), indent=indent)


NULL_TELEMETRY = _NullTelemetry()
