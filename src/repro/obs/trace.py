"""Structured trace stream for engine events.

The engine's interesting moments — re-encoding passes, trigger
evaluations, thread lifecycle, indirect-site promotions, validation
failures — are emitted as flat JSON-able records.  The emitter keeps a
bounded in-memory ring (the most recent ``capacity`` events) and can
additionally mirror every record to a text stream as JSON Lines, which
is the `dacce trace` output format.

Records are dictionaries with at least::

    {"seq": <monotone int>, "ts": <unix seconds>, "event": <kind>, ...}

No decoding happens on the emission path: like the sample log, the trace
carries compact runtime state (ids, timestamps, counts) and expansion is
a consumer concern.
"""

from __future__ import annotations

import io
import json
import logging
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, IO, List, Optional

logger = logging.getLogger(__name__)

TraceRecord = Dict[str, Any]

DEFAULT_TRACE_CAPACITY = 4096


class TraceEmitter:
    """Bounded in-memory event ring with optional JSONL mirroring."""

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        stream: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.time,
    ):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.stream = stream
        self._clock = clock
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self._sequence = 0
        #: Emitted-minus-retained; non-zero once the ring has wrapped.
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> TraceRecord:
        """Append one structured record; returns the record."""
        record: TraceRecord = {
            "seq": self._sequence,
            "ts": self._clock(),
            "event": event,
        }
        record.update(fields)
        self._sequence += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        if self.stream is not None:
            try:
                self.stream.write(json.dumps(record, default=_jsonable) + "\n")
            except (OSError, ValueError):
                logger.warning("trace stream write failed; detaching stream")
                self.stream = None
        return record

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total records emitted (including ones evicted from the ring)."""
        return self._sequence

    def events(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """Retained records, oldest first; optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [record for record in self._ring if record["event"] == kind]

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        events = self.events(kind)
        return events[-1] if events else None

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Retained records as a JSON Lines string."""
        buffer = io.StringIO()
        for record in self._ring:
            buffer.write(json.dumps(record, default=_jsonable))
            buffer.write("\n")
        return buffer.getvalue()

    def write_jsonl(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return path


def _jsonable(value: Any) -> Any:
    """Best-effort fallback for enum/tuple-ish payload fields."""
    if hasattr(value, "value"):
        return value.value
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)
