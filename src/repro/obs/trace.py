"""Structured trace stream for engine events.

The engine's interesting moments — re-encoding passes, trigger
evaluations, thread lifecycle, indirect-site promotions, validation
failures — are emitted as flat JSON-able records.  The emitter keeps a
bounded in-memory ring (the most recent ``capacity`` events) and can
additionally mirror every record to a text stream as JSON Lines, which
is the `dacce trace` output format.

Records are dictionaries with at least::

    {"seq": <monotone int>, "ts": <unix seconds>, "event": <kind>, ...}

No decoding happens on the emission path: like the sample log, the trace
carries compact runtime state (ids, timestamps, counts) and expansion is
a consumer concern.
"""

from __future__ import annotations

import io
import json
import logging
import os
import time
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Tuple,
)

logger = logging.getLogger(__name__)

TraceRecord = Dict[str, Any]

DEFAULT_TRACE_CAPACITY = 4096

DEFAULT_ROTATE_BYTES = 8 * 1024 * 1024
DEFAULT_ROTATE_BACKUPS = 3


class TraceEmitter:
    """Bounded in-memory event ring with optional JSONL mirroring."""

    def __init__(
        self,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        stream: Optional[IO[str]] = None,
        clock: Callable[[], float] = time.time,
    ):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.stream = stream
        self._clock = clock
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self._sequence = 0
        #: Emitted-minus-retained; non-zero once the ring has wrapped.
        self.dropped = 0

    # ------------------------------------------------------------------
    def emit(self, event: str, **fields: Any) -> TraceRecord:
        """Append one structured record; returns the record."""
        record: TraceRecord = {
            "seq": self._sequence,
            "ts": self._clock(),
            "event": event,
        }
        record.update(fields)
        self._sequence += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        if self.stream is not None:
            try:
                self.stream.write(json.dumps(record, default=_jsonable) + "\n")
            except (OSError, ValueError):
                logger.warning("trace stream write failed; detaching stream")
                self.stream = None
        return record

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total records emitted (including ones evicted from the ring)."""
        return self._sequence

    def events(self, kind: Optional[str] = None) -> List[TraceRecord]:
        """Retained records, oldest first; optionally filtered by kind."""
        if kind is None:
            return list(self._ring)
        return [record for record in self._ring if record["event"] == kind]

    def last(self, kind: Optional[str] = None) -> Optional[TraceRecord]:
        events = self.events(kind)
        return events[-1] if events else None

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Retained records as a JSON Lines string."""
        buffer = io.StringIO()
        for record in self._ring:
            buffer.write(json.dumps(record, default=_jsonable))
            buffer.write("\n")
        return buffer.getvalue()

    def write_jsonl(self, path: str) -> str:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return path


class RotatingTraceStream:
    """A size/age-rotating file target for :class:`TraceEmitter`.

    The emitter's in-memory ring stays bounded by construction; this
    bounds the *mirrored JSONL file* too, so a long ``dacce profile
    serve`` session cannot grow one unbounded trace file.  Rotation is
    the classic shift scheme: ``trace.jsonl`` → ``trace.jsonl.1`` →
    ``…`` → ``trace.jsonl.<backups>`` (oldest dropped), triggered when
    the active file would exceed ``max_bytes`` or has been open longer
    than ``max_age_seconds``.  Records are never split: the size check
    runs before each write, so one record may overshoot ``max_bytes``
    but a rotation boundary always falls between records.

    Duck-types the ``write``/``flush``/``close`` subset of a text
    stream, which is all :class:`TraceEmitter` needs.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = DEFAULT_ROTATE_BYTES,
        max_age_seconds: float = 0.0,
        backups: int = DEFAULT_ROTATE_BACKUPS,
        clock: Callable[[], float] = time.time,
    ):
        if max_bytes <= 0 and max_age_seconds <= 0:
            raise ValueError(
                "rotation needs max_bytes > 0 or max_age_seconds > 0"
            )
        if backups < 0:
            raise ValueError("backups must be >= 0")
        self.path = path
        self.max_bytes = max_bytes
        self.max_age_seconds = max_age_seconds
        self.backups = backups
        self._clock = clock
        self.rotations = 0
        self._handle: Optional[IO[str]] = None
        self._written = 0
        self._opened_at = 0.0
        self._open()

    # ------------------------------------------------------------------
    def _open(self) -> None:
        self._handle = open(self.path, "a")
        self._written = self._handle.tell()
        self._opened_at = self._clock()

    def _should_rotate(self, incoming: int) -> bool:
        if self.max_bytes > 0 and self._written > 0 and (
            self._written + incoming > self.max_bytes
        ):
            return True
        if self.max_age_seconds > 0 and (
            self._clock() - self._opened_at >= self.max_age_seconds
        ):
            return True
        return False

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if self.backups > 0:
            oldest = "%s.%d" % (self.path, self.backups)
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                source = "%s.%d" % (self.path, index)
                if os.path.exists(source):
                    os.replace(source, "%s.%d" % (self.path, index + 1))
            if os.path.exists(self.path):
                os.replace(self.path, "%s.1" % self.path)
        else:
            # No backups kept: truncate in place.
            if os.path.exists(self.path):
                os.remove(self.path)
        self.rotations += 1
        self._open()

    # ------------------------------------------------------------------
    def write(self, text: str) -> int:
        if self._handle is None:
            raise ValueError("rotating trace stream is closed")
        if self._should_rotate(len(text)):
            self._rotate()
        assert self._handle is not None
        written = self._handle.write(text)
        self._written += written
        return written

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def closed(self) -> bool:
        return self._handle is None

    def files(self) -> List[str]:
        """Existing files, active first, then backups newest-first."""
        out = []
        if os.path.exists(self.path):
            out.append(self.path)
        for index in range(1, self.backups + 1):
            candidate = "%s.%d" % (self.path, index)
            if os.path.exists(candidate):
                out.append(candidate)
        return out


def _jsonable(value: Any) -> Any:
    """Best-effort fallback for enum/tuple-ish payload fields."""
    if hasattr(value, "value"):
        return value.value
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def rotated_files(path: str, backups: int = DEFAULT_ROTATE_BACKUPS) -> List[str]:
    """Existing shards of a rotated JSONL trace, oldest first.

    The shift scheme writes ``path`` (active) with backups
    ``path.1`` (newest) … ``path.N`` (oldest), so chronological order is
    the highest-numbered backup down to the active file.  ``backups``
    only bounds the scan when no higher-numbered shard exists — shards
    beyond it (an older run with a larger ``--trace-backups``) are
    still picked up.
    """
    out: List[str] = []
    index = 1
    misses = 0
    while misses < max(1, backups):
        candidate = "%s.%d" % (path, index)
        if os.path.exists(candidate):
            out.append(candidate)
            misses = 0
        else:
            misses += 1
        index += 1
    out.reverse()
    if os.path.exists(path):
        out.append(path)
    return out


def read_rotated_jsonl(
    path: str, backups: int = DEFAULT_ROTATE_BACKUPS
) -> Iterator[Dict[str, Any]]:
    """Yield records from a rotated JSONL trace in chronological order.

    Reads ``path.N`` … ``path.1`` then the active ``path`` (what
    ``dacce trace --input`` uses), skipping blank and truncated lines —
    a mid-write rotation can legitimately leave a torn last line in a
    shard.
    """
    for shard in rotated_files(path, backups=backups):
        try:
            handle = open(shard)
        except OSError:
            continue
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record


def _complete_lines(
    path: str, offset: int
) -> Tuple[int, List[Dict[str, Any]]]:
    """Parse complete (newline-terminated) JSONL records from ``offset``.

    Returns the new byte offset — a torn trailing line is left in place
    and re-read on the next poll once the writer finishes it.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            chunk = handle.read()
    except OSError:
        return offset, records
    end = chunk.rfind(b"\n")
    if end < 0:
        return offset, records
    for raw in chunk[: end + 1].splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return offset + end + 1, records


def _shard_with_inode(path: str, inode: int, backups: int) -> Optional[str]:
    """Locate the backup shard holding ``inode`` after a shift rotation."""
    for index in range(1, max(1, backups) + 1):
        candidate = "%s.%d" % (path, index)
        try:
            if os.stat(candidate).st_ino == inode:
                return candidate
        except OSError:
            continue
    return None


def follow_rotated_jsonl(
    path: str,
    poll: float = 0.2,
    duration: float = 0.0,
    backups: int = DEFAULT_ROTATE_BACKUPS,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Dict[str, Any]]:
    """Tail a rotated JSONL trace, surviving rotations mid-follow.

    Poll-based (``dacce trace --follow``): tracks the active file's
    inode and byte offset, yielding each complete record once.  When
    the writer rotates — the shift scheme renames the active file to
    ``path.1`` and reopens ``path`` — the renamed shard is drained to
    its end (found by inode among the backups) before the new active
    file is picked up at offset 0, so no record is skipped or
    duplicated across the rotation boundary.  In-place truncation
    (``backups=0`` writers) resets the offset.

    Runs until ``duration`` elapses (when positive) or ``should_stop``
    returns true; with neither, follows forever.
    """
    if poll <= 0:
        raise ValueError("poll interval must be positive")
    deadline = clock() + duration if duration > 0 else None
    inode: Optional[int] = None
    offset = 0
    while True:
        try:
            stat = os.stat(path)
        except OSError:
            stat = None
        if stat is not None:
            if inode is None:
                inode = stat.st_ino
                offset = 0
            elif stat.st_ino != inode:
                shard = _shard_with_inode(path, inode, backups)
                if shard is not None:
                    _, tail = _complete_lines(shard, offset)
                    for record in tail:
                        yield record
                inode = stat.st_ino
                offset = 0
            elif stat.st_size < offset:
                offset = 0
            offset, records = _complete_lines(path, offset)
            for record in records:
                yield record
        if should_stop is not None and should_stop():
            return
        if deadline is not None and clock() >= deadline:
            return
        sleep(poll)
