"""A lightweight metrics registry for the DACCE runtime.

The adaptive policy (Section 4) acts on runtime signals — new-edge
counts, hot-path churn, ccStack traffic — that were previously spread
over ad-hoc counters (``DacceStats``, ``CcStack.stats``,
``IndirectCallSite`` hit/miss fields).  The registry gives those signals
one uniform surface:

* :class:`Counter` — monotone event counts, optionally labelled
  (e.g. calls by ``kind``).
* :class:`Gauge` — point-in-time values (live threads, graph size).
* :class:`Histogram` — bounded-bucket distributions (ccStack depth,
  pass duration); bucket bounds are fixed at creation so the memory
  footprint is constant regardless of traffic.

Two usage modes keep the engine's hot path cheap:

* **Push** — pre-bound instrument children are updated inline by the
  instrumentation hooks (call/return/sample throughput, depth
  histograms).  With the registry *disabled* every constructor returns a
  shared no-op singleton, so a disabled engine pays only one boolean
  check per event.
* **Pull** — :meth:`MetricsRegistry.register_collector` callbacks run at
  snapshot/export time and copy already-maintained statistics
  (``DacceStats``, retired-ccStack totals, indirect dispatch tables)
  into instruments.  Migrating an existing counter costs nothing on the
  hot path.

Snapshots are plain dictionaries; the exporters render them as
Prometheus text or JSON (see :mod:`repro.obs.exporters`).
"""

from __future__ import annotations

import bisect
import logging
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)

LabelValues = Tuple[str, ...]

#: Default ccStack-depth style buckets: fine-grained near zero (the
#: steady state Figure 10 predicts), coarse for recursion bursts.
DEFAULT_DEPTH_BUCKETS: Tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)

#: Default duration buckets (seconds) for re-encoding pass timing.
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


class MetricError(ValueError):
    """Invalid metric definition or usage."""


def _check_labels(
    labelnames: Sequence[str], labelvalues: Sequence[str]
) -> LabelValues:
    if len(labelnames) != len(labelvalues):
        raise MetricError(
            "expected %d label values %r, got %r"
            % (len(labelnames), tuple(labelnames), tuple(labelvalues))
        )
    return tuple(str(value) for value in labelvalues)


class _Instrument:
    """Common shape of counters, gauges and histograms."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    # Subclasses provide: labels(), series() -> {labelvalues: value}.
    def series(self) -> Dict[LabelValues, object]:
        raise NotImplementedError


class Counter(_Instrument):
    """A monotone counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def labels(self, *labelvalues: str) -> "_CounterChild":
        key = _check_labels(self.labelnames, labelvalues)
        if key not in self._values:
            self._values[key] = 0.0
        return _CounterChild(self, key)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabelled series."""
        if self.labelnames:
            raise MetricError(
                "%s has labels %r; use .labels(...)" % (self.name, self.labelnames)
            )
        self._values[()] += amount

    def set_total(self, value: float, *labelvalues: str) -> None:
        """Absolute update for pull-mode collectors.

        Collectors that mirror an externally maintained count (e.g.
        ``DacceStats.calls``) overwrite the running total at scrape time
        instead of replaying increments.
        """
        key = _check_labels(self.labelnames, labelvalues)
        self._values[key] = float(value)

    def value(self, *labelvalues: str) -> float:
        return self._values.get(_check_labels(self.labelnames, labelvalues), 0.0)

    def series(self) -> Dict[LabelValues, float]:
        return dict(self._values)


class _CounterChild:
    """A counter bound to one label-value combination (hot-path handle)."""

    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Counter, key: LabelValues):
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._parent._values[self._key] += amount


class Gauge(_Instrument):
    """A point-in-time value, optionally labelled."""

    kind = "gauge"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        super().__init__(name, help, labelnames)
        self._values: Dict[LabelValues, float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def labels(self, *labelvalues: str) -> "_GaugeChild":
        key = _check_labels(self.labelnames, labelvalues)
        if key not in self._values:
            self._values[key] = 0.0
        return _GaugeChild(self, key)

    def set(self, value: float) -> None:
        if self.labelnames:
            raise MetricError(
                "%s has labels %r; use .labels(...)" % (self.name, self.labelnames)
            )
        self._values[()] = float(value)

    def set_labeled(self, value: float, *labelvalues: str) -> None:
        self._values[_check_labels(self.labelnames, labelvalues)] = float(value)

    def value(self, *labelvalues: str) -> float:
        return self._values.get(_check_labels(self.labelnames, labelvalues), 0.0)

    def series(self) -> Dict[LabelValues, float]:
        return dict(self._values)


class _GaugeChild:
    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Gauge, key: LabelValues):
        self._parent = parent
        self._key = key

    def set(self, value: float) -> None:
        self._parent._values[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._parent._values[self._key] += amount


class HistogramData:
    """Bucket counts + sum + count for one label combination."""

    __slots__ = ("bounds", "counts", "sum", "count", "exemplar")

    def __init__(self, bounds: Tuple[float, ...]):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        #: Most recent exemplar (OpenMetrics-style): a dict linking this
        #: series to a trace, e.g. ``{"trace": ..., "span": ...,
        #: "value": v}``.  ``None`` until an observation carries one.
        self.exemplar: Optional[Dict[str, object]] = None

    def observe(
        self, value: float, exemplar: Optional[Dict[str, object]] = None
    ) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if exemplar is not None:
            exemplar = dict(exemplar)
            exemplar.setdefault("value", value)
            self.exemplar = exemplar

    def cumulative(self) -> List[Tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs (+Inf last)."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out


class Histogram(_Instrument):
    """A bounded-bucket histogram, optionally labelled."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DEPTH_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("%s: histogram needs at least one bucket" % name)
        self.bounds = bounds
        self._data: Dict[LabelValues, HistogramData] = {}
        if not self.labelnames:
            self._data[()] = HistogramData(bounds)

    def labels(self, *labelvalues: str) -> "_HistogramChild":
        key = _check_labels(self.labelnames, labelvalues)
        data = self._data.get(key)
        if data is None:
            data = self._data[key] = HistogramData(self.bounds)
        return _HistogramChild(data)

    def observe(
        self, value: float, exemplar: Optional[Dict[str, object]] = None
    ) -> None:
        if self.labelnames:
            raise MetricError(
                "%s has labels %r; use .labels(...)" % (self.name, self.labelnames)
            )
        self._data[()].observe(value, exemplar)

    def data(self, *labelvalues: str) -> Optional[HistogramData]:
        return self._data.get(_check_labels(self.labelnames, labelvalues))

    def series(self) -> Dict[LabelValues, HistogramData]:
        return dict(self._data)


class _HistogramChild:
    __slots__ = ("_data",)

    def __init__(self, data: HistogramData):
        self._data = data

    def observe(
        self, value: float, exemplar: Optional[Dict[str, object]] = None
    ) -> None:
        self._data.observe(value, exemplar)


# ----------------------------------------------------------------------
# no-op twins — what a disabled registry hands out
# ----------------------------------------------------------------------
class _NullInstrument:
    """Shared do-nothing instrument; every method is a constant no-op.

    A single instance stands in for counters, gauges and histograms so
    instrumented code never branches on the telemetry mode: it calls
    ``inc``/``set``/``observe`` unconditionally and a disabled registry
    makes those calls vanish.
    """

    kind = "null"
    name = ""
    help = ""
    labelnames: Tuple[str, ...] = ()

    def labels(self, *labelvalues: str) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_labeled(self, value: float, *labelvalues: str) -> None:
        pass

    def set_total(self, value: float, *labelvalues: str) -> None:
        pass

    def observe(
        self, value: float, exemplar: Optional[Dict[str, object]] = None
    ) -> None:
        pass

    def value(self, *labelvalues: str) -> float:
        return 0.0

    def data(self, *labelvalues: str) -> None:
        return None

    def series(self) -> Dict[LabelValues, float]:
        return {}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Owns every instrument; snapshot/export entry point.

    ``enabled=False`` turns the registry into a zero-cost shell: all
    constructors return :data:`NULL_INSTRUMENT`, collectors are dropped,
    and :meth:`snapshot` returns an empty mapping.
    """

    def __init__(self, enabled: bool = True, namespace: str = "dacce"):
        self.enabled = enabled
        self.namespace = namespace
        self._instruments: Dict[str, _Instrument] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # -- instrument construction ---------------------------------------
    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DEPTH_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labelnames, buckets=buckets)

    def _register(self, cls, name: str, help: str, labelnames, **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        full = name if name.startswith(self.namespace) else (
            "%s_%s" % (self.namespace, name)
        )
        with self._lock:
            existing = self._instruments.get(full)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(
                    labelnames
                ):
                    raise MetricError(
                        "metric %s re-registered with a different shape" % full
                    )
                return existing
            instrument = cls(full, help, labelnames, **kwargs)
            self._instruments[full] = instrument
            return instrument

    # -- pull-mode collectors ------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Register a callback run before every snapshot/export.

        Collectors copy externally maintained statistics into
        instruments; a disabled registry drops them.
        """
        if self.enabled:
            self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            try:
                collector()
            except Exception:  # pragma: no cover - collector bugs must not kill export
                logger.exception("metrics collector %r failed", collector)

    # -- introspection --------------------------------------------------
    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def get(self, name: str) -> Optional[_Instrument]:
        full = name if name.startswith(self.namespace) else (
            "%s_%s" % (self.namespace, name)
        )
        return self._instruments.get(full)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-data view of every series (runs collectors first).

        Shape::

            {metric_name: {
                "kind": "counter" | "gauge" | "histogram",
                "help": str,
                "labelnames": [...],
                "series": [
                    {"labels": {...}, "value": float}               # counter/gauge
                    {"labels": {...}, "sum": s, "count": n,
                     "buckets": [[le, cumulative], ...]}            # histogram
                ],
            }}
        """
        if not self.enabled:
            return {}
        self.collect()
        out: Dict[str, Dict[str, object]] = {}
        for instrument in self.instruments():
            series = []
            for key, value in sorted(instrument.series().items()):
                labels = dict(zip(instrument.labelnames, key))
                if isinstance(value, HistogramData):
                    entry: Dict[str, object] = {
                        "labels": labels,
                        "sum": value.sum,
                        "count": value.count,
                        "buckets": [
                            [le, count] for le, count in value.cumulative()
                        ],
                    }
                    # Additive: only series that ever saw an exemplar
                    # carry the key, so exemplar-free snapshots are
                    # byte-identical to the pre-exemplar format.
                    if value.exemplar is not None:
                        entry["exemplar"] = dict(value.exemplar)
                    series.append(entry)
                else:
                    series.append({"labels": labels, "value": value})
            out[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "series": series,
            }
        return out


def null_registry() -> MetricsRegistry:
    """A disabled registry (every instrument is a shared no-op)."""
    return MetricsRegistry(enabled=False)


def iter_label_items(labels: Dict[str, str]) -> Iterable[Tuple[str, str]]:
    return sorted(labels.items())
