"""Unified observability layer: metrics, traces, pass reports.

See :mod:`repro.obs.registry` (instruments), :mod:`repro.obs.trace`
(structured JSONL event stream), :mod:`repro.obs.report` (re-encoding
pass reports), :mod:`repro.obs.exporters` (Prometheus / JSON rendering)
and :mod:`repro.obs.telemetry` (the engine-facing facade).
"""

from .exporters import (
    SNAPSHOT_FORMAT_VERSION,
    parse_json_snapshot,
    to_json_snapshot,
    to_prometheus_text,
)
from .registry import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_INSTRUMENT,
    null_registry,
)
from .report import PassReportLog, ReencodePassReport
from .spans import (
    DEFAULT_SPAN_CAPACITY,
    NULL_SPANS,
    PIPELINE_STAGES,
    SPAN_SCHEMA,
    Span,
    SpanContext,
    SpanRecorder,
    build_waterfall,
    group_traces,
    load_span_records,
    stage_summary,
)
from .telemetry import NULL_TELEMETRY, Telemetry, TelemetryConfig
from .trace import (
    DEFAULT_ROTATE_BACKUPS,
    DEFAULT_ROTATE_BYTES,
    DEFAULT_TRACE_CAPACITY,
    RotatingTraceStream,
    TraceEmitter,
    follow_rotated_jsonl,
    read_rotated_jsonl,
    rotated_files,
)

__all__ = [
    "Counter",
    "DEFAULT_DEPTH_BUCKETS",
    "DEFAULT_DURATION_BUCKETS",
    "DEFAULT_ROTATE_BACKUPS",
    "DEFAULT_ROTATE_BYTES",
    "DEFAULT_SPAN_CAPACITY",
    "DEFAULT_TRACE_CAPACITY",
    "RotatingTraceStream",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPANS",
    "NULL_TELEMETRY",
    "PIPELINE_STAGES",
    "PassReportLog",
    "ReencodePassReport",
    "SNAPSHOT_FORMAT_VERSION",
    "SPAN_SCHEMA",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "Telemetry",
    "TelemetryConfig",
    "TraceEmitter",
    "build_waterfall",
    "follow_rotated_jsonl",
    "group_traces",
    "load_span_records",
    "null_registry",
    "parse_json_snapshot",
    "read_rotated_jsonl",
    "rotated_files",
    "stage_summary",
    "to_json_snapshot",
    "to_prometheus_text",
]
