"""Structured re-encoding pass reports.

Every ``gTimeStamp`` bump answers three questions the scattered counters
could not: *why* did the pass fire (which Section 4 triggers), *what*
did it change (edges reclassified, dictionary size, maxID movement),
and *what did it cost* (wall-clock pass duration plus the cost-model
cycles).  :class:`ReencodePassReport` captures all of it per pass;
:class:`PassReportLog` keeps the run's history and aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class ReencodePassReport:
    """One adaptive re-encoding pass, from trigger to regenerated world."""

    #: ``gTimeStamp`` *after* the bump — the dictionary this pass produced.
    timestamp: int
    #: The Section 4 trigger reasons that fired ("new-edges",
    #: "hot-paths-changed", "ccstack-traffic") or ("manual",).
    reasons: Tuple[str, ...]
    #: Dynamic call count when the pass started.
    at_call: int
    #: Graph shape at encoding time.
    nodes: int
    edges: int
    #: Edges whose back/non-back classification flipped this pass.
    edges_reclassified: int
    #: Edges discovered since the previous pass (trigger-1 pressure).
    new_edges: int
    #: Dictionary size: encoded (non-back) edges and the id-space bound.
    encoded_edges: int
    max_id: int
    #: maxID of the previous dictionary — lets consumers spot the paper's
    #: Section 6.4 anecdote where re-encoding *shrinks* the id space.
    previous_max_id: int
    #: Threads whose live id/ccStack were regenerated.
    threads_regenerated: int
    #: Indirect call sites re-patched hottest-first.
    indirect_sites_patched: int
    #: Back edges with compressing instrumentation after this pass.
    compressed_edges: int
    #: Measured wall-clock duration of the pass, seconds.
    duration_seconds: float
    #: Modelled cost in cycles (the Figure 8 accounting).
    cost_cycles: float
    #: Raw window counters behind the trigger decision, when available.
    window: Optional[Dict[str, int]] = None
    #: Span identity of the ``engine.reencode`` span covering this pass
    #: (``{"trace": ..., "span": ...}``), when span tracing is on.
    span: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "timestamp": self.timestamp,
            "reasons": list(self.reasons),
            "at_call": self.at_call,
            "nodes": self.nodes,
            "edges": self.edges,
            "edges_reclassified": self.edges_reclassified,
            "new_edges": self.new_edges,
            "encoded_edges": self.encoded_edges,
            "max_id": self.max_id,
            "previous_max_id": self.previous_max_id,
            "threads_regenerated": self.threads_regenerated,
            "indirect_sites_patched": self.indirect_sites_patched,
            "compressed_edges": self.compressed_edges,
            "duration_seconds": self.duration_seconds,
            "cost_cycles": self.cost_cycles,
            "window": dict(self.window) if self.window else None,
        }
        # Additive: only span-traced passes carry the key, so existing
        # report consumers see an unchanged shape when tracing is off.
        if self.span is not None:
            out["span"] = dict(self.span)
        return out


@dataclass
class PassReportLog:
    """The run's re-encoding history with simple aggregates."""

    reports: List[ReencodePassReport] = field(default_factory=list)

    def append(self, report: ReencodePassReport) -> None:
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def last(self) -> Optional[ReencodePassReport]:
        return self.reports[-1] if self.reports else None

    @property
    def total_duration_seconds(self) -> float:
        return sum(r.duration_seconds for r in self.reports)

    def reason_counts(self) -> Dict[str, int]:
        """How often each trigger reason fired across the run."""
        counts: Dict[str, int] = {}
        for report in self.reports:
            for reason in report.reasons:
                counts[reason] = counts.get(reason, 0) + 1
        return counts

    def to_list(self) -> List[Dict[str, Any]]:
        return [report.to_dict() for report in self.reports]
