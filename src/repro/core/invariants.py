"""Structural invariant checking for encodings (debugging / testing aid).

The soundness of Algorithm 1 rests on three structural properties of
every decoding dictionary (DESIGN.md §2):

1. the encoded-edge subset is acyclic,
2. ``numCC(n) = max(1, Σ numCC(p))`` over the encoded in-edges,
3. each node's in-edge intervals ``[En(e), En(e) + numCC(p))`` exactly
   partition ``[0, numCC(n))``.

:func:`check_dictionary` verifies all three and returns the list of
violations (empty = sound).  The engine can run it after every
re-encoding when ``DacceConfig``-level debugging is wanted; the property
tests use it to gate every randomly generated encoding.
"""

from __future__ import annotations

from typing import Dict, List

from .dictionary import EncodingDictionary
from .events import FunctionId


def check_dictionary(dictionary: EncodingDictionary) -> List[str]:
    """All invariant violations of one dictionary (empty list = sound)."""
    violations: List[str] = []
    violations.extend(_check_acyclic(dictionary))
    violations.extend(_check_numcc(dictionary))
    violations.extend(_check_intervals(dictionary))
    violations.extend(_check_maxid(dictionary))
    return violations


def assert_sound(dictionary: EncodingDictionary) -> None:
    """Raise ``AssertionError`` listing any violations."""
    violations = check_dictionary(dictionary)
    assert not violations, "; ".join(violations)


# ----------------------------------------------------------------------
def _functions(dictionary: EncodingDictionary):
    functions = set()
    for info in dictionary.edges():
        functions.add(info.caller)
        functions.add(info.callee)
    functions.add(dictionary.root)
    return functions


def _check_acyclic(dictionary: EncodingDictionary) -> List[str]:
    adjacency: Dict[FunctionId, List[FunctionId]] = {}
    for info in dictionary.edges():
        if info.encoding is not None:
            adjacency.setdefault(info.caller, []).append(info.callee)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {fn: WHITE for fn in _functions(dictionary)}
    violations = []
    for start in color:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(adjacency.get(start, ())))]
        color[start] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                if color.get(child, WHITE) == GRAY:
                    violations.append(
                        "cycle through encoded edges at %r -> %r" % (node, child)
                    )
                elif color.get(child, WHITE) == WHITE:
                    color[child] = GRAY
                    stack.append((child, iter(adjacency.get(child, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
        if violations:
            break
    return violations


def _check_numcc(dictionary: EncodingDictionary) -> List[str]:
    violations = []
    for fn in _functions(dictionary):
        total = sum(
            dictionary.numcc(info.caller)
            for info in dictionary.encoded_in_edges(fn)
        )
        expected = max(1, total)
        actual = dictionary.numcc(fn)
        if actual != expected:
            violations.append(
                "numCC(%r) = %d, expected %d" % (fn, actual, expected)
            )
    return violations


def _check_intervals(dictionary: EncodingDictionary) -> List[str]:
    violations = []
    for fn in _functions(dictionary):
        intervals = sorted(
            (info.encoding, info.encoding + dictionary.numcc(info.caller))
            for info in dictionary.encoded_in_edges(fn)
        )
        cursor = 0
        for low, high in intervals:
            if low != cursor:
                violations.append(
                    "gap/overlap in intervals of %r at %d (expected %d)"
                    % (fn, low, cursor)
                )
                break
            cursor = high
        else:
            if intervals and cursor != dictionary.numcc(fn):
                violations.append(
                    "intervals of %r cover %d of numCC=%d"
                    % (fn, cursor, dictionary.numcc(fn))
                )
    return violations


def _check_maxid(dictionary: EncodingDictionary) -> List[str]:
    peak = max(
        (dictionary.numcc(fn) for fn in _functions(dictionary)), default=1
    )
    if dictionary.max_id != peak - 1:
        return [
            "maxID = %d but max numCC - 1 = %d"
            % (dictionary.max_id, peak - 1)
        ]
    return []
