"""Exception hierarchy for the DACCE reproduction.

Every error raised by :mod:`repro` derives from :class:`DacceError` so that
callers embedding the library can catch a single base class.

Errors are *structured*: raise sites attach the runtime facts a fault
handler (or a human reading a production log) needs — the affected
``thread``, the ``gTimeStamp`` (``gts``), the offending ``event`` or
context id — as keyword arguments.  They are stored both in the
``details`` mapping and as attributes, so ``error.thread`` works wherever
the site supplied it and ``error.details`` serialises cleanly into fault
reports.
"""

from __future__ import annotations

from typing import Any, Dict


class DacceError(Exception):
    """Base class for all errors raised by the repro package.

    ``details`` carries structured context supplied at the raise site
    (``thread``, ``gts``, ``event``, ``context_id``, ...); each key is
    also set as an attribute.  Attributes not supplied default to
    ``None`` via ``__getattr__`` so handlers can probe uniformly.
    """

    def __init__(self, message: str = "", **details: Any):
        super().__init__(message)
        self.details: Dict[str, Any] = details
        for key, value in details.items():
            setattr(self, key, value)

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails: unknown detail keys read
        # as None instead of raising, so handlers need no hasattr dance.
        if name.startswith("_"):
            raise AttributeError(name)
        return None


class CallGraphError(DacceError):
    """Structural problem in a call graph (unknown node, duplicate edge...)."""


class EncodingError(DacceError):
    """The encoder was asked to do something impossible.

    Examples: encoding a graph whose encoded-edge subset is cyclic, or
    requesting the encoding of an edge that was deliberately left
    unencoded (a back edge).
    """


class EncodingOverflowError(EncodingError):
    """The encoding space exceeded the configured id width.

    The paper uses 64-bit context identifiers; PCCE overflows on
    400.perlbench and 403.gcc (Table 1).  Python integers are unbounded,
    so the reproduction *detects* overflow instead of corrupting ids.
    """

    def __init__(self, max_id: int, bits: int):
        super().__init__(
            "maximum context id %d does not fit in a %d-bit identifier"
            % (max_id, bits),
            max_id=max_id,
            bits=bits,
        )


class DecodingError(DacceError):
    """A collected context id could not be decoded into a call path.

    Raise sites attach ``reason`` (a stable machine-readable slug),
    the decode position (``function``, ``context_id``, ``gts``) and —
    from inside Algorithm 1 — ``partial_segments``, the leaf-most
    sub-paths already decoded, which powers
    :meth:`~repro.core.decoder.Decoder.decode_best_effort`.
    """


class StaleDictionaryError(DecodingError):
    """No decoding dictionary exists for the requested timestamp."""


class TraceError(DacceError):
    """The trace executor was driven into an inconsistent state."""


class ReencodeError(DacceError):
    """A re-encoding pass failed its commit gate and was rolled back.

    Raised (in ``strict`` fault policy) after the engine has already
    restored the pre-pass state: ``gTimeStamp``, dictionary set,
    back-edge classification, indirect-site patches and every thread's
    live encoding state are exactly as before the pass started.
    """


class ProgramModelError(DacceError):
    """Invalid synthetic program description."""
