"""Exception hierarchy for the DACCE reproduction.

Every error raised by :mod:`repro` derives from :class:`DacceError` so that
callers embedding the library can catch a single base class.
"""

from __future__ import annotations


class DacceError(Exception):
    """Base class for all errors raised by the repro package."""


class CallGraphError(DacceError):
    """Structural problem in a call graph (unknown node, duplicate edge...)."""


class EncodingError(DacceError):
    """The encoder was asked to do something impossible.

    Examples: encoding a graph whose encoded-edge subset is cyclic, or
    requesting the encoding of an edge that was deliberately left
    unencoded (a back edge).
    """


class EncodingOverflowError(EncodingError):
    """The encoding space exceeded the configured id width.

    The paper uses 64-bit context identifiers; PCCE overflows on
    400.perlbench and 403.gcc (Table 1).  Python integers are unbounded,
    so the reproduction *detects* overflow instead of corrupting ids.
    """

    def __init__(self, max_id: int, bits: int):
        super().__init__(
            "maximum context id %d does not fit in a %d-bit identifier"
            % (max_id, bits)
        )
        self.max_id = max_id
        self.bits = bits


class DecodingError(DacceError):
    """A collected context id could not be decoded into a call path."""


class StaleDictionaryError(DecodingError):
    """No decoding dictionary exists for the requested timestamp."""


class TraceError(DacceError):
    """The trace executor was driven into an inconsistent state."""


class ProgramModelError(DacceError):
    """Invalid synthetic program description."""
