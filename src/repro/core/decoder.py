"""Context decoding — Algorithm 1 of the paper.

A collected sample is ``(gTimeStamp, id, ifun, ccStack)``.  Decoding walks
the id backwards one *acyclic sub-path* at a time:

1. ``AdjustID`` — an id above ``maxID`` means the current sub-path was
   started by an unencoded call whose context sits on the ccStack; strip
   the ``maxID + 1`` mark and remember it (``onstack``).
2. While ``id == 0`` and ``onstack``: if the current head function matches
   the ``target`` saved on top of the ccStack, pop the entry, record the
   saved edge (with its compressed repetition ``count``), continue from
   the saved caller with the saved id, and re-adjust it.
3. Otherwise greedily select the in-edge ``e = <p, ifun, cs>`` with
   ``En(e) <= id < En(e) + numCC(p)``, subtract ``En(e)`` and step to
   ``p``.
4. Stop when the ccStack is exhausted, no edge matches, and ``id == 0``.

The greedy step is exact: sub-path sums stay below ``numCC`` along the
path and the in-edge intervals partition ``[0, numCC(n))`` (DESIGN.md §2);
the head test in step 2 is unambiguous because a head function occurs
exactly once in an acyclic sub-path (Section 3 of the paper).

Decoding yields *segments* — one per acyclic sub-path, leaf-most first.
Segment ``i`` was entered through ccStack entry ``e_i``; a repetition
count ``k`` on ``e_i`` (compressed recursion, Figure 5) means the cycle
"segment ``i + 1`` followed by the back edge ``e_i``" executed ``k`` extra
times.  :meth:`Decoder.decode` can either keep the counts (the paper's
compact output) or expand them into the exact executed path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .ccstack import CLONE_CALLSITE, UNTRACKED_CALLSITE, UNTRACKED_FUNCTION
from .context import CallingContext, CcStackEntry, CollectedSample, ContextStep
from .dictionary import DictionaryStore, EncodingDictionary
from .errors import DecodingError, StaleDictionaryError
from .events import ThreadId
from .faults import DecodeFault, PartialDecode


@dataclass
class _Segment:
    """Steps of one decoded acyclic sub-path, root-to-leaf within itself.

    ``entry`` is the ccStack entry popped when this segment's head was
    reached (``None`` for the root-most segment).  ``unit`` is the decoded
    repetition cycle for compressed entries (``entry.count > 0``): the
    sub-path from the entry's target down to its caller that each
    compressed iteration executed before re-taking the back edge.
    """

    steps: List[ContextStep]
    entry: Optional[CcStackEntry] = None
    unit: Optional[List[ContextStep]] = None


#: Cache key: the sample itself (its frozen-dataclass hash covers the
#: ``(gTimeStamp, ccId, ccStack-fingerprint)`` triple plus the sampled
#: function and thread) and the two output-shaping flags.
DecodeCacheKey = Tuple[CollectedSample, bool, bool]


class DecodeCache:
    """LRU memoisation of successful sample decodes.

    Decoding is a pure function of the sample and the decoding state it
    is resolved against: dictionaries are immutable snapshots (one per
    ``gTimeStamp``), thread-parent samples are write-once, and the
    callsite-owner map only grows — an owner a past decode used can
    never change.  A successful decode therefore never goes stale and
    can be memoised for the lifetime of the decoding state, in the
    value-context style (cache per-context results, invalidate never).
    Failed decodes are *not* cached: a later sample set (or a
    best-effort state reload) may supply what was missing.

    The cache is LRU-bounded (``capacity`` entries) because sample logs
    are long but heavy-tailed — hot calling contexts recur constantly.
    ``hits``/``misses`` feed the ``decode_cache_total`` metric.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("DecodeCache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[DecodeCacheKey, CallingContext]" = (
            OrderedDict()
        )

    def get(self, key: DecodeCacheKey) -> Optional[CallingContext]:
        context = self._entries.get(key)
        if context is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return context

    def put(self, key: DecodeCacheKey, context: CallingContext) -> None:
        entries = self._entries
        entries[key] = context
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if not total:
            return 0.0
        return self.hits / total

    def stats(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hit_rate": self.hit_rate,
        }


class Decoder:
    """Decodes collected samples against a :class:`DictionaryStore`.

    ``thread_parents`` optionally maps a thread id to the
    :class:`CollectedSample` captured when that thread was spawned
    (Section 5.3); with it, :meth:`decode` reconstructs full cross-thread
    contexts by recursively decoding and prepending the parent context.

    ``cache`` optionally memoises successful decodes (see
    :class:`DecodeCache`); pass a shared instance to reuse results
    across decoders built over the same decoding state.
    """

    def __init__(
        self,
        dictionaries: DictionaryStore,
        thread_parents: Optional[Dict[ThreadId, CollectedSample]] = None,
        callsite_owners: Optional[Dict[int, int]] = None,
        cache: Optional[DecodeCache] = None,
    ):
        self._dictionaries = dictionaries
        self._thread_parents = thread_parents or {}
        # A call site is an *address*; the function containing it is a
        # static property, resolvable even when the edge it fed was
        # discovered after the sample's dictionary snapshot.  The engine
        # supplies this map (its full call graph) so Algorithm 1's
        # ``getEdge`` can always recover the saved caller.
        self._callsite_owners = callsite_owners or {}
        self.cache = cache

    # ------------------------------------------------------------------
    def decode(
        self,
        sample: CollectedSample,
        expand_recursion: bool = True,
        follow_threads: bool = True,
    ) -> CallingContext:
        """Decode ``sample`` into a full calling context.

        With ``expand_recursion`` compressed recursive repetitions are
        materialised so the result is the exact executed path; otherwise
        repetition counts stay attached to the steps (Algorithm 1's
        compact output).  With ``follow_threads`` the spawning thread's
        context is decoded recursively and prepended.
        """
        cache = self.cache
        if cache is not None:
            key = (sample, expand_recursion, follow_threads)
            cached = cache.get(key)
            if cached is not None:
                return cached
        context = self._decode_uncached(
            sample, expand_recursion, follow_threads
        )
        if cache is not None:
            cache.put(key, context)
        return context

    def _decode_uncached(
        self,
        sample: CollectedSample,
        expand_recursion: bool,
        follow_threads: bool,
    ) -> CallingContext:
        dictionary = self._dictionaries.get(sample.timestamp)
        segments, crossed_thread = self._decode_segments(sample, dictionary)
        steps = _emit(segments, expand=expand_recursion)

        if follow_threads and crossed_thread:
            parent_sample = self._thread_parents.get(sample.thread)
            if parent_sample is not None:
                parent = self.decode(
                    parent_sample,
                    expand_recursion=expand_recursion,
                    follow_threads=follow_threads,
                )
                if steps:
                    # Attribute the thread entry frame to the clone site.
                    steps[0] = ContextStep(
                        steps[0].function, CLONE_CALLSITE, steps[0].count
                    )
                return CallingContext(tuple(parent.steps) + tuple(steps))
        return CallingContext(tuple(steps))

    # ------------------------------------------------------------------
    def decode_best_effort(
        self,
        sample: CollectedSample,
        expand_recursion: bool = True,
        follow_threads: bool = True,
    ) -> PartialDecode:
        """Decode as much of ``sample`` as possible; never raise.

        Returns a :class:`~repro.core.faults.PartialDecode`: on success
        it wraps the same context :meth:`decode` returns with
        ``complete=True``; on failure it wraps the longest decodable
        leaf-most suffix plus a structured
        :class:`~repro.core.faults.DecodeFault` saying why the rest is
        missing.  Decoding walks leaf-to-root, so the recovered suffix
        is exact — only the root-ward prefix is lost.
        """
        try:
            dictionary = self._dictionaries.get(sample.timestamp)
        except StaleDictionaryError as error:
            # Without a dictionary only the sample point itself is known.
            return PartialDecode(
                context=CallingContext((ContextStep(sample.function),)),
                complete=False,
                fault=self._fault_from_error(
                    error, sample, default_reason="stale-dictionary"
                ),
            )
        try:
            segments, crossed_thread = self._decode_segments(sample, dictionary)
        except DecodingError as error:
            partial = getattr(error, "partial_segments", None) or []
            steps = _emit(partial, expand=expand_recursion)
            if not steps:
                steps = [ContextStep(sample.function)]
            return PartialDecode(
                context=CallingContext(tuple(steps)),
                complete=False,
                fault=self._fault_from_error(error, sample),
            )

        steps = _emit(segments, expand=expand_recursion)
        complete = True
        fault: Optional[DecodeFault] = None
        if follow_threads and crossed_thread:
            parent_sample = self._thread_parents.get(sample.thread)
            if parent_sample is None:
                complete = False
                fault = DecodeFault(
                    reason="missing-thread-parent",
                    message="no spawn sample recorded for thread %d"
                    % sample.thread,
                    timestamp=sample.timestamp,
                    context_id=sample.context_id,
                    function=sample.function,
                    thread=sample.thread,
                )
            else:
                parent = self.decode_best_effort(
                    parent_sample,
                    expand_recursion=expand_recursion,
                    follow_threads=follow_threads,
                )
                if steps:
                    steps[0] = ContextStep(
                        steps[0].function, CLONE_CALLSITE, steps[0].count
                    )
                steps = list(parent.context.steps) + steps
                complete = parent.complete
                fault = parent.fault
        return PartialDecode(
            context=CallingContext(tuple(steps)), complete=complete, fault=fault
        )

    @staticmethod
    def _fault_from_error(
        error: DecodingError,
        sample: CollectedSample,
        default_reason: str = "decoding-error",
    ) -> DecodeFault:
        return DecodeFault(
            reason=getattr(error, "reason", None) or default_reason,
            message=str(error),
            timestamp=sample.timestamp,
            context_id=sample.context_id,
            function=sample.function,
            thread=sample.thread,
        )

    # ------------------------------------------------------------------
    def _decode_segments(
        self,
        sample: CollectedSample,
        dictionary: EncodingDictionary,
    ) -> Tuple[List[_Segment], bool]:
        """Run Algorithm 1; returns (leaf-first segments, crossed_thread).

        Every failure raises a :class:`DecodingError` carrying a stable
        ``reason`` slug, the decode position (``function``, remaining
        ``context_id``, ``gts``, ``thread``) and ``partial_segments`` —
        the leaf-most sub-paths decoded before the failure, which
        :meth:`decode_best_effort` turns into a suffix context.
        """
        max_id = dictionary.max_id
        id_value = sample.context_id
        ifun = sample.function
        stack: List[CcStackEntry] = list(sample.ccstack)

        onstack = False

        def adjust() -> None:
            # Function AdjustID, lines 1-4 of Algorithm 1.
            nonlocal id_value, onstack
            if id_value > max_id:
                id_value -= max_id + 1
                onstack = True

        adjust()
        segments: List[_Segment] = []
        current: List[ContextStep] = [ContextStep(ifun)]
        guard = 0
        limit = (dictionary.num_nodes + 2) * (sample.ccstack_depth() + 2) + 64

        def fail(reason: str, message: str) -> DecodingError:
            # Attach the already-decoded leaf-most suffix (including the
            # in-progress segment) for decode_best_effort.
            return DecodingError(
                message,
                reason=reason,
                function=ifun,
                context_id=id_value,
                gts=sample.timestamp,
                thread=sample.thread,
                stack_depth=len(stack),
                partial_segments=segments + [_Segment(list(current))],
            )

        while True:
            guard += 1
            if guard > limit:
                raise fail(
                    "no-termination",
                    "decoding did not terminate after %d rounds" % limit,
                )

            # Lines 9-25: consume saved sub-paths from the ccStack.
            while id_value == 0 and onstack:
                if not stack:
                    raise fail(
                        "ccstack-underflow",
                        "id marks a saved sub-path but the ccStack is empty",
                    )
                top = stack[-1]
                if top.callsite == CLONE_CALLSITE:
                    # Thread-base sentinel: the context continues in the
                    # spawning thread (Section 5.3).  Like any saved head,
                    # the entry only pops once decoding reaches the thread
                    # entry function; otherwise the sub-path continues
                    # through encoded edges.
                    if ifun != top.target:
                        break
                    stack.pop()
                    if stack:
                        raise fail(
                            "entries-below-sentinel",
                            "entries found below the thread-base sentinel",
                        )
                    segments.append(_Segment(current))
                    return segments, True
                if top.callsite == UNTRACKED_CALLSITE:
                    # Targeted-encoding boundary entries (see
                    # repro.static.targeted).  A departure entry was
                    # pushed when control left the targeted subgraph; a
                    # re-entry entry when untracked code called back in.
                    # The whole untracked span between them decodes to a
                    # single <untracked> pseudo-step.
                    if ifun == UNTRACKED_FUNCTION:
                        # Departure: resume at the tracked function that
                        # made the departing call, with its saved id.
                        onstack = False
                        stack.pop()
                        segments.append(_Segment(current, entry=top))
                        ifun = top.target
                        current = [ContextStep(ifun)]
                        id_value = top.id
                        adjust()
                        continue
                    if ifun == top.target:
                        # Re-entry: the function untracked code called
                        # back into; below it sits the untracked span.
                        onstack = False
                        stack.pop()
                        segments.append(_Segment(current, entry=top))
                        ifun = UNTRACKED_FUNCTION
                        current = [ContextStep(ifun)]
                        id_value = top.id
                        adjust()
                        continue
                    break  # sub-path continues through encoded edges
                if ifun == top.target:
                    onstack = False
                    stack.pop()
                    edge = dictionary.find_edge(top.callsite, ifun)
                    if edge is not None:
                        caller = edge.caller
                    else:
                        caller = self._callsite_owners.get(top.callsite)
                        if caller is None:
                            raise fail(
                                "unknown-callsite",
                                "no edge at callsite %d to %d in dictionary "
                                "%d and the call site is unknown"
                                % (top.callsite, ifun, dictionary.timestamp),
                            )
                    unit = None
                    if top.count:
                        try:
                            unit = self._decode_repetition_unit(
                                dictionary, caller, top
                            )
                        except DecodingError as error:
                            error.partial_segments = segments + [
                                _Segment(list(current), entry=top)
                            ]
                            error.details["partial_segments"] = (
                                error.partial_segments
                            )
                            raise
                    segments.append(_Segment(current, entry=top, unit=unit))
                    ifun = caller
                    current = [ContextStep(ifun)]
                    id_value = top.id
                    adjust()
                else:
                    break

            # Lines 26-33: greedy in-edge interval decode of one step.
            matched = None
            for edge in dictionary.encoded_in_edges(ifun):
                low = edge.encoding
                if low <= id_value < low + dictionary.numcc(edge.caller):
                    matched = edge
                    break
            if matched is not None:
                head = current[0]
                current[0] = ContextStep(
                    head.function, matched.callsite, head.count
                )
                ifun = matched.caller
                current.insert(0, ContextStep(ifun))
                id_value -= matched.encoding
                continue

            # Lines 34-36: termination.
            if not stack and id_value == 0:
                break
            raise fail(
                "stuck",
                "stuck decoding at function %d with id %d (stack depth %d)"
                % (ifun, id_value, len(stack)),
            )

        segments.append(_Segment(current))
        return segments, False

    # ------------------------------------------------------------------
    def _decode_repetition_unit(
        self,
        dictionary: EncodingDictionary,
        caller: int,
        entry: CcStackEntry,
    ) -> List[ContextStep]:
        """Decode the cycle body of one compressed recursive repetition.

        Each compressed iteration executed ``target -> ... -> caller``
        over encoded edges (summing to ``entry.id - (maxID + 1)``; a
        compressed entry's id always carries the sub-path mark) and then
        re-took the back edge at ``entry.callsite``.  Greedy decode from
        the caller, stopping at the *first* visit of the target with zero
        remaining — within the acyclic cycle body the target occurs only
        at its head, so this terminates exactly there.
        """
        remaining = entry.id - (dictionary.max_id + 1)
        if remaining < 0:
            raise DecodingError(
                "compressed ccStack entry %r has an unmarked id" % (entry,),
                reason="unmarked-compressed-id",
                gts=dictionary.timestamp,
                context_id=entry.id,
                function=entry.target,
            )
        ifun = caller
        steps: List[ContextStep] = [ContextStep(ifun)]
        guard = dictionary.num_nodes + 2
        while not (remaining == 0 and ifun == entry.target):
            guard -= 1
            if guard < 0:
                raise DecodingError(
                    "repetition unit of %r did not terminate" % (entry,),
                    reason="repetition-no-termination",
                    gts=dictionary.timestamp,
                    context_id=entry.id,
                    function=ifun,
                )
            matched = None
            for edge in dictionary.encoded_in_edges(ifun):
                low = edge.encoding
                if low <= remaining < low + dictionary.numcc(edge.caller):
                    matched = edge
                    break
            if matched is None:
                raise DecodingError(
                    "stuck decoding repetition unit of %r at function %d "
                    "with id %d" % (entry, ifun, remaining),
                    reason="stuck-repetition",
                    gts=dictionary.timestamp,
                    context_id=remaining,
                    function=ifun,
                )
            head = steps[0]
            steps[0] = ContextStep(head.function, matched.callsite, head.count)
            ifun = matched.caller
            steps.insert(0, ContextStep(ifun))
            remaining -= matched.encoding
        # The cycle is entered through the compressed back edge itself.
        steps[0] = ContextStep(entry.target, entry.callsite, 0)
        return steps


# ----------------------------------------------------------------------
# segment emission
# ----------------------------------------------------------------------
def _emit(segments: Sequence[_Segment], expand: bool) -> List[ContextStep]:
    """Concatenate leaf-first ``segments`` into a root-to-leaf step list.

    The executed path is ``S_{n-1} e_{n-2} S_{n-2} ... S_1 e_0 S_0`` where
    ``e_i = segments[i].entry`` lands on the head of ``S_i``.  With
    ``expand``, a count ``k`` on ``e_i`` inserts ``k`` copies of the
    decoded repetition cycle (``segments[i].unit``) just before ``S_i``'s
    head; without it the count stays attached to the head step, which is
    the paper's Algorithm 1 output format.
    """
    n = len(segments)
    out: List[ContextStep] = []
    for i in range(n - 1, -1, -1):
        steps = list(segments[i].steps)
        entry = segments[i].entry
        if entry is not None:
            head = steps[0]
            count = 0 if expand else entry.count
            steps[0] = ContextStep(head.function, entry.callsite, count)
            if expand and entry.count:
                unit = segments[i].unit or []
                for _ in range(entry.count):
                    out.extend(unit)
        out.extend(steps)
    return out


def decode_sample(
    sample: CollectedSample,
    dictionaries: DictionaryStore,
    expand_recursion: bool = True,
) -> CallingContext:
    """One-shot convenience decode without thread stitching."""
    return Decoder(dictionaries).decode(
        sample, expand_recursion=expand_recursion, follow_threads=False
    )
