"""Persistence of decoding state — offline context reconstruction.

The paper's deployment story separates recording from decoding: the
instrumented process writes compact context records continuously, and a
*different* process (the debugger, the race-report generator) decodes
them later.  That requires everything Algorithm 1 consumes to be
persistable:

* every decoding dictionary produced so far (per ``gTimeStamp``),
* the call-site owner map (callsite -> containing function),
* the thread-creation samples used to stitch cross-thread contexts.

:func:`export_decoding_state` captures all of it from a live engine as
JSON; :func:`load_decoder` reconstructs a fully functional
:class:`~repro.core.decoder.Decoder` from the file — no engine, graph or
program required.  Together with :class:`~repro.core.samplelog.SampleLog`
this completes the offline pipeline::

    # recording process
    engine.run(events)
    log.extend(engine.samples)
    export_decoding_state(engine, "run.state.json")
    open("run.log", "wb").write(log.to_bytes())

    # analysis process (later, elsewhere)
    decoder = load_decoder("run.state.json")
    log = SampleLog.from_bytes(open("run.log", "rb").read())
    contexts = decode_log(decoder, log)          # lazy iterator of contexts

Decoded contexts are *returned*, never printed — library code writes
nothing to stdout (rendering is the CLI's job; see ``dacce decode``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Iterator

from .context import CallingContext, CcStackEntry, CollectedSample
from .decoder import Decoder
from .dictionary import DictionaryStore, EdgeInfo, EncodingDictionary
from .errors import DacceError
from .events import CallKind

FORMAT_VERSION = 1


class SerializationError(DacceError):
    """Invalid or incompatible decoding-state data."""


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def dictionary_to_dict(dictionary: EncodingDictionary) -> Dict[str, Any]:
    return {
        "timestamp": dictionary.timestamp,
        "max_id": dictionary.max_id,
        "root": dictionary.root,
        "overflow_bits": dictionary.overflow_bits,
        "numcc": {str(fn): dictionary.numcc(fn) for fn in _numcc_keys(dictionary)},
        "edges": [
            {
                "caller": info.caller,
                "callee": info.callee,
                "callsite": info.callsite,
                "kind": info.kind.value,
                "is_back": info.is_back,
                "encoding": info.encoding,
            }
            for info in dictionary.edges()
        ],
    }


def _numcc_keys(dictionary: EncodingDictionary):
    return dictionary._numcc.keys()  # noqa: SLF001 — serializer is a friend


def sample_to_dict(sample: CollectedSample) -> Dict[str, Any]:
    return {
        "timestamp": sample.timestamp,
        "context_id": sample.context_id,
        "function": sample.function,
        "thread": sample.thread,
        "ccstack": [
            [entry.id, entry.callsite, entry.target, entry.count]
            for entry in sample.ccstack
        ],
    }


def sample_from_dict(data: Dict[str, Any]) -> CollectedSample:
    return CollectedSample(
        timestamp=data["timestamp"],
        context_id=data["context_id"],
        function=data["function"],
        thread=data.get("thread", 0),
        ccstack=tuple(
            CcStackEntry(entry[0], entry[1], entry[2], entry[3])
            for entry in data.get("ccstack", [])
        ),
    )


def decoding_state_to_dict(engine) -> Dict[str, Any]:
    """Everything a future decoder needs, as plain JSON-able data."""
    store = engine.dictionaries
    dictionaries = [
        dictionary_to_dict(store.get(ts))
        for ts in sorted(store._by_timestamp)  # noqa: SLF001
    ]
    return {
        "format": FORMAT_VERSION,
        "dictionaries": dictionaries,
        "callsite_owners": {
            str(edge.callsite): edge.caller for edge in engine.graph.edges()
        },
        "thread_parents": {
            str(thread): sample_to_dict(sample)
            for thread, sample in engine.thread_parents.items()
        },
    }


def export_decoding_state(engine, path: str) -> str:
    """Write the engine's complete decoding state to ``path`` (JSON)."""
    with open(path, "w") as handle:
        json.dump(decoding_state_to_dict(engine), handle)
    return path


# ----------------------------------------------------------------------
# import
# ----------------------------------------------------------------------
def dictionary_from_dict(data: Dict[str, Any]) -> EncodingDictionary:
    try:
        edges = {}
        for edge in data["edges"]:
            info = EdgeInfo(
                caller=edge["caller"],
                callee=edge["callee"],
                callsite=edge["callsite"],
                kind=CallKind(edge["kind"]),
                is_back=edge["is_back"],
                encoding=edge["encoding"],
            )
            edges[(info.callsite, info.callee)] = info
        return EncodingDictionary(
            timestamp=data["timestamp"],
            numcc={int(k): v for k, v in data["numcc"].items()},
            edges=edges,
            max_id=data["max_id"],
            root=data["root"],
            overflow_bits=data.get("overflow_bits"),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise SerializationError("bad dictionary data: %s" % error) from error


def decoder_from_dict(data: Dict[str, Any]) -> Decoder:
    if data.get("format") != FORMAT_VERSION:
        raise SerializationError(
            "unsupported decoding-state format %r" % data.get("format")
        )
    store = DictionaryStore()
    for entry in data["dictionaries"]:
        store.add(dictionary_from_dict(entry))
    thread_parents = {
        int(thread): sample_from_dict(sample)
        for thread, sample in data.get("thread_parents", {}).items()
    }
    owners = {
        int(callsite): owner
        for callsite, owner in data.get("callsite_owners", {}).items()
    }
    return Decoder(store, thread_parents, callsite_owners=owners)


def load_decoder(path: str) -> Decoder:
    """Reconstruct a decoder from an exported decoding-state file."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise SerializationError("not a decoding-state file") from error
    return decoder_from_dict(data)


def decode_log(
    decoder: Decoder, samples: Iterable[CollectedSample]
) -> Iterator[CallingContext]:
    """Lazily decode a recorded sample stream to calling contexts.

    The offline counterpart of the engine's live queries: pairs a
    reconstructed decoder with a :class:`~repro.core.samplelog.SampleLog`
    (or any sample iterable) and yields one
    :class:`~repro.core.context.CallingContext` per record.
    """
    for sample in samples:
        yield decoder.decode(sample)
