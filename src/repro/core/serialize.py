"""Persistence of decoding state — offline context reconstruction.

The paper's deployment story separates recording from decoding: the
instrumented process writes compact context records continuously, and a
*different* process (the debugger, the race-report generator) decodes
them later.  That requires everything Algorithm 1 consumes to be
persistable:

* every decoding dictionary produced so far (per ``gTimeStamp``),
* the call-site owner map (callsite -> containing function),
* the thread-creation samples used to stitch cross-thread contexts.

:func:`export_decoding_state` captures all of it from a live engine as
JSON; :func:`load_decoder` reconstructs a fully functional
:class:`~repro.core.decoder.Decoder` from the file — no engine, graph or
program required.  Together with :class:`~repro.core.samplelog.SampleLog`
this completes the offline pipeline::

    # recording process
    engine.run(events)
    log.extend(engine.samples)
    export_decoding_state(engine, "run.state.json")
    open("run.log", "wb").write(log.to_bytes())

    # analysis process (later, elsewhere)
    decoder = load_decoder("run.state.json")
    log = SampleLog.from_bytes(open("run.log", "rb").read())
    contexts = decode_log(decoder, log)          # lazy iterator of contexts

Decoded contexts are *returned*, never printed — library code writes
nothing to stdout (rendering is the CLI's job; see ``dacce decode``).
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, Iterable, Iterator, List, Union

from .context import CallingContext, CcStackEntry, CollectedSample
from .decoder import Decoder
from .dictionary import DictionaryStore, EdgeInfo, EncodingDictionary
from .errors import DacceError
from .events import CallKind
from .faults import PartialDecode

#: Version 2 adds a per-dictionary ``checksum`` field (CRC32 of the
#: canonical JSON of the dictionary payload).  Version 1 files — no
#: checksums — are still loadable.
FORMAT_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)


class SerializationError(DacceError):
    """Invalid or incompatible decoding-state data.

    Structured attributes: ``reason`` (``not-json`` /
    ``unsupported-format`` / ``checksum-mismatch`` /
    ``bad-dictionary``) plus context such as ``gts`` where it applies.
    """


def dictionary_checksum(payload: Dict[str, Any]) -> int:
    """CRC32 over the canonical JSON of one dictionary payload.

    The ``checksum`` key itself is excluded, so the stored value can be
    verified against the rest of the entry.
    """
    trimmed = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(trimmed, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8")) & 0xFFFFFFFF


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
def dictionary_to_dict(dictionary: EncodingDictionary) -> Dict[str, Any]:
    return {
        "timestamp": dictionary.timestamp,
        "max_id": dictionary.max_id,
        "root": dictionary.root,
        "overflow_bits": dictionary.overflow_bits,
        "numcc": {str(fn): dictionary.numcc(fn) for fn in _numcc_keys(dictionary)},
        "edges": [
            {
                "caller": info.caller,
                "callee": info.callee,
                "callsite": info.callsite,
                "kind": info.kind.value,
                "is_back": info.is_back,
                "encoding": info.encoding,
            }
            for info in dictionary.edges()
        ],
    }


def _numcc_keys(dictionary: EncodingDictionary):
    return dictionary._numcc.keys()  # noqa: SLF001 — serializer is a friend


def sample_to_dict(sample: CollectedSample) -> Dict[str, Any]:
    return {
        "timestamp": sample.timestamp,
        "context_id": sample.context_id,
        "function": sample.function,
        "thread": sample.thread,
        "ccstack": [
            [entry.id, entry.callsite, entry.target, entry.count]
            for entry in sample.ccstack
        ],
    }


def sample_from_dict(data: Dict[str, Any]) -> CollectedSample:
    return CollectedSample(
        timestamp=data["timestamp"],
        context_id=data["context_id"],
        function=data["function"],
        thread=data.get("thread", 0),
        ccstack=tuple(
            CcStackEntry(entry[0], entry[1], entry[2], entry[3])
            for entry in data.get("ccstack", [])
        ),
    )


def decoding_state_to_dict(engine) -> Dict[str, Any]:
    """Everything a future decoder needs, as plain JSON-able data."""
    store = engine.dictionaries
    dictionaries = []
    for ts in sorted(store._by_timestamp):  # noqa: SLF001
        entry = dictionary_to_dict(store.get(ts))
        entry["checksum"] = dictionary_checksum(entry)
        dictionaries.append(entry)
    return {
        "format": FORMAT_VERSION,
        "dictionaries": dictionaries,
        "callsite_owners": {
            str(edge.callsite): edge.caller for edge in engine.graph.edges()
        },
        "thread_parents": {
            str(thread): sample_to_dict(sample)
            for thread, sample in engine.thread_parents.items()
        },
        # Additive sections (still format 2 — older loaders ignore them).
        # ``config`` carries what offline verification needs to reason
        # about the id space; ``edge_stats`` carries the dynamic edge
        # list with invocation counts, which powers the ``dacce lint``
        # cross-check against a static call graph and the dead-edge scan.
        "config": {"id_bits": engine.config.id_bits},
        "edge_stats": [
            {
                "caller": edge.caller,
                "callee": edge.callee,
                "callsite": edge.callsite,
                "kind": edge.kind.value,
                "is_back": edge.is_back,
                "seeded": edge.seeded,
                "invocations": edge.invocations,
            }
            for edge in engine.graph.edges()
        ],
        **_targeted_section(engine),
    }


def _targeted_section(engine) -> Dict[str, Any]:
    """Additive ``targeted`` section for engines in targeted mode.

    Records the targeted function set and resolved sinks so offline
    tools (``dacce lint --targets``, ``dacce guard check``) can verify
    coverage against the plan the run actually used.
    """
    plan = getattr(engine, "_targeted", None)
    if plan is None:
        return {}
    fns = getattr(engine, "_targeted_fns", None) or plan.functions
    return {
        "targeted": {
            "functions": sorted(fns),
            "sinks": sorted(plan.sinks),
        }
    }


def export_decoding_state(engine, path: str) -> str:
    """Write the engine's complete decoding state to ``path`` (JSON)."""
    with open(path, "w") as handle:
        json.dump(decoding_state_to_dict(engine), handle)
    return path


# ----------------------------------------------------------------------
# import
# ----------------------------------------------------------------------
def dictionary_from_dict(data: Dict[str, Any]) -> EncodingDictionary:
    try:
        edges = {}
        for edge in data["edges"]:
            info = EdgeInfo(
                caller=edge["caller"],
                callee=edge["callee"],
                callsite=edge["callsite"],
                kind=CallKind(edge["kind"]),
                is_back=edge["is_back"],
                encoding=edge["encoding"],
            )
            edges[(info.callsite, info.callee)] = info
        return EncodingDictionary(
            timestamp=data["timestamp"],
            numcc={int(k): v for k, v in data["numcc"].items()},
            edges=edges,
            max_id=data["max_id"],
            root=data["root"],
            overflow_bits=data.get("overflow_bits"),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise SerializationError(
            "bad dictionary data: %s" % error,
            reason="bad-dictionary",
            gts=data.get("timestamp"),
        ) from error


def verify_dictionary_entry(entry: Dict[str, Any]) -> None:
    """Raise :class:`SerializationError` when a v2 checksum fails."""
    stored = entry.get("checksum")
    actual = dictionary_checksum(entry)
    if stored != actual:
        raise SerializationError(
            "dictionary ts=%r checksum mismatch (stored %r, computed %d)"
            % (entry.get("timestamp"), stored, actual),
            reason="checksum-mismatch",
            gts=entry.get("timestamp"),
            stored=stored,
            actual=actual,
        )


def decoder_from_dict(data: Dict[str, Any], best_effort: bool = False) -> Decoder:
    version = data.get("format")
    if version not in _SUPPORTED_VERSIONS:
        raise SerializationError(
            "unsupported decoding-state format %r" % version,
            reason="unsupported-format",
            format=version,
            supported=list(_SUPPORTED_VERSIONS),
        )
    store = DictionaryStore()
    load_faults: List[Dict[str, Any]] = []
    for entry in data["dictionaries"]:
        try:
            if version >= 2:
                verify_dictionary_entry(entry)
            store.add(dictionary_from_dict(entry))
        except SerializationError as error:
            if not best_effort:
                raise
            load_faults.append(
                {
                    "reason": error.reason or "bad-dictionary",
                    "message": str(error),
                    "gts": error.gts,
                }
            )
    thread_parents = {
        int(thread): sample_from_dict(sample)
        for thread, sample in data.get("thread_parents", {}).items()
    }
    owners = {
        int(callsite): owner
        for callsite, owner in data.get("callsite_owners", {}).items()
    }
    decoder = Decoder(store, thread_parents, callsite_owners=owners)
    #: Dictionaries dropped by a best-effort load (empty when clean).
    decoder.load_faults = load_faults
    return decoder


def load_decoder(path: str, best_effort: bool = False) -> Decoder:
    """Reconstruct a decoder from an exported decoding-state file.

    With ``best_effort=True`` dictionaries that fail their checksum (or
    fail to parse) are skipped and reported on ``decoder.load_faults``
    instead of aborting the load; samples tagged with a dropped
    dictionary's timestamp then surface as stale-dictionary faults at
    decode time.
    """
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise SerializationError(
                "not a decoding-state file", reason="not-json"
            ) from error
    return decoder_from_dict(data, best_effort=best_effort)


def decode_log(
    decoder: Decoder,
    samples: Iterable[CollectedSample],
    best_effort: bool = False,
) -> Iterator[Union[CallingContext, PartialDecode]]:
    """Lazily decode a recorded sample stream to calling contexts.

    The offline counterpart of the engine's live queries: pairs a
    reconstructed decoder with a :class:`~repro.core.samplelog.SampleLog`
    (or any sample iterable) and yields one
    :class:`~repro.core.context.CallingContext` per record.  With
    ``best_effort=True`` each record instead yields a
    :class:`~repro.core.faults.PartialDecode` and undecodable samples
    degrade to their longest decodable suffix rather than raising.
    """
    for sample in samples:
        if best_effort:
            yield decoder.decode_best_effort(sample)
        else:
            yield decoder.decode(sample)
