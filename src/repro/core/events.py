"""Runtime event model shared by the trace executor and the engines.

The paper instruments machine code; the reproduction abstracts execution
into a stream of events.  Each event corresponds to something the
instrumented binary would observe:

* :class:`CallEvent` — a call instruction fires at a call site.
* :class:`ReturnEvent` — the current function returns.
* :class:`SampleEvent` — the libpfm4-style sampler fires and the current
  context id is recorded (Section 6.1 of the paper).
* :class:`ThreadStartEvent` / :class:`ThreadExitEvent` — ``clone`` is
  intercepted / a thread dies (Section 5.3).
* :class:`LibraryLoadEvent` — a shared library is ``dlopen``-ed; its
  functions become visible and its PLT entries bindable (Section 5.1).

Events carry integer function indices (``FunctionId``) and call-site ids
(``CallSiteId``); the program model owns the mapping to names.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union

FunctionId = int
CallSiteId = int
ThreadId = int


class CallKind(enum.Enum):
    """How a call site transfers control (Sections 3 and 5).

    The engine patches each kind differently:

    * ``NORMAL`` — direct call instruction.
    * ``INDIRECT`` — call through a function pointer / vtable.
    * ``TAIL`` — jump that replaces the current frame (Figure 7).
    * ``PLT`` — lazily bound call into a shared library (Section 5.1).
    """

    NORMAL = "normal"
    INDIRECT = "indirect"
    TAIL = "tail"
    PLT = "plt"


@dataclass(frozen=True)
class CallEvent:
    """A dynamic call: ``caller`` invokes ``callee`` at ``callsite``."""

    thread: ThreadId
    callsite: CallSiteId
    caller: FunctionId
    callee: FunctionId
    kind: CallKind = CallKind.NORMAL


@dataclass(frozen=True)
class ReturnEvent:
    """The top frame of ``thread`` returns to its caller."""

    thread: ThreadId


@dataclass(frozen=True)
class SampleEvent:
    """The sampling module fires on ``thread``; engines snapshot context."""

    thread: ThreadId


@dataclass(frozen=True)
class ThreadStartEvent:
    """``parent`` spawns ``thread`` whose entry function is ``entry``.

    The spawning context of the parent is captured by the engine so that
    full cross-thread contexts can be reconstructed at decode time.
    """

    thread: ThreadId
    parent: ThreadId
    entry: FunctionId


@dataclass(frozen=True)
class ThreadExitEvent:
    """``thread`` terminates; its per-thread state is discarded."""

    thread: ThreadId


@dataclass(frozen=True)
class LibraryLoadEvent:
    """A shared library identified by ``library`` is loaded at runtime."""

    thread: ThreadId
    library: str


Event = Union[
    CallEvent,
    ReturnEvent,
    SampleEvent,
    ThreadStartEvent,
    ThreadExitEvent,
    LibraryLoadEvent,
]


# ----------------------------------------------------------------------
# compact wire format
# ----------------------------------------------------------------------
# Hot event producers (the trace executor, the Python tracer) emit plain
# tuples instead of frozen dataclasses: at millions of events per run the
# dataclass allocation and attribute protocol dominate the engine's fast
# path.  ``DacceEngine.process_batch`` consumes these tuples directly;
# ``inflate``/``compact`` convert to and from the dataclass API, which
# remains the compatibility surface (``on_event`` and everything above
# it is unchanged).
#
# Layouts (first element is the opcode):
#
# * ``(EV_CALL, thread, callsite, caller, callee, kind_code)``
# * ``(EV_RETURN, thread)``
# * ``(EV_SAMPLE, thread)``
# * ``(EV_THREAD_START, thread, parent, entry)``
# * ``(EV_THREAD_EXIT, thread)``
# * ``(EV_LIBRARY_LOAD, thread, library)``

EV_CALL = 0
EV_RETURN = 1
EV_SAMPLE = 2
EV_THREAD_START = 3
EV_THREAD_EXIT = 4
EV_LIBRARY_LOAD = 5

#: Call kinds as small integers (tuple layout slot 5).
KIND_CODE = {
    CallKind.NORMAL: 0,
    CallKind.INDIRECT: 1,
    CallKind.TAIL: 2,
    CallKind.PLT: 3,
}
KIND_FROM_CODE: Tuple[CallKind, ...] = (
    CallKind.NORMAL,
    CallKind.INDIRECT,
    CallKind.TAIL,
    CallKind.PLT,
)

#: Kind code of a plain direct call — the fast-path opcode test.
KIND_NORMAL_CODE = KIND_CODE[CallKind.NORMAL]

CompactEvent = Tuple[int, ...]

#: Tuple arity per opcode — the columnar converters and tests use this
#: to validate that a record carries exactly the slots its layout names.
OPCODE_ARITY = {
    EV_CALL: 6,
    EV_RETURN: 2,
    EV_SAMPLE: 2,
    EV_THREAD_START: 4,
    EV_THREAD_EXIT: 2,
    EV_LIBRARY_LOAD: 3,
}


def compact(event: Event) -> CompactEvent:
    """The compact-tuple form of a dataclass event."""
    if isinstance(event, CallEvent):
        return (
            EV_CALL,
            event.thread,
            event.callsite,
            event.caller,
            event.callee,
            KIND_CODE[event.kind],
        )
    if isinstance(event, ReturnEvent):
        return (EV_RETURN, event.thread)
    if isinstance(event, SampleEvent):
        return (EV_SAMPLE, event.thread)
    if isinstance(event, ThreadStartEvent):
        return (EV_THREAD_START, event.thread, event.parent, event.entry)
    if isinstance(event, ThreadExitEvent):
        return (EV_THREAD_EXIT, event.thread)
    if isinstance(event, LibraryLoadEvent):
        # The library name rides along untyped; the tuple layout is an
        # internal wire format, not a serialisation format.
        return (EV_LIBRARY_LOAD, event.thread, event.library)  # type: ignore[return-value]
    raise TypeError("cannot compact unknown event %r" % (event,))


def inflate(record: CompactEvent) -> Event:
    """The dataclass form of a compact tuple (general-path delegation)."""
    op = record[0]
    if op == EV_CALL:
        return CallEvent(
            thread=record[1],
            callsite=record[2],
            caller=record[3],
            callee=record[4],
            kind=KIND_FROM_CODE[record[5]],
        )
    if op == EV_RETURN:
        return ReturnEvent(thread=record[1])
    if op == EV_SAMPLE:
        return SampleEvent(thread=record[1])
    if op == EV_THREAD_START:
        return ThreadStartEvent(
            thread=record[1], parent=record[2], entry=record[3]
        )
    if op == EV_THREAD_EXIT:
        return ThreadExitEvent(thread=record[1])
    if op == EV_LIBRARY_LOAD:
        return LibraryLoadEvent(thread=record[1], library=record[2])  # type: ignore[arg-type]
    raise TypeError("cannot inflate unknown opcode %r" % (op,))
