"""Runtime event model shared by the trace executor and the engines.

The paper instruments machine code; the reproduction abstracts execution
into a stream of events.  Each event corresponds to something the
instrumented binary would observe:

* :class:`CallEvent` — a call instruction fires at a call site.
* :class:`ReturnEvent` — the current function returns.
* :class:`SampleEvent` — the libpfm4-style sampler fires and the current
  context id is recorded (Section 6.1 of the paper).
* :class:`ThreadStartEvent` / :class:`ThreadExitEvent` — ``clone`` is
  intercepted / a thread dies (Section 5.3).
* :class:`LibraryLoadEvent` — a shared library is ``dlopen``-ed; its
  functions become visible and its PLT entries bindable (Section 5.1).

Events carry integer function indices (``FunctionId``) and call-site ids
(``CallSiteId``); the program model owns the mapping to names.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

FunctionId = int
CallSiteId = int
ThreadId = int


class CallKind(enum.Enum):
    """How a call site transfers control (Sections 3 and 5).

    The engine patches each kind differently:

    * ``NORMAL`` — direct call instruction.
    * ``INDIRECT`` — call through a function pointer / vtable.
    * ``TAIL`` — jump that replaces the current frame (Figure 7).
    * ``PLT`` — lazily bound call into a shared library (Section 5.1).
    """

    NORMAL = "normal"
    INDIRECT = "indirect"
    TAIL = "tail"
    PLT = "plt"


@dataclass(frozen=True)
class CallEvent:
    """A dynamic call: ``caller`` invokes ``callee`` at ``callsite``."""

    thread: ThreadId
    callsite: CallSiteId
    caller: FunctionId
    callee: FunctionId
    kind: CallKind = CallKind.NORMAL


@dataclass(frozen=True)
class ReturnEvent:
    """The top frame of ``thread`` returns to its caller."""

    thread: ThreadId


@dataclass(frozen=True)
class SampleEvent:
    """The sampling module fires on ``thread``; engines snapshot context."""

    thread: ThreadId


@dataclass(frozen=True)
class ThreadStartEvent:
    """``parent`` spawns ``thread`` whose entry function is ``entry``.

    The spawning context of the parent is captured by the engine so that
    full cross-thread contexts can be reconstructed at decode time.
    """

    thread: ThreadId
    parent: ThreadId
    entry: FunctionId


@dataclass(frozen=True)
class ThreadExitEvent:
    """``thread`` terminates; its per-thread state is discarded."""

    thread: ThreadId


@dataclass(frozen=True)
class LibraryLoadEvent:
    """A shared library identified by ``library`` is loaded at runtime."""

    thread: ThreadId
    library: str


Event = Union[
    CallEvent,
    ReturnEvent,
    SampleEvent,
    ThreadStartEvent,
    ThreadExitEvent,
    LibraryLoadEvent,
]
