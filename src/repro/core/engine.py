"""The DACCE runtime engine (Sections 3-5).

This is the reproduction's counterpart of ``dacce.so``: it consumes the
event stream an instrumented binary would produce and maintains, per
thread, the context identifier and ccStack exactly as the paper's
instrumentation would.

* The call graph starts with only the root function; every call edge is
  discovered by the *runtime handler* at its first invocation and is not
  encoded until the next re-encoding pass (Section 3).
* Calls over edges without a current encoding push ``<id, callsite,
  target>`` on the ccStack and set ``id = maxID + 1`` (Figure 2(b)).
* Indirect calls dispatch through the per-site inline cache or hash
  table (Figures 3-4); misses take the unencoded path.
* Recursive back edges always take the ccStack; once the adaptive pass
  marks them repetitive they compress repetitions into a counter
  (Figure 5(e)).
* Tail calls replace the top frame; the encoding context of the whole
  replaced chain is restored through the TcStack mechanism when the
  final callee returns (Figure 7).
* Each thread owns TLS state (id, ccStack); ``clone`` is intercepted so
  cross-thread contexts can be reconstructed (Section 5.3).
* The adaptive policy's triggers start a re-encoding pass: back edges
  are reclassified hottest-first, in-edges are ordered by frequency (the
  hottest gets encoding 0 — zero instrumentation), indirect sites are
  re-patched, ``gTimeStamp`` is bumped, and every thread's live id and
  ccStack are regenerated under the new dictionary (Section 4).

The engine doubles as its own oracle: it keeps the true shadow stack per
thread, so tests can cross-validate decoded contexts the way the paper
cross-validates against stack walking (Section 6.1).
"""

from __future__ import annotations

import enum
import logging
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from ..cost.model import CostModel
from ..obs import (
    NULL_SPANS,
    NULL_TELEMETRY,
    ReencodePassReport,
    SpanRecorder,
    Telemetry,
)
from .adaptive import (
    AdaptiveConfig,
    AdaptivePolicy,
    TriggerDecision,
    WindowStats,
    classify_back_edges,
)
from .callgraph import CallEdge, CallGraph
from .ccstack import (
    CLONE_CALLSITE,
    UNTRACKED_CALLSITE,
    UNTRACKED_FUNCTION,
    CcStack,
)
from .context import CallingContext, CollectedSample, ContextStep
from .dictionary import DictionaryStore, EncodingDictionary
from .encoder import EdgeOrderPolicy, Encoder, frequency_order, insertion_order
from .errors import DacceError, ReencodeError, TraceError
from .decoder import DecodeCache, Decoder
from .events import (
    EV_CALL,
    EV_RETURN,
    CallEvent,
    CallKind,
    CallSiteId,
    CompactEvent,
    Event,
    FunctionId,
    LibraryLoadEvent,
    ReturnEvent,
    SampleEvent,
    ThreadExitEvent,
    ThreadId,
    ThreadStartEvent,
    inflate,
)
from .columnar import EventColumns
from .faults import FaultKind, FaultLog, FaultPolicy, FaultRecord, RecoveryAction
from .fastpath import (
    KERNEL_DEOPT,
    KERNEL_DONE,
    KERNEL_SAMPLE,
    ColumnarKernel,
    FastPathStats,
    FastPathTable,
    compile_columnar_kernel,
    compile_table,
)
from .indirect import DEFAULT_HASH_THRESHOLD, IndirectDispatchTable
from .invariants import check_dictionary

if TYPE_CHECKING:  # imported lazily: repro.static depends on repro.core
    from ..static.targeted import TargetedPlan
    from ..static.warmstart import WarmStartPlan

logger = logging.getLogger(__name__)


class CompressionMode(enum.Enum):
    """How recursion compression is decided (ablation A3)."""

    ADAPTIVE = "adaptive"   # per-edge, once the policy sees repetition
    ALWAYS = "always"       # every back edge compresses from the start
    NEVER = "never"         # plain pushes only


@dataclass
class DacceConfig:
    """Engine configuration; defaults mirror the paper's prototype."""

    id_bits: int = 64
    hash_threshold: int = DEFAULT_HASH_THRESHOLD
    compression: CompressionMode = CompressionMode.ADAPTIVE
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)
    #: Keep collected samples in memory (disable for pure-overhead runs).
    retain_samples: bool = True
    #: Hard cap on re-encoding passes (None = unlimited).
    max_reencodings: Optional[int] = None
    #: Re-classify back edges hottest-first during re-encoding.
    reclassify_back_edges: bool = True
    #: Order in-edges by frequency during re-encoding (hot edge gets 0).
    frequency_ordering: bool = True
    #: Debug aid: decode every collected sample on the spot and compare
    #: it with the shadow-stack oracle (the paper's §6.1 check, inline).
    #: Failures are counted in ``stats.validation_failures``.
    self_validate: bool = False
    #: How malformed events are handled: ``STRICT`` raises (the paper's
    #: semantics), ``RECOVER`` quarantines the event into ``engine.faults``,
    #: resynchronises the thread and keeps encoding (docs/ROBUSTNESS.md).
    fault_policy: FaultPolicy = FaultPolicy.STRICT
    #: Retained quarantine records (older ones are evicted but counted).
    fault_log_capacity: int = 1024
    #: Run ``invariants.check_dictionary`` as the commit gate of every
    #: re-encoding pass; a failing pass is rolled back completely.
    reencode_commit_gate: bool = True


class _Action(enum.Enum):
    """What the forward instrumentation of a call did (for the unwind)."""

    NONE = 0            # encoding 0 — no instrumentation at all
    ID = 1              # id += En
    PUSH = 2            # ccStack push (recursive back edge)
    COMPRESS = 3        # ccStack counter bump (compressed recursion)
    DISCOVERY_PUSH = 4  # ccStack push for a not-yet-encoded edge
    UNTRACKED = 5       # targeted mode: interior untracked call, no work
    BOUNDARY_DEP = 6    # targeted mode: departure from the subgraph
    BOUNDARY_RE = 7     # targeted mode: re-entry into the subgraph


@dataclass(slots=True)
class _Frame:
    """Shadow-stack frame.

    ``chain`` holds the (function, callsite, kind) sequence of tail-call
    replaced predecessors — the logical context includes them even though
    their machine frames are gone.  ``restore_id`` / ``cc_state`` are the
    encoding context at entry of the *chain head*, which is what the
    TcStack restores after a tail-call chain returns (Figure 7).

    Frames are allocated once per dynamic call and never mutated, so the
    chain is an immutable tuple (shared between a frame and its
    regenerated twin) and the class is slotted — both shave per-call
    allocation cost off the hot path.
    """

    function: FunctionId
    callsite: Optional[CallSiteId]
    restore_id: int
    cc_state: Tuple[int, int]
    action: _Action
    kind: CallKind = CallKind.NORMAL
    chain: Tuple[Tuple[FunctionId, CallSiteId, CallKind], ...] = ()

    @property
    def is_tail_chain(self) -> bool:
        return bool(self.chain)


@dataclass
class _ThreadState:
    """Per-thread TLS block: context id, ccStack, shadow stack."""

    thread: ThreadId
    id_value: int
    ccstack: CcStack
    frames: List[_Frame]
    spawned_entry: Optional[FunctionId] = None


@dataclass
class ReencodeRecord:
    """One re-encoding pass — the Figure 9 time series and Table 1 costs."""

    timestamp: int
    at_call: int
    nodes: int
    edges: int
    max_id: int
    reasons: Tuple[str, ...]
    cost_cycles: float


@dataclass
class DacceStats:
    """Aggregate runtime statistics (feeds Table 1 and Figure 10)."""

    calls: int = 0
    returns: int = 0
    samples: int = 0
    handler_invocations: int = 0
    unencoded_calls: int = 0
    back_edge_calls: int = 0
    indirect_hits: int = 0
    indirect_misses: int = 0
    tail_calls: int = 0
    reencodings: int = 0
    reencode_cost_cycles: float = 0.0
    validation_failures: int = 0
    #: ccStack operations caused by edges awaiting their first encoding
    #: (bounded per edge by the re-encoding latency; excluded from the
    #: steady-state ccStack rate of Table 1).
    discovery_ccstack_ops: int = 0
    #: Edges pre-encoded at gTimeStamp 0 from the static warm-start plan.
    static_seeded_edges: int = 0
    #: First invocations that landed on a seeded edge — each one is a
    #: runtime-handler call (plus the discovery ccStack traffic until the
    #: next re-encoding pass) that cold-start DACCE would have paid.
    warmstart_handler_hits_avoided: int = 0
    #: Samples delivered to the continuous-profiling hook (distinct from
    #: ``samples``, which counts explicit SampleEvents in the stream).
    profile_samples: int = 0
    #: Targeted mode: calls entirely outside the targeted subgraph —
    #: each one paid a shadow frame and nothing else (no id update, no
    #: ccStack traffic, no graph or dictionary work).
    untracked_calls: int = 0
    #: Targeted mode: calls that crossed the subgraph boundary
    #: (departures plus re-entries), each costing one ccStack push.
    boundary_crossings: int = 0

    @property
    def gts(self) -> int:
        """The paper's ``gTS`` column: re-encoding passes performed."""
        return self.reencodings


#: A profiling-hook callback: receives the compact sample and its weight.
SampleCallback = Callable[[CollectedSample, float], None]


@dataclass(slots=True)
class SampleHook:
    """The engine's continuous-profiling sampling hook.

    Every ``every``-th applied call fires ``callback(sample, weight)``
    with a :class:`CollectedSample` built from the calling thread's live
    state.  ``weigher`` supplies the sample weight (e.g. wall-time since
    the previous sample, from :mod:`repro.pytrace`); without one each
    sample weighs its period in calls, so total weight tracks total
    calls regardless of the sampling rate.

    The disabled cost is a single ``is None`` test per call on both the
    general and the batched fast path; the enabled steady-state cost on
    the batched paths is one *local* integer decrement per call — the
    countdown is mirrored into a loop register and written back at
    flush boundaries, so the hot loop never touches this object
    (``benchmarks/bench_profile_overhead.py`` measures both).
    """

    every: int
    callback: SampleCallback
    weigher: Optional[Callable[[], float]] = None
    countdown: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        if self.every <= 0:
            raise DacceError(
                "sample hook period must be positive, got %d" % self.every
            )
        self.countdown = self.every


class DacceEngine:
    """Dynamic and adaptive calling-context encoding over an event stream."""

    def __init__(
        self,
        root: FunctionId = 0,
        config: Optional[DacceConfig] = None,
        cost_model: Optional[CostModel] = None,
        graph: Optional[CallGraph] = None,
        initial_order_policy: EdgeOrderPolicy = insertion_order,
        telemetry: Optional[Telemetry] = None,
        warm_start: Optional["WarmStartPlan"] = None,
        targeted: Optional["TargetedPlan"] = None,
        spans: Optional["SpanRecorder"] = None,
    ):
        self.config = config or DacceConfig()
        self.cost = cost_model or CostModel()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        # Span tracing follows the telemetry pattern: one shared no-op
        # recorder when disabled, one boolean guard per slow-path site.
        self.spans = spans if spans is not None else NULL_SPANS
        self._targeted = targeted
        self._targeted_fns: Optional[Set[FunctionId]] = None
        if targeted is not None:
            if warm_start is not None or graph is not None:
                raise DacceError(
                    "a targeted plan embeds its own warm-start graph; "
                    "pass neither graph nor warm_start alongside targeted"
                )
            warm_start = targeted.warm_start
        if warm_start is not None:
            if graph is not None:
                raise DacceError(
                    "pass either graph or warm_start, not both"
                )
            if warm_start.dictionary.timestamp != 0:
                raise DacceError(
                    "warm-start dictionary must be at gTimeStamp 0, got %d"
                    % warm_start.dictionary.timestamp
                )
            graph = warm_start.graph
        self.graph = graph if graph is not None else CallGraph(root)
        if graph is not None:
            root = graph.root
        if targeted is not None:
            # The root is force-tracked: every thread's bottom frame must
            # be inside the subgraph or decoding would start untracked.
            self._targeted_fns = set(targeted.functions) | {root}
        self.dictionaries = DictionaryStore()
        self.policy = AdaptivePolicy(self.config.adaptive)
        self.indirect = IndirectDispatchTable(self.config.hash_threshold)
        self.stats = DacceStats()
        self.faults = FaultLog(capacity=self.config.fault_log_capacity)
        # Fault policy behind one boolean (same pattern as telemetry): the
        # strict hot path pays a single guard per event, nothing else.
        self._recover = self.config.fault_policy is FaultPolicy.RECOVER
        self.samples: List[CollectedSample] = []
        self.reencode_log: List[ReencodeRecord] = []
        #: Called synchronously with each committed pass's record — the
        #: ingest plane's frame-emission hook (see ``repro.ingest``).
        #: Listener exceptions are logged, never raised into the pass.
        self.reencode_listeners: List[Callable[[ReencodeRecord], None]] = []
        self.thread_parents: Dict[ThreadId, CollectedSample] = {}
        self._timestamp = 0
        self._window = WindowStats()
        self._edges_at_last_encode = 0
        self._tail_calling_functions: Set[FunctionId] = set()
        self._threads: Dict[ThreadId, _ThreadState] = {}
        # ccStack counters of threads that already exited (Table 1 sums
        # traffic over the whole run, not just live threads).
        self._retired_ccstack = {
            "pushes": 0,
            "pops": 0,
            "compressions": 0,
            "decompressions": 0,
            "max_depth": 0,
        }

        # Initial encoding: a graph containing only ``main`` (Section 6.1)
        # for DACCE; a warm-start plan instead supplies a pre-validated
        # gTimeStamp-0 dictionary over the static subgraph, and subclasses
        # may pass a pre-populated graph.
        self._encoder = Encoder(
            order_policy=initial_order_policy, id_bits=self.config.id_bits
        )
        self._warm = warm_start is not None
        if warm_start is not None:
            self._current = warm_start.dictionary
        else:
            self._current = self._encoder.encode(self.graph, timestamp=0)
        self._edges_at_last_encode = self.graph.num_edges
        self.dictionaries.add(self._current)
        if warm_start is not None:
            self._apply_warmstart(warm_start)
        self._threads[0] = _ThreadState(
            thread=0,
            id_value=0,
            ccstack=CcStack(compression_enabled=True),
            frames=[
                _Frame(
                    function=root,
                    callsite=None,
                    restore_id=0,
                    cc_state=(0, 0),
                    action=_Action.NONE,
                )
            ],
        )
        # Fast-path specialisation state (docs/PERFORMANCE.md).  The
        # compiled dispatch table is built lazily on the first batch and
        # re-built whenever its (dictionary identity, tail-set size)
        # pins go stale.  Subclasses that override any handler the batch
        # loop bypasses (``GlobalIdEngine`` replaces on_call/on_return
        # wholesale) are detected here and transparently deoptimised to
        # per-event dispatch — behaviour first, speed second.
        self._fastpath: Optional[FastPathTable] = None
        self.fastpath = FastPathStats()
        # Code-generated columnar dispatch kernel (process_columns):
        # pinned to a table *and* an engine shape — warm-start seeding,
        # sampling hook presence and the adaptive check interval are
        # compiled into the generated source, so any of them changing
        # forces a re-``exec``.
        self._columnar_kernel: Optional[ColumnarKernel] = None
        self._columnar_kernel_table: Optional[FastPathTable] = None
        self._columnar_kernel_shape: Optional[Tuple[bool, bool, int]] = None
        cls = type(self)
        self._fastpath_enabled = (
            cls.on_call is DacceEngine.on_call
            and cls.on_return is DacceEngine.on_return
            and cls._apply_call is DacceEngine._apply_call
            and cls._apply_direct is DacceEngine._apply_direct
            and cls._maybe_check_triggers is DacceEngine._maybe_check_triggers
        )
        # Shared LRU decode cache: dictionaries are immutable and
        # thread-parent samples are write-once, so a successful decode
        # stays valid for the lifetime of the engine (docs/PERFORMANCE.md).
        self._decode_cache = DecodeCache()
        # Continuous-profiling hook: None costs one test per call.
        self._prof: Optional[SampleHook] = None
        # Telemetry: one boolean guards every hot-path hook; instruments
        # are pre-bound so an enabled engine pays one dict-free call per
        # event and a disabled engine pays only the guard.
        self._obs = bool(self.telemetry.enabled)
        if self._obs:
            self._init_telemetry()

    # ------------------------------------------------------------------
    # warm-start wiring
    # ------------------------------------------------------------------
    def _apply_warmstart(self, plan: "WarmStartPlan") -> None:
        """Prime the runtime structures the handler would have built.

        Seeded indirect sites get their target lists patched up front
        (hottest-first ordering is meaningless at call 0, so the static
        order stands until the first re-encoding pass), and functions
        statically known to tail-call are pre-registered so their callers
        save the TcStack context from the very first call (Figure 7).
        """
        self.stats.static_seeded_edges = plan.seeded_edges
        for callsite, targets in plan.indirect_sites().items():
            self.indirect.site(callsite).patch(
                targets, hash_threshold=self.config.hash_threshold
            )
        self._tail_calling_functions.update(plan.tail_callers())

    # ------------------------------------------------------------------
    # telemetry wiring
    # ------------------------------------------------------------------
    def _init_telemetry(self) -> None:
        """Create push-mode instruments and the pull-mode collector."""
        registry = self.telemetry.registry
        depth_buckets = self.telemetry.config.depth_buckets
        events = registry.counter(
            "events_total",
            "Engine events processed, by type.",
            labelnames=("type",),
        )
        self._m_calls = {
            kind: events.labels("call:%s" % kind.value) for kind in CallKind
        }
        self._m_returns = events.labels("return")
        self._m_samples = events.labels("sample")
        self._h_ccstack_depth = registry.histogram(
            "ccstack_depth",
            "Logical ccStack depth observed at each push/pop.",
            buckets=depth_buckets,
        )
        self._h_callstack_depth = registry.histogram(
            "callstack_depth",
            "Logical call-stack depth at each collected sample.",
            buckets=depth_buckets,
        )
        registry.register_collector(self._collect_metrics)
        # Pull-mode instruments fed by the collector below.
        self._c_stats = registry.counter(
            "runtime_total",
            "Aggregate runtime statistics (DacceStats), by field.",
            labelnames=("stat",),
        )
        self._c_ccstack_ops = registry.counter(
            "ccstack_ops_total",
            "ccStack operations summed over live and exited threads.",
            labelnames=("op",),
        )
        self._c_indirect = registry.counter(
            "indirect_dispatch_total",
            "Indirect-call dispatch outcomes across all sites.",
            labelnames=("result",),
        )
        self._c_promotions = registry.counter(
            "indirect_promotions_total",
            "Inline-cache to hash-table promotions across all sites.",
        )
        self._g_engine = registry.gauge(
            "engine",
            "Engine shape gauges (graph size, id space, threads).",
            labelnames=("property",),
        )
        self._c_faults = registry.counter(
            "faults_total",
            "Quarantined faults (recover policy), by kind.",
            labelnames=("kind",),
        )
        self._c_fastpath = registry.counter(
            "fastpath_total",
            "Batched fast-path specialisation outcomes (hit = handled "
            "by the compiled table, miss = deoptimised to the general "
            "path).",
            labelnames=("result",),
        )
        self._c_decode_cache = registry.counter(
            "decode_cache_total",
            "Engine decode-cache lookups (memoised Algorithm 1 results).",
            labelnames=("result",),
        )

    def _collect_metrics(self) -> None:
        """Scrape-time migration of the legacy counters onto the registry.

        ``DacceStats``, the retired-ccStack merge and the indirect
        dispatch table keep their existing in-band roles; this mirrors
        them into instruments without adding hot-path work.
        """
        stats = self.stats
        for name, value in (
            ("calls", stats.calls),
            ("returns", stats.returns),
            ("samples", stats.samples),
            ("handler_invocations", stats.handler_invocations),
            ("unencoded_calls", stats.unencoded_calls),
            ("back_edge_calls", stats.back_edge_calls),
            ("tail_calls", stats.tail_calls),
            ("reencodings", stats.reencodings),
            ("validation_failures", stats.validation_failures),
            ("discovery_ccstack_ops", stats.discovery_ccstack_ops),
            ("static_seeded_edges", stats.static_seeded_edges),
            (
                "warmstart_handler_hits_avoided",
                stats.warmstart_handler_hits_avoided,
            ),
            ("profile_samples", stats.profile_samples),
            ("untracked_calls", stats.untracked_calls),
            ("boundary_crossings", stats.boundary_crossings),
        ):
            self._c_stats.set_total(value, name)
        ccstack = self.ccstack_stats()
        for op in ("pushes", "pops", "compressions", "decompressions"):
            self._c_ccstack_ops.set_total(ccstack[op], op)
        self._c_indirect.set_total(self.indirect.total_hits(), "hit")
        self._c_indirect.set_total(self.indirect.total_misses(), "miss")
        self._c_promotions.set_total(self.indirect.total_promotions())
        for name, value in (
            ("nodes", self.graph.num_nodes),
            ("edges", self.graph.num_edges),
            ("encoded_edges", self._current.num_encoded_edges),
            ("max_id", self._current.max_id),
            ("gtimestamp", self._timestamp),
            ("live_threads", len(self._threads)),
            ("indirect_sites", len(self.indirect)),
            ("indirect_hash_sites", self.indirect.num_hash_sites()),
            ("ccstack_max_depth", ccstack["max_depth"]),
        ):
            self._g_engine.set_labeled(value, name)
        for kind, count in self.faults.counts_by_kind().items():
            self._c_faults.set_total(count, kind)
        self._c_fastpath.set_total(self.fastpath.hits, "hit")
        self._c_fastpath.set_total(self.fastpath.misses, "miss")
        self._c_decode_cache.set_total(self._decode_cache.hits, "hit")
        self._c_decode_cache.set_total(self._decode_cache.misses, "miss")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def timestamp(self) -> int:
        """The current ``gTimeStamp``."""
        return self._timestamp

    @property
    def current_dictionary(self) -> EncodingDictionary:
        return self._current

    @property
    def max_id(self) -> int:
        return self._current.max_id

    def run(self, events: Iterable[Event]) -> None:
        """Process an entire event stream."""
        for event in events:
            self.on_event(event)

    def on_event(self, event: Event) -> None:
        if self._recover:
            self._on_event_recover(event)
            return
        if isinstance(event, CallEvent):
            self.on_call(event)
        elif isinstance(event, ReturnEvent):
            self.on_return(event)
        elif isinstance(event, SampleEvent):
            self.on_sample(event)
        elif isinstance(event, ThreadStartEvent):
            self.on_thread_start(event)
        elif isinstance(event, ThreadExitEvent):
            self.on_thread_exit(event)
        elif isinstance(event, LibraryLoadEvent):
            pass  # functions become callable; nothing to patch yet
        else:
            raise TraceError(
                "unknown event %r" % (event,),
                event=repr(event),
                gts=self._timestamp,
            )

    # ------------------------------------------------------------------
    # batched fast-path processing
    # ------------------------------------------------------------------
    def process_batch(self, records: Iterable[CompactEvent]) -> None:
        """Process a stream of compact event tuples through the fast lane.

        The steady-state case — a NORMAL call over an edge the current
        dictionary encodes, and the matching return — is handled by one
        dict probe plus one integer add against the compiled
        :class:`~repro.core.fastpath.FastPathTable`, with statistics,
        window counters, cost charges and telemetry folded into
        per-batch flushes.  Everything else (unencoded or back edges,
        indirect/tail/PLT calls, samples, thread events, malformed
        events under the recover policy) *deoptimises*: the tuple is
        inflated to its dataclass form and dispatched through
        :meth:`on_event`, so the general path — including fault
        quarantine, warm-start accounting and adaptive re-encoding —
        behaves exactly as in per-event processing.

        Folded counters are flushed before every deoptimisation and
        before every adaptive trigger check, so anything the general
        path observes (``stats.calls`` in fault records, window
        evidence in trigger decisions, re-encoding pass reports) sees
        the same values as per-event processing.  The differential
        property suite (``tests/core/test_fastpath_property.py``)
        asserts byte-identical end states.
        """
        if not self._fastpath_enabled:
            # Subclass overrides a bypassed handler: per-event dispatch.
            on_event = self.on_event
            for record in records:
                on_event(inflate(record))
            return

        table = self._ensure_fastpath()
        entries = table.entries
        stats = self.stats
        cost = self.cost
        threads = self._threads
        interval = self.config.adaptive.check_interval
        obs = self._obs
        m_calls_normal = self._m_calls[CallKind.NORMAL] if obs else None
        m_returns = self._m_returns if obs else None
        warm = self._warm
        action_id = _Action.ID
        action_none = _Action.NONE
        prof = self._prof
        # The sampling countdown runs in a loop register; the hook
        # attribute is only synchronised at flush boundaries (fire,
        # deopt, trigger, batch end) so the hot loop stays free of
        # attribute writes.
        pcount = prof.countdown if prof is not None else 0
        self.fastpath.batches += 1

        # Folded per-batch counters; flushed through ``flush`` below.
        pending_calls = 0
        pending_returns = 0
        pending_id_updates = 0
        pending_tcstack = 0
        hits = 0
        misses = 0

        def flush() -> None:
            # The charges are exact under folding: the cost parameters
            # involved (baseline 150.0, id_update 1.5, tcstack 5.0) are
            # dyadic rationals, so ``n`` separate float adds and one
            # ``n *`` multiply produce bit-identical sums.
            nonlocal pending_calls, pending_returns
            nonlocal pending_id_updates, pending_tcstack
            if pending_calls:
                stats.calls += pending_calls
                self._window.calls += pending_calls
                cost.charge_call_baseline(pending_calls)
                if m_calls_normal is not None:
                    m_calls_normal.inc(pending_calls)
                pending_calls = 0
            if pending_returns:
                stats.returns += pending_returns
                if m_returns is not None:
                    m_returns.inc(pending_returns)
                pending_returns = 0
            if pending_id_updates:
                cost.charge_id_update(pending_id_updates)
                pending_id_updates = 0
            if pending_tcstack:
                cost.charge_tcstack(pending_tcstack)
                pending_tcstack = 0

        try:
            for record in records:
                op = record[0]
                if op == EV_CALL:
                    if record[5] == 0:  # CallKind.NORMAL
                        entry = entries.get((record[2], record[4]))
                        if entry is not None:
                            state = threads.get(record[1])
                            if (
                                state is not None
                                and state.frames[-1].function == record[3]
                            ):
                                delta, edge, tail_callee = entry
                                if not edge.invocations and warm and edge.seeded:
                                    # First hit on a seeded edge: the
                                    # handler call cold-start DACCE
                                    # would have paid (PR 3 stat).
                                    stats.warmstart_handler_hits_avoided += 1
                                edge.invocations += 1
                                restore_id = state.id_value
                                if delta:
                                    state.id_value = restore_id + delta
                                    pending_id_updates += 1
                                    action = action_id
                                else:
                                    action = action_none
                                if tail_callee:
                                    pending_tcstack += 1
                                state.frames.append(
                                    _Frame(
                                        function=record[4],
                                        callsite=record[2],
                                        restore_id=restore_id,
                                        cc_state=state.ccstack.saved_state(),
                                        action=action,
                                    )
                                )
                                pending_calls += 1
                                hits += 1
                                if prof is not None:
                                    pcount -= 1
                                    if pcount <= 0:
                                        # Flush first: the callback may
                                        # read engine statistics, which
                                        # must match per-event state.
                                        pcount = prof.every
                                        prof.countdown = pcount
                                        flush()
                                        self._fire_profile_sample(
                                            prof, record[1]
                                        )
                                        pcount = prof.countdown
                                continue
                elif op == EV_RETURN:
                    state = threads.get(record[1])
                    if state is not None:
                        frames = state.frames
                        if len(frames) > 1:
                            frame = frames[-1]
                            action = frame.action
                            if (
                                action is action_none or action is action_id
                            ) and not frame.chain:
                                frames.pop()
                                if action is action_id:
                                    pending_id_updates += 1
                                state.id_value = frame.restore_id
                                pending_returns += 1
                                hits += 1
                                # The general path evaluates adaptive
                                # triggers after every return; with the
                                # window flushed this fires at exactly
                                # the same event positions.
                                if self._window.calls + pending_calls >= interval:
                                    flush()
                                    if prof is not None:
                                        prof.countdown = pcount
                                    self._maybe_check_triggers()
                                    if prof is not None:
                                        pcount = prof.countdown
                                    if not table.valid_for(
                                        self._current,
                                        len(self._tail_calling_functions),
                                    ):
                                        table = self._ensure_fastpath()
                                        entries = table.entries
                                continue

                # Deoptimise: flush folded state, take the general path,
                # then revalidate the table (the event may have
                # re-encoded, discovered a tail caller, or rolled back).
                misses += 1
                flush()
                if prof is not None:
                    # The general path decrements the hook's own
                    # countdown; keep the register coherent across it.
                    prof.countdown = pcount
                self.on_event(inflate(record))
                if prof is not None:
                    pcount = prof.countdown
                if not table.valid_for(
                    self._current, len(self._tail_calling_functions)
                ):
                    table = self._ensure_fastpath()
                    entries = table.entries
        finally:
            flush()
            if prof is not None:
                prof.countdown = pcount
            self.fastpath.hits += hits
            self.fastpath.misses += misses

    def _ensure_fastpath(self) -> FastPathTable:
        """The compiled dispatch table for the current engine state."""
        table = self._fastpath
        if table is None or not table.valid_for(
            self._current, len(self._tail_calling_functions)
        ):
            table = compile_table(
                self.graph, self._current, self._tail_calling_functions
            )
            self._fastpath = table
            self.fastpath.compiles += 1
        return table

    # ------------------------------------------------------------------
    # columnar fast-path processing (code-generated dispatch)
    # ------------------------------------------------------------------
    def process_columns(self, cols: EventColumns) -> None:
        """Process a struct-of-arrays batch through a generated kernel.

        Equivalent to :meth:`process_batch` over ``cols.to_compact()``
        — same statistics, cost charges, sample positions, adaptive
        trigger points and fault behaviour (the differential property
        suite pins byte-identical end states) — but the steady state
        runs inside a dispatch function ``exec``-ed per encoding epoch
        (:func:`repro.core.fastpath.compile_columnar_kernel`), whose
        inner loop iterates raw integer columns with one dict probe and
        one integer add per hot event.  Any event the kernel cannot
        prove cheap exits the kernel, materialises that single compact
        tuple (``cols.record(i)``) and takes the existing general path;
        processing then re-enters the kernel at the next index.

        Deopt storms (cold-start discovery, adversarial streams) would
        pay a kernel re-entry — view slicing, prologue, counter flush —
        per miss.  When a deopt arrives after a short hit run the
        driver assumes it is in such a storm and routes a fixed window
        of events through :meth:`process_batch` (whose inline probe
        costs a fraction of a kernel re-entry per event) before
        re-arming the kernel; ``process_batch`` is itself proven
        equivalent to per-event dispatch, so the end state is
        unchanged (only batch/hit telemetry differs, which the
        differential suite explicitly excludes).
        """
        if not self._fastpath_enabled:
            # Subclass overrides a bypassed handler: per-event dispatch.
            on_event = self.on_event
            for record in cols.iter_compact():
                on_event(inflate(record))
            return
        n = len(cols)
        if not n:
            return
        fp = self.fastpath
        fp.batches += 1
        kernel = self._ensure_columnar_kernel()
        views = cols.views()
        start = 0
        # Storm heuristic: a deopt after fewer than STORM_RUN fast-path
        # events triggers STORM_WINDOW general-path events.
        storm_run = 8
        storm_window = 64
        try:
            while start < n:
                entered_at = start
                prof = self._prof
                (
                    start,
                    reason,
                    thread,
                    calls,
                    returns,
                    id_updates,
                    tcstack,
                    hits,
                    pcount,
                ) = kernel(
                    views,
                    start,
                    self._threads,
                    prof.countdown if prof is not None else 0,
                    self._window.calls,
                )
                # Flush the folded counters before any general-path
                # work, exactly as ``process_batch`` does: everything
                # the general path (or a sample callback) observes must
                # match per-event state.
                fp.hits += hits
                self._flush_fastpath_counters(
                    calls, returns, id_updates, tcstack
                )
                if prof is not None:
                    prof.countdown = pcount
                if reason == KERNEL_DONE:
                    break
                if reason == KERNEL_SAMPLE:
                    if prof is not None:
                        prof.countdown = prof.every
                        self._fire_profile_sample(prof, thread)
                elif reason == KERNEL_DEOPT:
                    fp.misses += 1
                    self.on_event(inflate(cols.record(start)))
                    start += 1
                    if start - entered_at <= storm_run:
                        stop = min(n, start + storm_window)
                        record = cols.record
                        if self.spans.enabled:
                            with self.spans.span(
                                "engine.deopt_storm",
                                stage="engine",
                                events=stop - start,
                                at=start,
                            ):
                                self.process_batch(
                                    [record(i) for i in range(start, stop)]
                                )
                        else:
                            self.process_batch(
                                [record(i) for i in range(start, stop)]
                            )
                        start = stop
                    kernel = self._ensure_columnar_kernel()
                else:  # KERNEL_TRIGGER: adaptive window filled
                    self._maybe_check_triggers()
                    kernel = self._ensure_columnar_kernel()
        finally:
            for view in views:
                view.release()

    def _flush_fastpath_counters(
        self, calls: int, returns: int, id_updates: int, tcstack: int
    ) -> None:
        """Fold per-run kernel counters into engine state.

        Mirrors ``process_batch``'s ``flush`` closure; the charges are
        exact under folding because the cost parameters involved are
        dyadic rationals (``n`` float adds ≡ one ``n *`` multiply).
        """
        obs = self._obs
        if calls:
            self.stats.calls += calls
            self._window.calls += calls
            self.cost.charge_call_baseline(calls)
            if obs:
                self._m_calls[CallKind.NORMAL].inc(calls)
        if returns:
            self.stats.returns += returns
            if obs:
                self._m_returns.inc(returns)
        if id_updates:
            self.cost.charge_id_update(id_updates)
        if tcstack:
            self.cost.charge_tcstack(tcstack)

    def _ensure_columnar_kernel(self) -> ColumnarKernel:
        """The generated dispatch kernel for the current engine epoch.

        Recompiled whenever the fast-path table goes stale (re-encoding
        commit or rollback, tail-set growth) *or* the compiled-in shape
        changes: warm-start accounting and the sampling countdown exist
        in the generated source only while those features are live, and
        the adaptive check interval is inlined as a literal.
        """
        table = self._ensure_fastpath()
        shape = (
            bool(self._warm),
            self._prof is not None,
            self.config.adaptive.check_interval,
        )
        kernel = self._columnar_kernel
        if (
            kernel is None
            or self._columnar_kernel_table is not table
            or self._columnar_kernel_shape != shape
        ):
            compile_span = (
                self.spans.span(
                    "engine.kernel_compile",
                    stage="engine",
                    gts=self._timestamp,
                    entries=len(table),
                )
                if self.spans.enabled
                else None
            )
            kernel = compile_columnar_kernel(
                table,
                gts=self._timestamp,
                frame_factory=_Frame,
                action_none=_Action.NONE,
                action_id=_Action.ID,
                stats=self.stats,
                warm=shape[0],
                profiled=shape[1],
                interval=shape[2],
            )
            if compile_span is not None:
                compile_span.__exit__(None, None, None)
            self._columnar_kernel = kernel
            self._columnar_kernel_table = table
            self._columnar_kernel_shape = shape
        return kernel

    def fastpath_stats(self) -> Dict[str, object]:
        """Fast-path specialisation counters (plus table shape)."""
        snapshot = self.fastpath.to_dict()
        snapshot["enabled"] = self._fastpath_enabled
        snapshot["table_entries"] = (
            len(self._fastpath) if self._fastpath is not None else 0
        )
        return snapshot

    # ------------------------------------------------------------------
    # fault quarantine (recover policy)
    # ------------------------------------------------------------------
    def _on_event_recover(self, event: Event) -> None:
        """Event dispatch under ``FaultPolicy.RECOVER``.

        Malformed events are detected *before* they mutate state where
        possible, quarantined into ``self.faults``, and the affected
        thread is resynchronised against its own shadow stack (the
        paper's ccStack escape hatch: when the compact encoding state is
        suspect, rebuild it from a stack walk).  Nothing raises.
        """
        try:
            if isinstance(event, CallEvent):
                state = self._threads.get(event.thread)
                if state is None:
                    self._quarantine(
                        FaultKind.UNKNOWN_THREAD,
                        "call on unknown thread %d" % event.thread,
                        thread=event.thread,
                        event=event,
                    )
                    return
                if state.frames[-1].function != event.caller:
                    self._recover_caller_mismatch(state, event)
                    return
                if event.kind is CallKind.TAIL and len(state.frames) <= 1:
                    self._quarantine(
                        FaultKind.TAIL_BOTTOM,
                        "thread %d: tail call from the bottom frame"
                        % event.thread,
                        thread=event.thread,
                        event=event,
                    )
                    return
                self.on_call(event)
            elif isinstance(event, ReturnEvent):
                state = self._threads.get(event.thread)
                if state is None:
                    self._quarantine(
                        FaultKind.UNKNOWN_THREAD,
                        "return on unknown thread %d" % event.thread,
                        thread=event.thread,
                        event=event,
                    )
                    return
                if len(state.frames) <= 1:
                    self._quarantine(
                        FaultKind.RETURN_BOTTOM,
                        "thread %d: return from the bottom frame"
                        % event.thread,
                        thread=event.thread,
                        event=event,
                    )
                    return
                self.on_return(event)
            elif isinstance(event, SampleEvent):
                if event.thread not in self._threads:
                    # The thread-exit-then-sample race: the sampler fired
                    # after the thread's TLS block was torn down.
                    self._quarantine(
                        FaultKind.UNKNOWN_THREAD,
                        "sample on unknown thread %d" % event.thread,
                        thread=event.thread,
                        event=event,
                    )
                    return
                self.on_sample(event)
            elif isinstance(event, ThreadStartEvent):
                if event.thread in self._threads:
                    self._quarantine(
                        FaultKind.DUPLICATE_THREAD,
                        "thread %d already exists" % event.thread,
                        thread=event.thread,
                        event=event,
                    )
                    return
                if event.parent not in self._threads:
                    self._quarantine(
                        FaultKind.UNKNOWN_THREAD,
                        "thread %d spawned by unknown parent %d"
                        % (event.thread, event.parent),
                        thread=event.thread,
                        event=event,
                    )
                    return
                self.on_thread_start(event)
            elif isinstance(event, ThreadExitEvent):
                state = self._threads.get(event.thread)
                if state is None:
                    self._quarantine(
                        FaultKind.UNKNOWN_THREAD,
                        "exit of unknown thread %d" % event.thread,
                        thread=event.thread,
                        event=event,
                    )
                    return
                if len(state.frames) > 1:
                    # Missed returns: unwind to the bottom frame, resync
                    # the encoding state, then let the exit proceed.
                    dropped = len(state.frames) - 1
                    del state.frames[1:]
                    self._resync_thread(state)
                    self._quarantine(
                        FaultKind.THREAD_EXIT_LIVE_FRAMES,
                        "thread %d exited with %d live frames"
                        % (event.thread, dropped + 1),
                        thread=event.thread,
                        event=event,
                        recovery=RecoveryAction.UNWOUND,
                        dropped_frames=dropped,
                    )
                self.on_thread_exit(event)
            elif isinstance(event, LibraryLoadEvent):
                pass
            else:
                self._quarantine(
                    FaultKind.UNKNOWN_EVENT,
                    "unknown event %r" % (event,),
                    event=event,
                )
        except DacceError as error:
            # Backstop: any inconsistency the pre-checks did not cover
            # (e.g. a ccStack capacity trap mid-apply).  Quarantine and
            # resynchronise the thread so encoding can continue.
            thread = getattr(event, "thread", None)
            state = self._threads.get(thread) if thread is not None else None
            if state is not None:
                self._resync_thread(state)
            self._quarantine(
                FaultKind.TRACE_ERROR,
                str(error),
                thread=thread,
                event=event,
                recovery=(
                    RecoveryAction.RESYNCED
                    if state is not None
                    else RecoveryAction.DROPPED
                ),
                error=type(error).__name__,
            )

    def _recover_caller_mismatch(self, state: _ThreadState, event: CallEvent) -> None:
        """Quarantine a call whose caller is not the current function.

        If the claimed caller is live deeper in the shadow stack the
        mismatch is a run of missed returns: unwind to that frame,
        resynchronise, and apply the call normally.  Otherwise the call
        has no consistent interpretation and is dropped.
        """
        for index in range(len(state.frames) - 2, -1, -1):
            if state.frames[index].function == event.caller:
                dropped = len(state.frames) - 1 - index
                del state.frames[index + 1:]
                self._resync_thread(state)
                self._quarantine(
                    FaultKind.CALLER_MISMATCH,
                    "thread %d: call from %d reached with %d frames unwound"
                    % (event.thread, event.caller, dropped),
                    thread=event.thread,
                    event=event,
                    recovery=RecoveryAction.UNWOUND,
                    dropped_frames=dropped,
                )
                self.on_call(event)
                return
        self._quarantine(
            FaultKind.CALLER_MISMATCH,
            "thread %d: call from %d but current function is %d"
            % (event.thread, event.caller, state.frames[-1].function),
            thread=event.thread,
            event=event,
            expected_function=state.frames[-1].function,
        )

    def _resync_thread(self, state: _ThreadState) -> None:
        """The ccStack escape hatch: rebuild encoding state by stack walk.

        Regenerates the thread's live id and ccStack from its shadow
        frames under the current dictionary — exactly what the freshly
        patched instrumentation would have produced — so decoding stays
        consistent with the shadow stack after a quarantined fault.
        """
        self._regenerate_thread(state)

    def _quarantine(
        self,
        kind: FaultKind,
        message: str,
        thread: Optional[ThreadId] = None,
        event: Optional[Event] = None,
        recovery: RecoveryAction = RecoveryAction.DROPPED,
        **detail,
    ) -> FaultRecord:
        """Append one fault to the bounded log; mirror it to telemetry."""
        record = FaultRecord(
            kind=kind,
            message=message,
            thread=thread,
            gts=self._timestamp,
            at_call=self.stats.calls,
            event=repr(event) if event is not None else None,
            recovery=recovery,
            detail=detail,
        )
        self.faults.record(record)
        logger.debug("quarantined fault: %s", message)
        if self._obs:
            self.telemetry.emit(
                "fault",
                kind=kind.value,
                thread=thread,
                gts=self._timestamp,
                at_call=self.stats.calls,
                recovery=recovery.value,
                message=message,
            )
        return record

    def decoder(self) -> Decoder:
        """A decoder over every dictionary produced so far.

        All decoders built from one engine share its LRU
        :class:`~repro.core.decoder.DecodeCache`: dictionaries are
        immutable, thread-parent samples are write-once and the
        callsite-owner map only grows, so a successful decode never goes
        stale (docs/PERFORMANCE.md).
        """
        owners = {edge.callsite: edge.caller for edge in self.graph.edges()}
        return Decoder(
            self.dictionaries,
            dict(self.thread_parents),
            callsite_owners=owners,
            cache=self._decode_cache,
        )

    # ------------------------------------------------------------------
    # continuous-profiling hook
    # ------------------------------------------------------------------
    def install_sample_hook(
        self,
        every: int,
        callback: SampleCallback,
        weigher: Optional[Callable[[], float]] = None,
    ) -> SampleHook:
        """Install the continuous-profiling hook (one per engine).

        Every ``every``-th applied call delivers a compact
        :class:`CollectedSample` plus a weight to ``callback`` — on both
        the general and the batched fast path, at identical event
        positions.  Hook samples are charged to the cost model's
        ``sample`` (CLIENT) category and counted in
        ``stats.profile_samples``; they are *not* appended to
        ``engine.samples``, which stays reserved for explicit
        :class:`SampleEvent` records.
        """
        if self._prof is not None:
            raise DacceError(
                "a sample hook is already installed; remove it first"
            )
        hook = SampleHook(every=every, callback=callback, weigher=weigher)
        self._prof = hook
        return hook

    def remove_sample_hook(self) -> Optional[SampleHook]:
        """Detach the profiling hook; returns it (or None)."""
        hook = self._prof
        self._prof = None
        return hook

    def _sampled_function(self, state: _ThreadState) -> FunctionId:
        """The function a sample reports — the pseudo id when untracked.

        In targeted mode a sample taken while control is outside the
        subgraph reports :data:`UNTRACKED_FUNCTION`: the real function
        has no encoding, and the pseudo id is what lets Algorithm 1
        match the boundary entries on the ccStack.
        """
        function = state.frames[-1].function
        fns = self._targeted_fns
        if fns is not None and function not in fns:
            return UNTRACKED_FUNCTION
        return function

    def _fire_profile_sample(self, hook: SampleHook, thread: ThreadId) -> None:
        state = self._threads.get(thread)
        if state is None:  # pragma: no cover - hook fires post-apply
            return
        sample = CollectedSample(
            timestamp=self._timestamp,
            context_id=state.id_value,
            function=self._sampled_function(state),
            ccstack=state.ccstack.snapshot(),
            thread=thread,
        )
        self.stats.profile_samples += 1
        self.cost.charge_sample(len(sample.ccstack))
        if hook.weigher is not None:
            weight = hook.weigher()
        else:
            weight = float(hook.every)
        hook.fired += 1
        hook.callback(sample, weight)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def on_call(self, event: CallEvent) -> None:
        state = self._state(event.thread)
        top = state.frames[-1]
        if top.function != event.caller:
            raise TraceError(
                "thread %d: call from %d but current function is %d"
                % (event.thread, event.caller, top.function),
                thread=event.thread,
                gts=self._timestamp,
                event=event,
                expected_function=top.function,
            )
        self.stats.calls += 1
        self._window.calls += 1
        self.cost.charge_call_baseline()
        if self._obs:
            self._m_calls[event.kind].inc()

        if self._targeted_fns is not None and self._apply_targeted(state, event):
            hook = self._prof
            if hook is not None:
                hook.countdown -= 1
                if hook.countdown <= 0:
                    hook.countdown = hook.every
                    self._fire_profile_sample(hook, event.thread)
            return

        edge = self.graph.find_edge(event.callsite, event.callee)
        if edge is None:
            edge = self._runtime_handler(event)
        elif self._warm and edge.seeded and edge.invocations == 0:
            # Cold-start DACCE would have entered the runtime handler
            # here; the warm-start seed already encoded this edge.
            self.stats.warmstart_handler_hits_avoided += 1
        edge.invocations += 1

        if event.kind is CallKind.TAIL:
            self._apply_tail_call(state, event, edge)
        else:
            self._apply_call(state, event, edge)

        hook = self._prof
        if hook is not None:
            hook.countdown -= 1
            if hook.countdown <= 0:
                hook.countdown = hook.every
                self._fire_profile_sample(hook, event.thread)

    def on_return(self, event: ReturnEvent) -> None:
        state = self._state(event.thread)
        if len(state.frames) <= 1:
            raise TraceError(
                "thread %d: return from the bottom frame" % event.thread,
                thread=event.thread,
                gts=self._timestamp,
                event=event,
            )
        frame = state.frames.pop()
        self.stats.returns += 1
        if self._obs:
            self._m_returns.inc()

        if frame.is_tail_chain:
            # TcStack restoration: one restore covers the whole chain.
            state.ccstack.restore(frame.cc_state)
            if frame.action is not _Action.UNTRACKED:
                # A chain that never left untracked code pushed nothing
                # and carries no TcStack instrumentation to charge.
                self.cost.charge_tcstack()
        elif frame.action is _Action.PUSH or frame.action is _Action.COMPRESS:
            state.ccstack.pop()
            self.cost.charge_ccstack_pop()
            self._window.ccstack_ops += 1
            if self._obs:
                self._h_ccstack_depth.observe(state.ccstack.depth())
        elif frame.action is _Action.DISCOVERY_PUSH:
            state.ccstack.pop()
            self._charge_discovery_pop()
            self.stats.discovery_ccstack_ops += 1
            self._window.ccstack_ops += 1
            if self._obs:
                self._h_ccstack_depth.observe(state.ccstack.depth())
        elif (
            frame.action is _Action.BOUNDARY_DEP
            or frame.action is _Action.BOUNDARY_RE
        ):
            state.ccstack.pop()
            self.cost.charge_ccstack_pop()
            self._window.ccstack_ops += 1
            if self._obs:
                self._h_ccstack_depth.observe(state.ccstack.depth())
        elif frame.action is _Action.UNTRACKED:
            pass  # interior untracked return: the shadow pop is all
        elif frame.action is _Action.ID:
            self.cost.charge_id_update()
        state.id_value = frame.restore_id

        self._maybe_check_triggers()

    def on_sample(self, event: SampleEvent) -> CollectedSample:
        state = self._state(event.thread)
        sample = CollectedSample(
            timestamp=self._timestamp,
            context_id=state.id_value,
            function=self._sampled_function(state),
            ccstack=state.ccstack.snapshot(),
            thread=event.thread,
        )
        self.stats.samples += 1
        self.cost.charge_sample(len(sample.ccstack))
        if self._obs:
            self._m_samples.inc()
            self._h_callstack_depth.observe(self.call_stack_depth(event.thread))
        if self.config.retain_samples:
            self.samples.append(sample)
        if self.config.self_validate:
            self._self_validate(sample, event.thread)
        return sample

    def _self_validate(self, sample: CollectedSample, thread: ThreadId) -> None:
        from .errors import DecodingError  # local: avoid cycle at import

        try:
            decoded = self.decoder().decode(sample)
        except DecodingError as error:
            self.stats.validation_failures += 1
            logger.warning(
                "self-validation: sample (gTS=%d, id=%d, thread=%d) failed "
                "to decode: %s",
                sample.timestamp, sample.context_id, thread, error,
            )
            self.telemetry.emit(
                "validation-failure",
                thread=thread,
                gts=sample.timestamp,
                context_id=sample.context_id,
                mode="undecodable",
            )
            return
        expected = self.expected_context(thread)
        if [s.function for s in decoded.steps] != [
            s.function for s in expected.steps
        ]:
            self.stats.validation_failures += 1
            logger.warning(
                "self-validation: decoded context of thread %d diverges "
                "from the shadow stack (gTS=%d, id=%d)",
                thread, sample.timestamp, sample.context_id,
            )
            self.telemetry.emit(
                "validation-failure",
                thread=thread,
                gts=sample.timestamp,
                context_id=sample.context_id,
                mode="mismatch",
            )

    def on_thread_start(self, event: ThreadStartEvent) -> None:
        if event.thread in self._threads:
            raise TraceError(
                "thread %d already exists" % event.thread,
                thread=event.thread,
                gts=self._timestamp,
                event=event,
            )
        parent = self._state(event.parent)
        # Intercepted ``clone``: record the spawning context (Section 5.3).
        self.thread_parents[event.thread] = CollectedSample(
            timestamp=self._timestamp,
            context_id=parent.id_value,
            function=self._sampled_function(parent),
            ccstack=parent.ccstack.snapshot(),
            thread=event.parent,
        )
        if self._targeted_fns is not None:
            # Thread entries are force-tracked: an untracked entry would
            # put a re-entry record directly above the clone sentinel and
            # leave the spawned thread's contexts undecodable.
            self._targeted_fns.add(event.entry)
        ccstack = CcStack(compression_enabled=True)
        ccstack.push(0, CLONE_CALLSITE, event.entry)
        state = _ThreadState(
            thread=event.thread,
            id_value=self._current.max_id + 1,
            ccstack=ccstack,
            frames=[
                _Frame(
                    function=event.entry,
                    callsite=None,
                    restore_id=self._current.max_id + 1,
                    cc_state=ccstack.saved_state(),
                    action=_Action.NONE,
                )
            ],
            spawned_entry=event.entry,
        )
        self.graph.add_node(event.entry)
        self._threads[event.thread] = state
        if self._obs:
            self.telemetry.emit(
                "thread-start",
                thread=event.thread,
                parent=event.parent,
                entry=event.entry,
                gts=self._timestamp,
            )

    def on_thread_exit(self, event: ThreadExitEvent) -> None:
        state = self._state(event.thread)
        if len(state.frames) > 1:
            raise TraceError(
                "thread %d exited with %d live frames"
                % (event.thread, len(state.frames)),
                thread=event.thread,
                gts=self._timestamp,
                event=event,
                live_frames=len(state.frames),
            )
        stats = state.ccstack.stats
        self._retired_ccstack["pushes"] += stats.pushes
        self._retired_ccstack["pops"] += stats.pops
        self._retired_ccstack["compressions"] += stats.compressions
        self._retired_ccstack["decompressions"] += stats.decompressions
        self._retired_ccstack["max_depth"] = max(
            self._retired_ccstack["max_depth"], stats.max_depth
        )
        del self._threads[event.thread]
        if self._obs:
            self.telemetry.emit(
                "thread-exit",
                thread=event.thread,
                gts=self._timestamp,
                ccstack_pushes=stats.pushes,
                ccstack_pops=stats.pops,
                ccstack_compressions=stats.compressions,
                ccstack_max_depth=stats.max_depth,
            )

    # ------------------------------------------------------------------
    # oracles / introspection
    # ------------------------------------------------------------------
    def expected_context(self, thread: ThreadId = 0) -> CallingContext:
        """The true current context from the shadow stack (the oracle).

        Includes tail-call-replaced frames and, recursively, the spawning
        context of the thread — directly comparable with
        ``decoder().decode(engine.on_sample(...))``.
        """
        state = self._state(thread)
        steps: List[ContextStep] = []
        for frame in state.frames:
            for function, callsite, _kind in frame.chain:
                steps.append(ContextStep(function, callsite))
            steps.append(ContextStep(frame.function, frame.callsite))
        if self._targeted_fns is not None:
            steps = self._collapse_untracked(steps)
        if state.spawned_entry is not None:
            parent_sample = self.thread_parents.get(thread)
            if parent_sample is not None:
                parent = self._shadow_context_of_sample(parent_sample)
                steps[0] = ContextStep(
                    steps[0].function, CLONE_CALLSITE, steps[0].count
                )
                return CallingContext(tuple(parent.steps) + tuple(steps))
        return CallingContext(tuple(steps))

    def _collapse_untracked(self, steps: List[ContextStep]) -> List[ContextStep]:
        """Fold untracked runs into ``<untracked>`` pseudo-steps.

        Mirrors what decoding produces in targeted mode: a maximal run
        of out-of-subgraph frames becomes one
        ``ContextStep(UNTRACKED_FUNCTION, UNTRACKED_CALLSITE)``, and the
        tracked function entered from such a run keeps its function but
        reports the reserved callsite (its concrete call site lives in
        uninstrumented code).
        """
        fns = self._targeted_fns
        assert fns is not None
        out: List[ContextStep] = []
        in_untracked = False
        for step in steps:
            if step.function not in fns:
                if not in_untracked:
                    out.append(
                        ContextStep(UNTRACKED_FUNCTION, UNTRACKED_CALLSITE)
                    )
                    in_untracked = True
            elif in_untracked:
                out.append(
                    ContextStep(step.function, UNTRACKED_CALLSITE, step.count)
                )
                in_untracked = False
            else:
                out.append(step)
        return out

    def _shadow_context_of_sample(self, sample: CollectedSample) -> CallingContext:
        """Decode a parent-thread spawn sample (threads may have exited)."""
        return self.decoder().decode(sample)

    def call_stack_depth(self, thread: ThreadId = 0) -> int:
        """Logical call-stack depth (tail chains included) — Figure 10."""
        state = self._state(thread)
        return sum(1 + len(frame.chain) for frame in state.frames)

    def ccstack_depth(
        self, thread: ThreadId = 0, include_discovery: bool = True
    ) -> int:
        """Current ccStack depth; optionally only steady-state entries.

        Discovery entries (edges awaiting their first encoding) are a
        transient artifact bounded by the re-encoding latency — the
        depth distributions of Figure 10 measure the steady content.
        """
        stack = self._state(thread).ccstack
        if include_discovery:
            return stack.depth()
        return stack.steady_depth()

    def live_threads(self) -> List[ThreadId]:
        return list(self._threads.keys())

    def current_context(self, thread: ThreadId = 0) -> CallingContext:
        """Decode the thread's live context (without retaining a sample).

        This is the tool-facing query the paper's clients issue: take
        the compact runtime state and expand it on demand.
        """
        state = self._state(thread)
        sample = CollectedSample(
            timestamp=self._timestamp,
            context_id=state.id_value,
            function=self._sampled_function(state),
            ccstack=state.ccstack.snapshot(),
            thread=thread,
        )
        return self.decoder().decode(sample)

    def summary(self) -> Dict[str, object]:
        """A one-stop status snapshot for tooling and logs."""
        return {
            "calls": self.stats.calls,
            "returns": self.stats.returns,
            "samples": self.stats.samples,
            "nodes": self.graph.num_nodes,
            "edges": self.graph.num_edges,
            "encoded_edges": self._current.num_encoded_edges,
            "max_id": self._current.max_id,
            "overflowed": self._current.overflowed,
            "gts": self._timestamp,
            "reencodings": self.stats.reencodings,
            "handler_invocations": self.stats.handler_invocations,
            "static_seeded_edges": self.stats.static_seeded_edges,
            "warmstart_handler_hits_avoided": (
                self.stats.warmstart_handler_hits_avoided
            ),
            "live_threads": len(self._threads),
            "ccstack": self.ccstack_stats(),
            "indirect_sites": len(self.indirect),
        }

    def stats_snapshot(self) -> Dict[str, object]:
        """:meth:`summary` plus the telemetry layer's additions.

        Every legacy ``summary()`` key is preserved; the indirect
        dispatch counters and (when telemetry is enabled) the
        re-encoding pass reports ride along.
        """
        snapshot = self.summary()
        snapshot["indirect_hits"] = self.stats.indirect_hits
        snapshot["indirect_misses"] = self.stats.indirect_misses
        snapshot["indirect_promotions"] = self.indirect.total_promotions()
        snapshot["trigger_evaluations"] = self.policy.evaluations
        snapshot["telemetry_enabled"] = self._obs
        snapshot["fault_policy"] = self.config.fault_policy.value
        snapshot["faults"] = self.faults.total
        snapshot["faults_by_kind"] = self.faults.counts_by_kind()
        snapshot["fastpath"] = self.fastpath_stats()
        snapshot["decode_cache"] = self._decode_cache.stats()
        snapshot["profile_samples"] = self.stats.profile_samples
        snapshot["untracked_calls"] = self.stats.untracked_calls
        snapshot["boundary_crossings"] = self.stats.boundary_crossings
        if self._targeted is not None:
            snapshot["targeted"] = {
                "functions": len(self._targeted_fns or ()),
                "sinks": len(self._targeted.sinks),
            }
        if self._obs:
            snapshot["reencode_passes"] = self.telemetry.pass_reports.to_list()
        return snapshot

    def ccstack_stats(self) -> Dict[str, int]:
        """Summed ccStack operation counters (live + exited threads)."""
        totals = dict(self._retired_ccstack)
        # list() so a concurrent scrape survives thread start/exit events
        # mutating the dict mid-iteration.
        for state in list(self._threads.values()):
            stats = state.ccstack.stats
            totals["pushes"] += stats.pushes
            totals["pops"] += stats.pops
            totals["compressions"] += stats.compressions
            totals["decompressions"] += stats.decompressions
            totals["max_depth"] = max(totals["max_depth"], stats.max_depth)
        return totals

    # ------------------------------------------------------------------
    # call machinery
    # ------------------------------------------------------------------
    def _state(self, thread: ThreadId) -> _ThreadState:
        try:
            return self._threads[thread]
        except KeyError:
            # Samples racing a thread's exit land here (Section 5.3): the
            # sampler fires after the TLS block is torn down.  Strict mode
            # reports it with full context; recover mode quarantines it
            # (see _on_event_recover).
            raise TraceError(
                "unknown thread %d" % thread,
                thread=thread,
                gts=self._timestamp,
                reason="unknown-thread",
            ) from None

    def _runtime_handler(self, event: CallEvent) -> CallEdge:
        """First invocation of a call site/target pair (Section 3.1).

        Adds the edge to the call graph (classifying back edges), patches
        the site, and registers indirect targets.  The edge stays
        unencoded until the next re-encoding pass.
        """
        self.stats.handler_invocations += 1
        self.cost.charge_handler()
        edge = self.graph.add_edge(
            event.caller, event.callee, event.callsite, kind=event.kind
        )
        if event.kind is CallKind.INDIRECT:
            self.indirect.site(event.callsite)
        if event.kind is CallKind.TAIL:
            # Patch the caller of the function containing the tail call so
            # it saves/restores the encoding context (Figure 7).
            self._tail_calling_functions.add(event.caller)
        return edge

    def _edge_encoding(self, edge: CallEdge) -> Optional[int]:
        """The edge's encoding in the *current* dictionary, if any."""
        if edge.is_back:
            return None
        return self._current.encoding(edge.callsite, edge.callee)

    def _apply_call(self, state: _ThreadState, event: CallEvent, edge: CallEdge) -> None:
        restore_id = state.id_value
        cc_state = state.ccstack.saved_state()

        if event.kind is CallKind.INDIRECT:
            action = self._dispatch_indirect(state, event, edge)
        else:
            action = self._apply_direct(state, event, edge)

        if event.callee in self._tail_calling_functions:
            # Caller-side TcStack save for functions known to tail-call.
            self.cost.charge_tcstack()

        state.frames.append(
            _Frame(
                function=event.callee,
                callsite=event.callsite,
                restore_id=restore_id,
                cc_state=cc_state,
                action=action,
                kind=event.kind,
            )
        )

    def _apply_direct(
        self, state: _ThreadState, event: CallEvent, edge: CallEdge
    ) -> _Action:
        encoding = self._edge_encoding(edge)
        if encoding is not None:
            state.id_value += encoding
            if encoding:
                self.cost.charge_id_update()
                return _Action.ID
            return _Action.NONE
        return self._push_unencoded(state, event, edge)

    def _dispatch_indirect(
        self, state: _ThreadState, event: CallEvent, edge: CallEdge
    ) -> _Action:
        site = self.indirect.site(event.callsite)
        result = site.dispatch(event.callee)
        if result.hashed:
            self.cost.charge_hash_lookup()
        elif result.comparisons:
            self.cost.charge_comparisons(result.comparisons)
        encoding = self._edge_encoding(edge) if result.hit else None
        if result.hit and encoding is not None:
            self.stats.indirect_hits += 1
            state.id_value += encoding
            if encoding:
                self.cost.charge_id_update()
                return _Action.ID
            return _Action.NONE
        self.stats.indirect_misses += 1
        return self._push_unencoded(state, event, edge)

    def _push_unencoded(
        self, state: _ThreadState, event: CallEvent, edge: CallEdge
    ) -> _Action:
        """Figure 2(b): save <id, callsite, target>, set id = maxID + 1."""
        if edge.is_back:
            self.stats.back_edge_calls += 1
            allow_compress = self._compression_allowed(edge)
            repetitive_top = self._would_repeat(state, event)
            self.policy.observe_back_edge_push(edge.key(), repetitive_top)
            compressed = state.ccstack.push(
                state.id_value,
                event.callsite,
                event.callee,
                allow_compress=allow_compress,
            )
            if compressed:
                self.cost.charge_ccstack_compress()
            else:
                self.cost.charge_ccstack_push()
            self._window.ccstack_ops += 1
            if self._obs:
                self._h_ccstack_depth.observe(state.ccstack.depth())
            state.id_value = self._current.max_id + 1
            return _Action.COMPRESS if compressed else _Action.PUSH
        # A non-back edge without an encoding *yet*: it was discovered in
        # the current epoch and will be encoded by the next re-encoding
        # pass.  Its ccStack traffic is a bounded transition cost, not
        # steady-state work, and is accounted separately.
        self.stats.unencoded_calls += 1
        self.stats.discovery_ccstack_ops += 1
        self._window.unencoded_calls += 1
        state.ccstack.push(
            state.id_value, event.callsite, event.callee, discovery=True
        )
        self._charge_discovery_push()
        self._window.ccstack_ops += 1
        if self._obs:
            self._h_ccstack_depth.observe(state.ccstack.depth())
        state.id_value = self._current.max_id + 1
        return _Action.DISCOVERY_PUSH

    def _would_repeat(self, state: _ThreadState, event: CallEvent) -> bool:
        # top_matches avoids the frozen-entry allocation of .top() on
        # every back-edge push (per-event allocation audit, PR 4).
        return state.ccstack.top_matches(
            state.id_value, event.callsite, event.callee
        )

    def _charge_discovery_push(self) -> None:
        """Cost of saving context for a not-yet-encoded edge.

        One-time by nature (each edge is unencoded only until the next
        re-encoding pass); subclasses without patching machinery (PCCE)
        override this to nothing.
        """
        self.cost.report.add("discovery", self.cost.parameters.ccstack_push)

    def _charge_discovery_pop(self) -> None:
        self.cost.report.add("discovery", self.cost.parameters.ccstack_pop)

    def _compression_allowed(self, edge: CallEdge) -> bool:
        mode = self.config.compression
        if mode is CompressionMode.ALWAYS:
            return True
        if mode is CompressionMode.NEVER:
            return False
        return self.policy.is_compressed(edge.key())

    def _apply_tail_call(
        self, state: _ThreadState, event: CallEvent, edge: CallEdge
    ) -> None:
        """Replace the top frame (Figure 7); restoration via TcStack."""
        self.stats.tail_calls += 1
        if len(state.frames) <= 1:
            raise TraceError(
                "tail call from the bottom frame",
                thread=event.thread,
                gts=self._timestamp,
                event=event,
            )
        old = state.frames.pop()
        self._tail_calling_functions.add(old.function)

        if event.kind is CallKind.INDIRECT:
            action = self._dispatch_indirect(state, event, edge)
        else:
            action = self._apply_direct(state, event, edge)
        state.frames.append(
            _Frame(
                function=event.callee,
                callsite=event.callsite,
                restore_id=old.restore_id,
                cc_state=old.cc_state,
                action=action,
                kind=event.kind,
                chain=old.chain + ((old.function, old.callsite, old.kind),),
            )
        )

    def _apply_targeted(self, state: _ThreadState, event: CallEvent) -> bool:
        """Targeted-mode handling of calls touching untracked code.

        Returns ``False`` for tracked→tracked calls, which take the
        normal path unchanged.  The three other cases never touch the
        graph, dictionary or encoder:

        * tracked→untracked (*departure*): push ``<id, UNTRACKED,
          caller>`` and mark the id — the Figure 2(b) discipline with the
          reserved callsite, so Algorithm 1 can resume at the caller;
        * untracked→untracked (*interior*): a shadow frame only.  This
          is the cheap uninstrumented path targeted encoding buys;
        * untracked→tracked (*re-entry*): push ``<id, UNTRACKED,
          callee>`` (the id is already marked by the departure push) so
          the decoder can emit the ``<untracked>`` pseudo-step and
          continue below it.

        Tail calls merge into the replaced frame's chain exactly like
        :meth:`_apply_tail_call`, so the executor's one-return-per-chain
        contract and the TcStack restore (Figure 7) hold across
        boundaries.
        """
        fns = self._targeted_fns
        assert fns is not None
        caller_in = event.caller in fns
        callee_in = event.callee in fns
        if caller_in and callee_in:
            return False

        if event.kind is CallKind.TAIL:
            if len(state.frames) <= 1:
                raise TraceError(
                    "tail call from the bottom frame",
                    thread=event.thread,
                    gts=self._timestamp,
                    event=event,
                )
            old = state.frames.pop()
            if old.function in fns:
                self._tail_calling_functions.add(old.function)
            chain = old.chain + ((old.function, old.callsite, old.kind),)
            restore_id = old.restore_id
            cc_state = old.cc_state
        else:
            chain = ()
            restore_id = state.id_value
            cc_state = state.ccstack.saved_state()

        if caller_in:  # departure
            if event.kind is CallKind.TAIL:
                self.stats.tail_calls += 1
            self.stats.boundary_crossings += 1
            state.ccstack.push(
                state.id_value, UNTRACKED_CALLSITE, event.caller
            )
            self.cost.charge_ccstack_push()
            self._window.ccstack_ops += 1
            if self._obs:
                self._h_ccstack_depth.observe(state.ccstack.depth())
            state.id_value = self._current.max_id + 1
            action = _Action.BOUNDARY_DEP
        elif callee_in:  # re-entry
            if event.kind is CallKind.TAIL:
                self.stats.tail_calls += 1
            self.stats.boundary_crossings += 1
            state.ccstack.push(
                state.id_value, UNTRACKED_CALLSITE, event.callee
            )
            self.cost.charge_ccstack_push()
            self._window.ccstack_ops += 1
            if self._obs:
                self._h_ccstack_depth.observe(state.ccstack.depth())
            state.id_value = self._current.max_id + 1
            action = _Action.BOUNDARY_RE
        else:  # interior untracked
            self.stats.untracked_calls += 1
            action = _Action.UNTRACKED

        state.frames.append(
            _Frame(
                function=event.callee,
                callsite=event.callsite,
                restore_id=restore_id,
                cc_state=cc_state,
                action=action,
                kind=event.kind,
                chain=chain,
            )
        )
        return True

    # ------------------------------------------------------------------
    # adaptive re-encoding
    # ------------------------------------------------------------------
    def _maybe_check_triggers(self) -> None:
        if self._window.calls < self.config.adaptive.check_interval:
            return
        if (
            self.config.max_reencodings is not None
            and self.stats.reencodings >= self.config.max_reencodings
        ):
            self._window = WindowStats()
            return
        pending = self.graph.num_edges - self._edges_at_last_encode
        decision = self.policy.evaluate(self._window, pending)
        self._window = WindowStats()
        if decision.reencode:
            self.reencode(tuple(decision.reasons), decision=decision)

    def reencode(
        self,
        reasons: Tuple[str, ...] = ("manual",),
        decision: Optional[TriggerDecision] = None,
    ) -> bool:
        """One full adaptive re-encoding pass (Section 4), transactional.

        Suspends the world (cost-modelled), reclassifies back edges,
        re-encodes with frequency ordering, re-patches indirect sites,
        bumps ``gTimeStamp``, and regenerates every thread's live id and
        ccStack under the new dictionary.  When telemetry is enabled a
        structured :class:`~repro.obs.report.ReencodePassReport` records
        the trigger decision, what changed, and the wall-clock cost.

        The pass is a transaction: the new dictionary is built against a
        snapshot of the mutable state and must pass the commit gate
        (``invariants.check_dictionary``) before taking effect.  On any
        failure mid-pass everything is rolled back — ``gTimeStamp``, the
        dictionary set, back-edge classification, indirect-site patches
        and every thread's live encoding state — so a failed adaptation
        can never leave threads straddling two timestamps.  In ``strict``
        fault policy the rollback re-raises as
        :class:`~repro.core.errors.ReencodeError`; in ``recover`` the
        abort is quarantined and the engine keeps the old encoding.

        Returns ``True`` when the pass committed.
        """
        started = time.perf_counter()
        pass_span = (
            self.spans.span(
                "engine.reencode", stage="engine", reasons=",".join(reasons)
            )
            if self.spans.enabled
            else None
        )
        previous_max_id = self._current.max_id
        new_edges = self.graph.num_edges - self._edges_at_last_encode
        snapshot = self._reencode_snapshot()
        try:
            edges_reclassified = 0
            if self.config.reclassify_back_edges:
                edges_reclassified = classify_back_edges(self.graph)
            compressed_edges = self.policy.refresh_compressed_edges()

            self._timestamp += 1
            order = (
                frequency_order
                if self.config.frequency_ordering
                else insertion_order
            )
            encoder = Encoder(order_policy=order, id_bits=self.config.id_bits)
            self._current = encoder.encode(self.graph, timestamp=self._timestamp)
            if self.config.reencode_commit_gate:
                violations = self._commit_gate(self._current)
                if violations:
                    raise ReencodeError(
                        "re-encoding pass %d failed its commit gate: %s"
                        % (self._timestamp, "; ".join(violations)),
                        gts=self._timestamp,
                        violations=list(violations),
                    )
            self.dictionaries.add(self._current)
            self._edges_at_last_encode = self.graph.num_edges

            sites_patched = self._repatch_indirect_sites()
            for state in self._threads.values():
                self._regenerate_thread(state)
        except Exception as error:
            self._rollback_reencode(snapshot)
            failed_ts = snapshot["timestamp"] + 1
            if isinstance(error, ReencodeError):
                failure = error
            else:
                failure = ReencodeError(
                    "re-encoding pass %d failed: %s" % (failed_ts, error),
                    gts=failed_ts,
                    cause=repr(error),
                )
                failure.__cause__ = error
            logger.warning(
                "re-encoding pass %d rolled back: %s", failed_ts, failure
            )
            if pass_span is not None:
                pass_span.set(error=type(error).__name__, rolled_back=True)
                pass_span.__exit__(None, None, None)
            if not self._recover:
                raise failure
            self._quarantine(
                FaultKind.REENCODE_ABORTED,
                str(failure),
                recovery=RecoveryAction.ROLLED_BACK,
                reasons=list(reasons),
            )
            return False

        cost = (
            self.graph.num_edges * self.cost.parameters.reencode_per_edge
            + len(self._threads) * self.cost.parameters.thread_suspend
        )
        self.cost.charge_reencode(self.graph.num_edges, len(self._threads))
        self.stats.reencodings += 1
        self.stats.reencode_cost_cycles += cost
        pass_record = ReencodeRecord(
            timestamp=self._timestamp,
            at_call=self.stats.calls,
            nodes=self.graph.num_nodes,
            edges=self.graph.num_edges,
            max_id=self._current.max_id,
            reasons=reasons,
            cost_cycles=cost,
        )
        self.reencode_log.append(pass_record)
        for listener in self.reencode_listeners:
            try:
                listener(pass_record)
            except Exception:
                logger.exception("reencode listener %r failed", listener)
        logger.debug(
            "re-encoding pass %d at call %d: reasons=%s edges=%d maxID=%d",
            self._timestamp, self.stats.calls, ",".join(reasons),
            self.graph.num_edges, self._current.max_id,
        )
        span_field = None
        if pass_span is not None:
            pass_span.set(gts=self._timestamp, max_id=self._current.max_id)
            pass_span.__exit__(None, None, None)
            span_field = {
                "trace": pass_span.trace_id,
                "span": pass_span.span_id,
            }
        if self._obs:
            self.telemetry.record_pass(
                ReencodePassReport(
                    timestamp=self._timestamp,
                    reasons=tuple(reasons),
                    at_call=self.stats.calls,
                    nodes=self.graph.num_nodes,
                    edges=self.graph.num_edges,
                    edges_reclassified=edges_reclassified,
                    new_edges=new_edges,
                    encoded_edges=self._current.num_encoded_edges,
                    max_id=self._current.max_id,
                    previous_max_id=previous_max_id,
                    threads_regenerated=len(self._threads),
                    indirect_sites_patched=sites_patched,
                    compressed_edges=len(compressed_edges),
                    duration_seconds=time.perf_counter() - started,
                    cost_cycles=cost,
                    window=decision.window_dict() if decision else None,
                    span=span_field,
                )
            )
        return True

    def _commit_gate(self, dictionary: EncodingDictionary) -> List[str]:
        """Soundness check gating a re-encoding pass (overridable seam).

        Returns the list of invariant violations; any non-empty result
        aborts and rolls back the pass.  The fault-injection harness
        replaces this to force mid-pass failures.
        """
        return check_dictionary(dictionary)

    def _reencode_snapshot(self) -> Dict[str, Any]:
        """Capture everything a failed re-encoding pass must restore."""
        return {
            "timestamp": self._timestamp,
            "current": self._current,
            "edges_at_last_encode": self._edges_at_last_encode,
            "generation": self.graph.generation,
            "back_flags": [(edge, edge.is_back) for edge in self.graph.edges()],
            "compressed": self.policy.compressed_edges,
            "indirect": self.indirect.snapshot_patches(),
            # Regeneration replaces the ccstack/frames objects wholesale
            # (never mutates them in place), so holding references is a
            # complete snapshot of the per-thread encoding state.
            "threads": {
                thread: (state.id_value, state.ccstack, list(state.frames))
                for thread, state in self._threads.items()
            },
        }

    def _rollback_reencode(self, snapshot: Dict[str, Any]) -> None:
        """Restore the exact pre-pass state captured by the snapshot."""
        self._timestamp = snapshot["timestamp"]
        self._current = snapshot["current"]
        self._edges_at_last_encode = snapshot["edges_at_last_encode"]
        for edge, was_back in snapshot["back_flags"]:
            edge.is_back = was_back
        self.graph.generation = snapshot["generation"]
        self.policy.restore_compressed(snapshot["compressed"])
        self.dictionaries.discard_newer(snapshot["timestamp"])
        self.indirect.restore_patches(snapshot["indirect"])
        for thread, (id_value, ccstack, frames) in snapshot["threads"].items():
            state = self._threads.get(thread)
            if state is not None:
                state.id_value = id_value
                state.ccstack = ccstack
                state.frames = frames

    def _repatch_indirect_sites(self) -> int:
        """Install per-site target sets ordered hottest-first (Figure 3(d)).

        Returns the number of sites patched; promotions to the hash
        strategy (Figure 4) are traced when telemetry is enabled.
        """
        by_site: Dict[CallSiteId, List[CallEdge]] = {}
        for edge in self.graph.edges():
            if edge.kind is CallKind.INDIRECT:
                by_site.setdefault(edge.callsite, []).append(edge)
        for callsite, edges in by_site.items():
            ordered = sorted(edges, key=lambda e: -e.invocations)
            promoted = self.indirect.site(callsite).patch(
                [e.callee for e in ordered],
                hash_threshold=self.config.hash_threshold,
            )
            if promoted and self._obs:
                self.telemetry.emit(
                    "indirect-promotion",
                    callsite=callsite,
                    targets=len(ordered),
                    gts=self._timestamp,
                )
        return len(by_site)

    def _regenerate_thread(self, state: _ThreadState) -> None:
        """Rebuild id/ccStack/frames under the new dictionary.

        The paper patches return addresses in regenerated instrumentation;
        the observable effect is that the live encoding context is exactly
        what the new instrumentation would have produced — which is what
        replaying the shadow stack computes.
        """
        ccstack = CcStack(compression_enabled=True)
        old_stats = state.ccstack.stats
        if state.spawned_entry is not None:
            ccstack.push(0, CLONE_CALLSITE, state.spawned_entry)
            id_value = self._current.max_id + 1
        else:
            id_value = 0

        new_frames: List[_Frame] = []
        bottom = state.frames[0]
        new_frames.append(
            _Frame(
                function=bottom.function,
                callsite=bottom.callsite,
                restore_id=id_value,
                cc_state=ccstack.saved_state(),
                action=_Action.NONE,
                kind=bottom.kind,
            )
        )

        fns = self._targeted_fns
        prev_fn = bottom.function
        for frame in state.frames[1:]:
            chain_restore_id = id_value
            chain_cc_state = ccstack.saved_state()
            transitions = list(frame.chain) + [
                (frame.function, frame.callsite, frame.kind)
            ]
            action = _Action.NONE
            for function, callsite, kind in transitions:
                if fns is not None and (
                    prev_fn not in fns or function not in fns
                ):
                    # Boundary/untracked transition: replay the targeted
                    # discipline — these edges are never in the graph.
                    if prev_fn in fns:
                        ccstack.push(
                            id_value, UNTRACKED_CALLSITE, prev_fn
                        )
                        id_value = self._current.max_id + 1
                        action = _Action.BOUNDARY_DEP
                    elif function in fns:
                        ccstack.push(
                            id_value, UNTRACKED_CALLSITE, function
                        )
                        id_value = self._current.max_id + 1
                        action = _Action.BOUNDARY_RE
                    else:
                        action = _Action.UNTRACKED
                    prev_fn = function
                    continue
                edge = self.graph.edge(callsite, function)
                encoding = self._edge_encoding(edge)
                if encoding is not None:
                    id_value += encoding
                    action = _Action.ID if encoding else _Action.NONE
                else:
                    compressed = ccstack.push(
                        id_value,
                        callsite,
                        function,
                        allow_compress=edge.is_back
                        and self._compression_allowed(edge),
                        discovery=not edge.is_back,
                    )
                    id_value = self._current.max_id + 1
                    action = (
                        _Action.COMPRESS if compressed else _Action.PUSH
                    )
                prev_fn = function
            new_frames.append(
                _Frame(
                    function=frame.function,
                    callsite=frame.callsite,
                    restore_id=chain_restore_id,
                    cc_state=chain_cc_state,
                    action=action,
                    kind=frame.kind,
                    chain=frame.chain,
                )
            )

        # Preserve accumulated traffic statistics across regeneration.
        ccstack.stats = old_stats
        state.ccstack = ccstack
        state.id_value = id_value
        state.frames = new_frames
