"""Calling-context value objects.

A *calling context* is the chain of call sites from ``main`` (or from a
thread entry function) to the current execution point.  The engine never
stores whole contexts at runtime — that is the point of the paper — it
stores a compact :class:`CollectedSample` (context id + ccStack snapshot +
timestamp) which the decoder later expands into a :class:`CallingContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple, Optional, Sequence, Tuple

from .events import CallSiteId, FunctionId, ThreadId


@dataclass(frozen=True)
class ContextStep:
    """One frame transition in a decoded context.

    ``callsite`` is ``None`` for the root frame.  ``count`` is the number
    of *extra* compressed recursive repetitions of this step (Figure 5(e)
    of the paper): a step with ``count == 2`` occurred three times in a
    row in the original execution.
    """

    function: FunctionId
    callsite: Optional[CallSiteId] = None
    count: int = 0


@dataclass(frozen=True)
class CallingContext:
    """A fully decoded calling context — a path through the call graph.

    ``steps[0]`` is the outermost frame (``main`` or a thread entry),
    ``steps[-1]`` the function at which the sample was taken.
    """

    steps: Tuple[ContextStep, ...]

    def functions(self) -> Tuple[FunctionId, ...]:
        """The context as a plain function-id path, recursion expanded."""
        out = []
        for step in self.steps:
            out.extend([step.function] * (1 + step.count))
        return tuple(out)

    def depth(self) -> int:
        """Number of frames including compressed recursive repetitions."""
        return sum(1 + step.count for step in self.steps)

    def __iter__(self) -> Iterator[ContextStep]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    @staticmethod
    def from_functions(path: Sequence[FunctionId]) -> "CallingContext":
        """Build an uncompressed context from a plain function path."""
        return CallingContext(tuple(ContextStep(f) for f in path))


class CcStackEntry(NamedTuple):
    """One saved sub-path on the ccStack: ``<id, callsite, target, count>``.

    ``count`` is only meaningful for recursion-compressed entries; it is
    zero for plain unencoded-edge saves (Figure 2(b) vs Figure 5(e)).

    A ``NamedTuple`` (not a frozen dataclass): entries are created on
    the runtime hot path (every unencoded-edge save), and tuple
    construction is a single C call where the frozen-dataclass
    ``__init__`` pays one ``object.__setattr__`` per field.
    """

    id: int
    callsite: CallSiteId
    target: FunctionId
    count: int = 0


class CollectedSample(NamedTuple):
    """What the sampler records at a sample point (Figure 6).

    This is the *compact* runtime representation of a context:

    * ``timestamp`` — the value of ``gTimeStamp`` when the sample was
      taken; selects the decoding dictionary.
    * ``context_id`` — the current per-thread id.
    * ``function`` — the function executing at the sample point
      (``ifun`` in Algorithm 1).
    * ``ccstack`` — snapshot of the per-thread ccStack, bottom first.
    * ``thread`` — the sampled thread, used to stitch thread-creation
      contexts back on during decoding.

    A ``NamedTuple`` for the same hot-path reason as
    :class:`CcStackEntry`: one is materialised per profile-hook fire,
    and the constructor cost is the bulk of the hook's marginal
    overhead (see ``benchmarks/bench_profile_overhead.py``).
    """

    timestamp: int
    context_id: int
    function: FunctionId
    ccstack: Tuple[CcStackEntry, ...] = ()
    thread: ThreadId = 0

    def ccstack_depth(self) -> int:
        """Depth of the saved ccStack including compressed repetitions."""
        return sum(1 + entry.count for entry in self.ccstack)
