"""Parallel, memoized decoding of recorded sample logs.

Offline decoding is embarrassingly parallel: every record of a ``DCL2``
sample log decodes independently against the same read-only decoding
state.  :func:`decode_log_parallel` shards a log by record ranges across
a ``multiprocessing`` pool — each worker loads the exported state file
itself (read-only; nothing mutable crosses the process boundary except
the sample chunks) and decodes its ranges through a worker-local
:class:`~repro.core.decoder.DecodeCache`.

Two independent speedups compose here:

* **cores** — chunks decode concurrently across workers,
* **memoization** — hot calling contexts recur constantly in real logs,
  so each worker's LRU cache collapses repeats to a dict probe.  On a
  single-core machine this is the dominant (and only parallel) win.

Ordering is preserved exactly: chunks are dispatched and consumed in
record order, so strict mode raises the same first
:class:`~repro.core.errors.DecodingError` a sequential
:func:`~repro.core.serialize.decode_log` would, and best-effort mode
yields :class:`~repro.core.faults.PartialDecode` results (faults
included) in the same positions.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Sequence, Tuple, Union

from .context import CallingContext, CollectedSample
from .decoder import DecodeCache, Decoder
from .faults import PartialDecode

#: One decoded chunk: results plus the worker cache's (hits, misses)
#: delta for this chunk, so the parent can aggregate cache telemetry.
_ChunkResult = Tuple[
    List[Union[CallingContext, PartialDecode]], Tuple[int, int]
]

#: Per-worker decoder, built once by the pool initializer.  Plain module
#: global — the standard multiprocessing idiom for read-only worker
#: state (each worker process has its own copy).
_worker_decoder: Optional[Decoder] = None


def _init_worker(
    state_path: str, best_effort_state: bool, cache_capacity: int
) -> None:
    """Pool initializer: load the decoding state file, attach a cache."""
    global _worker_decoder
    from .serialize import load_decoder

    decoder = load_decoder(state_path, best_effort=best_effort_state)
    decoder.cache = DecodeCache(cache_capacity)
    _worker_decoder = decoder


def _decode_chunk(
    payload: Tuple[List[CollectedSample], bool]
) -> _ChunkResult:
    samples, best_effort = payload
    decoder = _worker_decoder
    assert decoder is not None, "worker used without initializer"
    cache = decoder.cache
    assert cache is not None
    hits0, misses0 = cache.hits, cache.misses
    results: List[Union[CallingContext, PartialDecode]] = []
    append = results.append
    if best_effort:
        for sample in samples:
            append(decoder.decode_best_effort(sample))
    else:
        for sample in samples:
            append(decoder.decode(sample))
    return results, (cache.hits - hits0, cache.misses - misses0)


def _chunk_ranges(total: int, jobs: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into contiguous shards, several per worker.

    Over-decomposing (4 chunks per worker) keeps the pool busy when
    chunks decode at different speeds (deep contexts cost more), while
    contiguous ranges keep each worker's cache hot — neighbouring
    records usually share most of their context.
    """
    chunks = max(1, min(total, jobs * 4))
    base, extra = divmod(total, chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < extra else 0)
        if size == 0:
            break
        ranges.append((start, start + size))
        start += size
    return ranges


def decode_log_parallel(
    state_path: str,
    samples: Sequence[CollectedSample],
    jobs: int,
    best_effort: bool = False,
    best_effort_state: bool = False,
    cache_capacity: int = 4096,
    stats: Optional[dict] = None,
) -> List[Union[CallingContext, PartialDecode]]:
    """Decode ``samples`` against ``state_path`` with ``jobs`` workers.

    ``samples`` is any indexable sample sequence — pass
    ``SampleLog.samples()`` for a loaded log.  ``best_effort`` selects
    per-record :class:`PartialDecode` results (fault ordering matches
    the sequential pipeline); ``best_effort_state`` is forwarded to each
    worker's :func:`~repro.core.serialize.load_decoder`.  ``stats``,
    when given, receives aggregate worker-cache telemetry
    (``cache_hits`` / ``cache_misses`` / ``jobs`` / ``chunks``).

    With ``jobs <= 1`` no pool is spawned: the log decodes in-process
    through the same chunking and caching, so output (and fault
    ordering) is identical by construction.  The same in-process path
    is taken when ``os.cpu_count() == 1``: on a single-core machine a
    worker pool can only add fork/pickle overhead on top of a serial
    schedule, so spawning one would make the "parallel" decoder
    *slower* than sequential while reporting the requested ``jobs`` —
    dishonest benchmark numbers.  Memoization remains the only win on
    such hosts (see the module docstring); ``stats["jobs"]`` keeps the
    *requested* count and ``stats["effective_jobs"]`` records what
    actually ran.
    """
    total = len(samples)
    ranges = _chunk_ranges(total, max(1, jobs))
    payloads = [
        (list(samples[start:stop]), best_effort) for start, stop in ranges
    ]

    results: List[Union[CallingContext, PartialDecode]] = []
    cache_hits = cache_misses = 0
    effective_jobs = max(1, jobs)
    if (os.cpu_count() or 1) == 1:
        effective_jobs = 1
    if effective_jobs <= 1 or len(payloads) <= 1:
        effective_jobs = 1
        _init_worker(state_path, best_effort_state, cache_capacity)
        try:
            for payload in payloads:
                chunk, (hits, misses) = _decode_chunk(payload)
                results.extend(chunk)
                cache_hits += hits
                cache_misses += misses
        finally:
            _reset_worker()
    else:
        workers = min(effective_jobs, len(payloads))
        effective_jobs = workers
        with multiprocessing.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(state_path, best_effort_state, cache_capacity),
        ) as pool:
            # imap (not imap_unordered): chunks come back in record
            # order, so a strict-mode DecodingError surfaces at the
            # same record a sequential decode would reach first.
            for chunk, (hits, misses) in pool.imap(_decode_chunk, payloads):
                results.extend(chunk)
                cache_hits += hits
                cache_misses += misses
    if stats is not None:
        stats["cache_hits"] = cache_hits
        stats["cache_misses"] = cache_misses
        stats["jobs"] = max(1, jobs)
        stats["effective_jobs"] = effective_jobs
        stats["chunks"] = len(payloads)
    return results


def _reset_worker() -> None:
    global _worker_decoder
    _worker_decoder = None
