"""Struct-of-arrays event batches for the columnar fast path.

``process_batch`` interprets one Python tuple per event; at steady state
most of its time goes to tuple allocation and the per-element object
protocol.  :class:`EventColumns` stores the same compact-event stream as
six parallel integer columns (``array('q')``/``array('b')``) so the
engine's code-generated dispatch kernel (:mod:`repro.core.fastpath`) can
iterate over raw machine integers via ``memoryview``s — no per-event
allocation on the hit path.

The format is lossless with respect to the compact tuple wire format
(:mod:`repro.core.events`).  Column layout per opcode:

======================  ========  =========  ========  ========  ======
opcode                  thread    callsite   caller    callee    kind
======================  ========  =========  ========  ========  ======
``EV_CALL``             thread    callsite   caller    callee    kind
``EV_RETURN``           thread    0          0         0         0
``EV_SAMPLE``           thread    0          0         0         0
``EV_THREAD_START``     thread    0          parent    entry     0
``EV_THREAD_EXIT``      thread    0          0         0         0
``EV_LIBRARY_LOAD``     thread    lib index  0         0         0
======================  ========  =========  ========  ========  ======

``EV_LIBRARY_LOAD`` carries a string payload; the name is interned in a
side table (``_libraries``) and the callsite column stores its index, so
round-tripping through columns reproduces the original tuple exactly.

Batches are reusable: producers preallocate once (``with_capacity``),
fill via the ``push_*`` mutators, hand the batch to
``DacceEngine.process_columns``, then ``clear()`` and refill.  ``clear``
resets the logical length without releasing storage, so a long-lived
tracer buffer never reallocates.  While the engine holds the batch's
``memoryview``s the arrays must not grow; ``process_columns`` releases
its views before returning.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, List, Tuple

from .events import (
    EV_CALL,
    EV_LIBRARY_LOAD,
    EV_RETURN,
    EV_SAMPLE,
    EV_THREAD_EXIT,
    EV_THREAD_START,
    OPCODE_ARITY,
    CompactEvent,
)

#: The trimmed column views handed to the dispatch kernel:
#: ``(op, thread, callsite, caller, callee, kind)``.
ColumnViews = Tuple[
    "memoryview", "memoryview", "memoryview", "memoryview", "memoryview", "memoryview"
]


class EventColumns:
    """A struct-of-arrays batch of compact events (see module docs)."""

    __slots__ = (
        "op",
        "thread",
        "callsite",
        "caller",
        "callee",
        "kind",
        "_libraries",
        "_n",
    )

    def __init__(self, capacity: int = 0) -> None:
        zeros_b = bytes(capacity)
        zeros_q = array("q", bytes(8 * capacity)) if capacity else array("q")
        self.op: array[int] = array("b", zeros_b)
        self.thread: array[int] = array("q", zeros_q)
        self.callsite: array[int] = array("q", zeros_q)
        self.caller: array[int] = array("q", zeros_q)
        self.callee: array[int] = array("q", zeros_q)
        self.kind: array[int] = array("b", zeros_b)
        self._libraries: List[str] = []
        self._n = 0

    @classmethod
    def with_capacity(cls, capacity: int) -> "EventColumns":
        """A reusable batch preallocated for ``capacity`` events."""
        return cls(capacity)

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        """Events the batch can hold before its arrays grow."""
        return len(self.op)

    def clear(self) -> None:
        """Reset the logical length; storage is retained for reuse."""
        self._n = 0
        if self._libraries:
            del self._libraries[:]

    # ------------------------------------------------------------------
    # mutators
    # ------------------------------------------------------------------
    def _slot(self) -> int:
        """Index of the next write slot, growing the arrays if full."""
        i = self._n
        if i >= len(self.op):
            self.op.append(0)
            self.thread.append(0)
            self.callsite.append(0)
            self.caller.append(0)
            self.callee.append(0)
            self.kind.append(0)
        self._n = i + 1
        return i

    def push_call(
        self,
        thread: int,
        callsite: int,
        caller: int,
        callee: int,
        kind: int = 0,
    ) -> None:
        """Append an ``EV_CALL`` event."""
        i = self._slot()
        self.op[i] = EV_CALL
        self.thread[i] = thread
        self.callsite[i] = callsite
        self.caller[i] = caller
        self.callee[i] = callee
        self.kind[i] = kind

    def push_return(self, thread: int) -> None:
        """Append an ``EV_RETURN`` event."""
        i = self._slot()
        self.op[i] = EV_RETURN
        self.thread[i] = thread
        self.callsite[i] = 0
        self.caller[i] = 0
        self.callee[i] = 0
        self.kind[i] = 0

    def push(self, record: CompactEvent) -> None:
        """Append one compact tuple of any opcode (lossless)."""
        op = record[0]
        i = self._slot()
        ops = self.op
        ops[i] = op
        self.thread[i] = record[1]
        if op == EV_CALL:
            self.callsite[i] = record[2]
            self.caller[i] = record[3]
            self.callee[i] = record[4]
            self.kind[i] = record[5]
            return
        self.kind[i] = 0
        if op == EV_THREAD_START:
            self.callsite[i] = 0
            self.caller[i] = record[2]
            self.callee[i] = record[3]
        elif op == EV_LIBRARY_LOAD:
            libraries = self._libraries
            self.callsite[i] = len(libraries)
            # The tuple layout smuggles the name as an untyped payload.
            libraries.append(record[2])  # type: ignore[arg-type]
            self.caller[i] = 0
            self.callee[i] = 0
        else:
            if op not in (EV_RETURN, EV_SAMPLE, EV_THREAD_EXIT):
                self._n = i  # roll back the reserved slot
                raise TypeError("cannot columnise unknown opcode %r" % (op,))
            self.callsite[i] = 0
            self.caller[i] = 0
            self.callee[i] = 0

    def extend(self, records: Iterable[CompactEvent]) -> None:
        """Append every compact tuple in ``records``."""
        push = self.push
        for record in records:
            push(record)

    # ------------------------------------------------------------------
    # converters
    # ------------------------------------------------------------------
    @classmethod
    def from_compact(cls, records: Iterable[CompactEvent]) -> "EventColumns":
        """Columnise a compact-tuple stream losslessly."""
        cols = cls()
        cols.extend(records)
        return cols

    def record(self, i: int) -> CompactEvent:
        """Materialise the single compact tuple at index ``i``.

        This is the deoptimisation primitive: the dispatch kernel exits
        with an index, and only that one event pays tuple allocation on
        its way to the general path.
        """
        if not 0 <= i < self._n:
            raise IndexError("event index %d out of range" % (i,))
        op = self.op[i]
        if op == EV_CALL:
            return (
                op,
                self.thread[i],
                self.callsite[i],
                self.caller[i],
                self.callee[i],
                self.kind[i],
            )
        if op == EV_THREAD_START:
            return (op, self.thread[i], self.caller[i], self.callee[i])
        if op == EV_LIBRARY_LOAD:
            name = self._libraries[self.callsite[i]]
            return (op, self.thread[i], name)  # type: ignore[return-value]
        return (op, self.thread[i])

    def iter_compact(self) -> Iterator[CompactEvent]:
        """Yield every event as a compact tuple, in order."""
        record = self.record
        for i in range(self._n):
            yield record(i)

    def to_compact(self) -> List[CompactEvent]:
        """The full batch as a list of compact tuples (lossless)."""
        return list(self.iter_compact())

    def views(self) -> ColumnViews:
        """Zero-copy ``memoryview``s trimmed to the logical length.

        The caller must release every view (or drop all references)
        before the batch is mutated again — exported buffers pin the
        arrays against resizing.
        """
        n = self._n
        return (
            memoryview(self.op)[:n],
            memoryview(self.thread)[:n],
            memoryview(self.callsite)[:n],
            memoryview(self.caller)[:n],
            memoryview(self.callee)[:n],
            memoryview(self.kind)[:n],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "EventColumns(len=%d, capacity=%d)" % (self._n, len(self.op))


__all__ = ["ColumnViews", "EventColumns", "OPCODE_ARITY"]
