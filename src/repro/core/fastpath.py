"""Compiled fast-path dispatch tables for the steady state.

The paper's central trick is that a call over an already-encoded edge
costs almost nothing — the hottest in-edge gets encoding 0, i.e. *no
instrumentation at all* (Sections 3-4).  The reproduction mirrors that
at the interpreter level: :class:`FastPathTable` is a flat dictionary
compiled from the current decoding dictionary that lets
``DacceEngine.process_batch`` handle a run of encoded NORMAL calls and
their returns with one dict probe and one integer add each — no
dataclass unpacking, no handler/fault/telemetry branches.

The table is a pure *specialisation cache*: every entry restates what
the general path would compute for that edge under the current
``gTimeStamp``.  Anything the table cannot prove cheap (an unencoded or
back edge, an indirect/tail/PLT call, a sample, a thread event, a
fault-policy recovery) misses and deoptimises to the existing general
path, so behaviour is identical and only speed changes.

Invalidation is by identity: a table is valid exactly while the engine's
current dictionary is the *object* it was compiled from and the
tail-caller set has not grown.  Re-encoding replaces the dictionary
object (and a rolled-back pass restores the previous object, for which
the previous table is still exact), so transactional re-encoding and
warm-start seeding (PR 2/PR 3) need no extra hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

from .events import CallKind, CallSiteId, FunctionId

if TYPE_CHECKING:
    from .callgraph import CallEdge
    from .dictionary import EncodingDictionary

#: ``(callsite, callee) -> (encoding delta, edge, callee tail-calls?)``.
#:
#: The issue sketches the key as ``(thread_kind, callsite)``; the
#: reproduction keys on ``(callsite, callee)`` instead because a call
#: site is not guaranteed monomorphic (the Python tracer maps dynamic
#: dispatch onto NORMAL calls), and the encoding is a per-target
#: property.  The per-thread running-id register lives in the engine's
#: ``_ThreadState.id_value``, which the batch loop mutates directly.
FastPathEntry = Tuple[int, "CallEdge", bool]
FastPathKey = Tuple[CallSiteId, FunctionId]


@dataclass
class FastPathStats:
    """Specialisation counters; ``hit_rate`` feeds the CI perf gate."""

    hits: int = 0
    misses: int = 0
    batches: int = 0
    compiles: int = 0

    @property
    def events(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if not total:
            return 0.0
        return self.hits / total

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "batches": self.batches,
            "compiles": self.compiles,
            "hit_rate": self.hit_rate,
        }


class FastPathTable:
    """One compiled dispatch table, pinned to a dictionary snapshot.

    ``entries`` maps every encoded, non-back NORMAL edge of the source
    dictionary to ``(delta, edge, callee_tail_calls)``:

    * ``delta`` — the edge's encoding (``id += delta``; 0 for the
      hottest in-edge, matching the paper's zero-instrumentation case),
    * ``edge`` — the live :class:`~repro.core.callgraph.CallEdge`, so
      the batch loop can bump ``invocations`` (the adaptive policy's
      frequency signal) without a graph lookup,
    * ``callee_tail_calls`` — whether the callee is a known tail-caller,
      i.e. the caller-side TcStack save of Figure 7 must be charged.

    Seeded edges that have never been invoked are compiled in as well;
    the batch loop credits ``warmstart_handler_hits_avoided`` on their
    first hit exactly as the general path would.
    """

    __slots__ = ("entries", "dictionary", "tail_set_size")

    def __init__(
        self,
        entries: Dict[FastPathKey, FastPathEntry],
        dictionary: "EncodingDictionary",
        tail_set_size: int,
    ):
        self.entries = entries
        self.dictionary = dictionary
        self.tail_set_size = tail_set_size

    def __len__(self) -> int:
        return len(self.entries)

    def valid_for(
        self, dictionary: "EncodingDictionary", tail_set_size: int
    ) -> bool:
        """Is this table still exact for the engine's current state?

        Identity on the dictionary object covers both directions of the
        re-encoding transaction: a committed pass installs a new object
        (stale), a rolled-back pass restores the old object (this table
        is exact again).  The tail-caller set only grows, and growth
        flips the TcStack charge of affected callees, so its size is the
        second validity dimension.
        """
        return (
            dictionary is self.dictionary
            and tail_set_size == self.tail_set_size
        )


def compile_table(graph, dictionary, tail_calling_functions) -> FastPathTable:
    """Compile the fast-path table for one dictionary snapshot.

    O(edges) — the same order as one re-encoding pass, and compiled at
    most once per (dictionary, tail-set) state, so compilation cost is
    bounded by the adaptive machinery that triggered it.
    """
    entries: Dict[FastPathKey, FastPathEntry] = {}
    for edge in graph.edges():
        if edge.kind is not CallKind.NORMAL or edge.is_back:
            continue
        encoding = dictionary.encoding(edge.callsite, edge.callee)
        if encoding is None:
            continue
        entries[(edge.callsite, edge.callee)] = (
            encoding,
            edge,
            edge.callee in tail_calling_functions,
        )
    return FastPathTable(entries, dictionary, len(tail_calling_functions))
