"""Compiled fast-path dispatch tables for the steady state.

The paper's central trick is that a call over an already-encoded edge
costs almost nothing — the hottest in-edge gets encoding 0, i.e. *no
instrumentation at all* (Sections 3-4).  The reproduction mirrors that
at the interpreter level: :class:`FastPathTable` is a flat dictionary
compiled from the current decoding dictionary that lets
``DacceEngine.process_batch`` handle a run of encoded NORMAL calls and
their returns with one dict probe and one integer add each — no
dataclass unpacking, no handler/fault/telemetry branches.

The table is a pure *specialisation cache*: every entry restates what
the general path would compute for that edge under the current
``gTimeStamp``.  Anything the table cannot prove cheap (an unencoded or
back edge, an indirect/tail/PLT call, a sample, a thread event, a
fault-policy recovery) misses and deoptimises to the existing general
path, so behaviour is identical and only speed changes.

Invalidation is by identity: a table is valid exactly while the engine's
current dictionary is the *object* it was compiled from and the
tail-caller set has not grown.  Re-encoding replaces the dictionary
object (and a rolled-back pass restores the previous object, for which
the previous table is still exact), so transactional re-encoding and
warm-start seeding (PR 2/PR 3) need no extra hooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Tuple, cast

from .events import CallKind, CallSiteId, FunctionId

if TYPE_CHECKING:
    from .callgraph import CallEdge
    from .dictionary import EncodingDictionary

#: ``(callsite, callee) -> (encoding delta, edge, callee tail-calls?)``.
#:
#: The issue sketches the key as ``(thread_kind, callsite)``; the
#: reproduction keys on ``(callsite, callee)`` instead because a call
#: site is not guaranteed monomorphic (the Python tracer maps dynamic
#: dispatch onto NORMAL calls), and the encoding is a per-target
#: property.  The per-thread running-id register lives in the engine's
#: ``_ThreadState.id_value``, which the batch loop mutates directly.
FastPathEntry = Tuple[int, "CallEdge", bool]
FastPathKey = Tuple[CallSiteId, FunctionId]


@dataclass
class FastPathStats:
    """Specialisation counters; ``hit_rate`` feeds the CI perf gate."""

    hits: int = 0
    misses: int = 0
    batches: int = 0
    compiles: int = 0

    @property
    def events(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if not total:
            return 0.0
        return self.hits / total

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "batches": self.batches,
            "compiles": self.compiles,
            "hit_rate": self.hit_rate,
        }


class FastPathTable:
    """One compiled dispatch table, pinned to a dictionary snapshot.

    ``entries`` maps every encoded, non-back NORMAL edge of the source
    dictionary to ``(delta, edge, callee_tail_calls)``:

    * ``delta`` — the edge's encoding (``id += delta``; 0 for the
      hottest in-edge, matching the paper's zero-instrumentation case),
    * ``edge`` — the live :class:`~repro.core.callgraph.CallEdge`, so
      the batch loop can bump ``invocations`` (the adaptive policy's
      frequency signal) without a graph lookup,
    * ``callee_tail_calls`` — whether the callee is a known tail-caller,
      i.e. the caller-side TcStack save of Figure 7 must be charged.

    Seeded edges that have never been invoked are compiled in as well;
    the batch loop credits ``warmstart_handler_hits_avoided`` on their
    first hit exactly as the general path would.
    """

    __slots__ = ("entries", "dictionary", "tail_set_size")

    def __init__(
        self,
        entries: Dict[FastPathKey, FastPathEntry],
        dictionary: "EncodingDictionary",
        tail_set_size: int,
    ):
        self.entries = entries
        self.dictionary = dictionary
        self.tail_set_size = tail_set_size

    def __len__(self) -> int:
        return len(self.entries)

    def valid_for(
        self, dictionary: "EncodingDictionary", tail_set_size: int
    ) -> bool:
        """Is this table still exact for the engine's current state?

        Identity on the dictionary object covers both directions of the
        re-encoding transaction: a committed pass installs a new object
        (stale), a rolled-back pass restores the old object (this table
        is exact again).  The tail-caller set only grows, and growth
        flips the TcStack charge of affected callees, so its size is the
        second validity dimension.
        """
        return (
            dictionary is self.dictionary
            and tail_set_size == self.tail_set_size
        )


def compile_table(graph, dictionary, tail_calling_functions) -> FastPathTable:
    """Compile the fast-path table for one dictionary snapshot.

    O(edges) — the same order as one re-encoding pass, and compiled at
    most once per (dictionary, tail-set) state, so compilation cost is
    bounded by the adaptive machinery that triggered it.
    """
    entries: Dict[FastPathKey, FastPathEntry] = {}
    for edge in graph.edges():
        if edge.kind is not CallKind.NORMAL or edge.is_back:
            continue
        encoding = dictionary.encoding(edge.callsite, edge.callee)
        if encoding is None:
            continue
        entries[(edge.callsite, edge.callee)] = (
            encoding,
            edge,
            edge.callee in tail_calling_functions,
        )
    return FastPathTable(entries, dictionary, len(tail_calling_functions))


# ----------------------------------------------------------------------
# code-generated columnar dispatch
# ----------------------------------------------------------------------
# ``DacceEngine.process_columns`` drives struct-of-arrays batches
# (:mod:`repro.core.columnar`) through a *code-generated* kernel: each
# time a :class:`FastPathTable` is compiled, the engine ``exec``s a
# specialised dispatch function with the table's entry dict bound as a
# closure constant and the current engine shape (warm-start seeding
# present?  sampling hook installed?  adaptive check interval) compiled
# directly into the source — branches for absent features do not exist
# in the generated bytecode.  The per-thread id register, the logical
# top-of-stack function and the sampling countdown live in interpreter
# locals, so the steady-state inner loop is one dict probe plus one
# integer add over raw integer columns.
#
# Frames for hot calls are *deferred*: the kernel pushes lightweight
# scratch tuples and only materialises real ``_Frame`` objects when it
# exits (deopt, sample, trigger, thread switch, end of batch).  This is
# sound because nothing observes ``state.frames`` between hot events,
# the ccStack never mutates on the hit path (so one ``saved_state()``
# per thread-activation is exact for every deferred frame), and a
# call/return pair wholly inside one kernel run never needs its frame
# at all.
#
# Exit protocol: the kernel returns
# ``(consumed, reason, thread, calls, returns, id_updates, tcstack,
# hits, countdown)`` after materialising scratch frames and writing the
# id register back.  ``consumed`` is the index at which processing
# should resume; ``reason`` is one of the ``KERNEL_*`` codes below.

#: Exit reasons of a generated kernel run.
KERNEL_DONE = 0  #: every event consumed
KERNEL_DEOPT = 1  #: event at ``consumed`` needs the general path
KERNEL_SAMPLE = 2  #: sampling countdown hit zero after a call
KERNEL_TRIGGER = 3  #: adaptive window filled after a return

#: ``kernel(views, start, threads, countdown, window_calls)`` →
#: ``(consumed, reason, thread, calls, returns, id_updates, tcstack,
#: hits, countdown)``.
ColumnarKernel = Callable[
    [Tuple[Any, ...], int, Dict[int, Any], int, int], Tuple[int, ...]
]

_SWITCH_BLOCK = """\
{i}ns = threads_get(et)
{i}if ns is None:
{i}    reason = 1
{i}    break
{i}if state is not None:
{i}    if scratch:
{i}        for sf in scratch:
{i}            frames_append(_frame(sf[0], sf[1], sf[2], cc_state, sf[3]))
{i}        del scratch[:]
{i}    state.id_value = cur_id
{i}cur_t = et
{i}state = ns
{i}frames = ns.frames
{i}frames_append = frames.append
{i}cur_id = ns.id_value
{i}top_fn = frames[-1].function
{i}cc_state = ns.ccstack.saved_state()"""

_WARM_BLOCK = """\
                    if not edge.invocations and edge.seeded:
                        _stats.warmstart_handler_hits_avoided += 1"""

_PROF_BLOCK = """\
                    pcount -= 1
                    if pcount <= 0:
                        reason = 2
                        break"""

_KERNEL_TEMPLATE = """\
def {name}(views, start, threads_map, pcount, wcalls):
    ops, tcol, cscol, crcol, cecol, kcol = views
    if start:
        ops = ops[start:]
        tcol = tcol[start:]
        cscol = cscol[start:]
        crcol = crcol[start:]
        cecol = cecol[start:]
        kcol = kcol[start:]
    threads_get = threads_map.get
    entries_get = _entries_get
    scratch = []
    scratch_append = scratch.append
    scratch_pop = scratch.pop
    cur_t = -1
    state = None
    frames = None
    frames_append = None
    cur_id = 0
    top_fn = -1
    cc_state = None
    pend_calls = 0
    pend_rets = 0
    pend_id = 0
    pend_tc = 0
    hits = 0
    reason = 0
    i = start - 1
    for op, et, cs, cr, ce, ek in zip(ops, tcol, cscol, crcol, cecol, kcol):
        i += 1
        if op == 0:
            if ek == 0:
                if et != cur_t:
{switch_call}
                entry = entries_get((cs, ce))
                if entry is not None and top_fn == cr:
                    edge = entry[1]
{warm_block}
                    edge.invocations += 1
                    delta = entry[0]
                    if delta:
                        scratch_append((ce, cs, cur_id, _act_id))
                        cur_id += delta
                        pend_id += 1
                    else:
                        scratch_append((ce, cs, cur_id, _act_none))
                    if entry[2]:
                        pend_tc += 1
                    top_fn = ce
                    pend_calls += 1
                    hits += 1
{prof_block}
                    continue
            reason = 1
            break
        elif op == 1:
            if et != cur_t:
{switch_ret}
            if scratch:
                sf = scratch_pop()
                cur_id = sf[2]
                if sf[3] is _act_id:
                    pend_id += 1
                pend_rets += 1
                hits += 1
                top_fn = scratch[-1][0] if scratch else frames[-1].function
                if wcalls + pend_calls >= {interval}:
                    reason = 3
                    break
                continue
            if len(frames) > 1:
                frame = frames[-1]
                act = frame.action
                if (act is _act_none or act is _act_id) and not frame.chain:
                    frames.pop()
                    if act is _act_id:
                        pend_id += 1
                    cur_id = frame.restore_id
                    pend_rets += 1
                    hits += 1
                    top_fn = frames[-1].function
                    if wcalls + pend_calls >= {interval}:
                        reason = 3
                        break
                    continue
            reason = 1
            break
        else:
            reason = 1
            break
    if state is not None:
        if scratch:
            for sf in scratch:
                frames_append(_frame(sf[0], sf[1], sf[2], cc_state, sf[3]))
        state.id_value = cur_id
    if reason == 1:
        consumed = i
    else:
        consumed = i + 1
    return (
        consumed,
        reason,
        cur_t,
        pend_calls,
        pend_rets,
        pend_id,
        pend_tc,
        hits,
        pcount,
    )
"""


def compile_columnar_kernel(
    table: FastPathTable,
    *,
    gts: int,
    frame_factory: Callable[..., Any],
    action_none: Any,
    action_id: Any,
    stats: Any,
    warm: bool,
    profiled: bool,
    interval: int,
) -> ColumnarKernel:
    """``exec`` a dispatch kernel specialised for one engine epoch.

    ``gts`` only names the generated function (``_kernel_gts<N>``) so
    profiles and tracebacks identify which encoding epoch a kernel
    belongs to; the real specialisation constants are the table's entry
    dict (closure constant), ``warm``/``profiled`` (their branches are
    present in the source only when the feature is live) and
    ``interval`` (inlined literal).  The engine recompiles whenever the
    table or any shape input changes — see
    ``DacceEngine._ensure_columnar_kernel``.
    """
    name = "_kernel_gts%d" % (gts,)
    source = _KERNEL_TEMPLATE.format(
        name=name,
        interval=interval,
        switch_call=_SWITCH_BLOCK.format(i=" " * 20),
        switch_ret=_SWITCH_BLOCK.format(i=" " * 16),
        warm_block=_WARM_BLOCK if warm else "",
        prof_block=_PROF_BLOCK if profiled else "",
    )
    namespace: Dict[str, Any] = {
        "_entries_get": table.entries.get,
        "_frame": frame_factory,
        "_act_none": action_none,
        "_act_id": action_id,
        "_stats": stats,
    }
    exec(  # noqa: S102 - the source is generated above, not user input
        compile(source, "<columnar-kernel gts=%d>" % (gts,), "exec"),
        namespace,
    )
    return cast(ColumnarKernel, namespace[name])
