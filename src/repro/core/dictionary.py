"""Decoding dictionaries — versioned encoding snapshots (Figure 6).

With adaptive encoding the call graph and its encodings change over time.
Every re-encoding bumps the global timestamp ``gTimeStamp``; collected
contexts are tagged with it, and decoding must use the dictionary that was
live when the context was recorded.  A dictionary is an *immutable*
snapshot of:

* ``Edge._encoding``  — the ``En`` value of every encoded edge,
* ``Node._numCC``     — the context count of every node,
* ``maxID``           — the maximum context id for that encoding,
* the graph structure (in-edges per node, back-edge flags) that
  Algorithm 1 walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import StaleDictionaryError
from .events import CallKind, CallSiteId, FunctionId

EdgeKey = Tuple[CallSiteId, FunctionId]


@dataclass(frozen=True)
class EdgeInfo:
    """Frozen view of one call edge as the decoder sees it.

    ``encoding`` is ``None`` for unencoded edges (back edges, or edges
    discovered after this dictionary was built).
    """

    caller: FunctionId
    callee: FunctionId
    callsite: CallSiteId
    kind: CallKind
    is_back: bool
    encoding: Optional[int]


class EncodingDictionary:
    """One immutable decoding dictionary, tagged with its timestamp."""

    def __init__(
        self,
        timestamp: int,
        numcc: Dict[FunctionId, int],
        edges: Dict[EdgeKey, EdgeInfo],
        max_id: int,
        root: FunctionId,
        overflow_bits: Optional[int] = None,
    ):
        self.timestamp = timestamp
        self.max_id = max_id
        self.root = root
        #: True when max_id does not fit the configured id width.
        self.overflow_bits = overflow_bits
        self._numcc = dict(numcc)
        self._edges = dict(edges)
        self._in_edges: Dict[FunctionId, List[EdgeInfo]] = {}
        for info in self._edges.values():
            self._in_edges.setdefault(info.callee, []).append(info)

    # -- lookups used by Algorithm 1 -----------------------------------
    def numcc(self, function: FunctionId) -> int:
        """``numCC(function)``; unknown functions count one context."""
        return self._numcc.get(function, 1)

    def encoding(self, callsite: CallSiteId, callee: FunctionId) -> Optional[int]:
        """``En(e)`` of edge ``<callsite, callee>``; None if unencoded."""
        info = self._edges.get((callsite, callee))
        if info is None:
            return None
        return info.encoding

    def find_edge(
        self, callsite: CallSiteId, callee: FunctionId
    ) -> Optional[EdgeInfo]:
        """``getEdge(cs', ifun)`` of Algorithm 1."""
        return self._edges.get((callsite, callee))

    def in_edges(self, function: FunctionId) -> List[EdgeInfo]:
        """All recorded in-edges of ``function`` (encoded or not)."""
        return self._in_edges.get(function, [])

    def encoded_in_edges(self, function: FunctionId) -> List[EdgeInfo]:
        """In-edges of ``function`` that carry an encoding."""
        return [e for e in self.in_edges(function) if e.encoding is not None]

    def edges(self) -> Iterator[EdgeInfo]:
        return iter(self._edges.values())

    @property
    def num_nodes(self) -> int:
        return len(self._numcc)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_encoded_edges(self) -> int:
        return sum(1 for e in self._edges.values() if e.encoding is not None)

    @property
    def overflowed(self) -> bool:
        return self.overflow_bits is not None

    def __repr__(self) -> str:
        return "EncodingDictionary(ts=%d, nodes=%d, edges=%d, maxID=%d)" % (
            self.timestamp,
            self.num_nodes,
            self.num_edges,
            self.max_id,
        )


class DictionaryStore:
    """All dictionaries produced so far, indexed by ``gTimeStamp``.

    The engine appends a new dictionary after every re-encoding; decoders
    fetch by the timestamp recorded in each sample.
    """

    def __init__(self) -> None:
        self._by_timestamp: Dict[int, EncodingDictionary] = {}
        self._latest: Optional[EncodingDictionary] = None

    def add(self, dictionary: EncodingDictionary) -> None:
        self._by_timestamp[dictionary.timestamp] = dictionary
        if self._latest is None or dictionary.timestamp >= self._latest.timestamp:
            self._latest = dictionary

    def get(self, timestamp: int) -> EncodingDictionary:
        try:
            return self._by_timestamp[timestamp]
        except KeyError:
            raise StaleDictionaryError(
                "no decoding dictionary for timestamp %d" % timestamp,
                reason="stale-dictionary",
                gts=timestamp,
                available=sorted(self._by_timestamp),
            ) from None

    @property
    def latest(self) -> EncodingDictionary:
        if self._latest is None:
            raise StaleDictionaryError(
                "no dictionary has been produced yet",
                reason="stale-dictionary",
            )
        return self._latest

    def prune(self, before: int) -> int:
        """Drop dictionaries older than ``before``; returns the count.

        Deployed tools decode (or persist) collected contexts
        continuously; once every sample tagged with an old ``gTimeStamp``
        has been handled, its dictionary is dead weight.  The latest
        dictionary is never pruned.
        """
        latest_ts = self._latest.timestamp if self._latest else None
        doomed = [
            ts
            for ts in self._by_timestamp
            if ts < before and ts != latest_ts
        ]
        for ts in doomed:
            del self._by_timestamp[ts]
        return len(doomed)

    def discard_newer(self, timestamp: int) -> int:
        """Drop dictionaries newer than ``timestamp`` (re-encoding rollback).

        Returns the number removed and re-derives the latest pointer, so
        an aborted pass leaves the store exactly as it found it.
        """
        doomed = [ts for ts in self._by_timestamp if ts > timestamp]
        for ts in doomed:
            del self._by_timestamp[ts]
        if doomed:
            self._latest = None
            for dictionary in self._by_timestamp.values():
                if (
                    self._latest is None
                    or dictionary.timestamp >= self._latest.timestamp
                ):
                    self._latest = dictionary
        return len(doomed)

    def timestamps(self) -> List[int]:
        return sorted(self._by_timestamp)

    def __len__(self) -> int:
        return len(self._by_timestamp)

    def __contains__(self, timestamp: int) -> bool:
        return timestamp in self._by_timestamp
