"""The ccStack — per-thread storage for sub-path encoding contexts.

Whenever a thread is about to traverse an edge that carries no static
encoding (a newly discovered edge, a recursive back edge, an indirect call
with an unknown target, a PLT call before binding), the current encoding
context ``<id, callsite, target>`` is pushed here and the id is set to
``maxID + 1`` (Section 3, Figure 2(b)).

Highly repetitive recursion is compressed: when the entry being pushed is
identical to the top entry, a repetition counter is bumped instead
(Section 3.3, Figure 5(e)).  The stack records operation statistics used
both by the cost model (Figure 8) and by the adaptive policy's
"ccStack is frequently accessed" trigger (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .context import CcStackEntry
from .errors import TraceError
from .events import CallSiteId, FunctionId

#: Reserved callsite id marking the base entry of a spawned thread; the
#: decoder stops at this sentinel and stitches the parent context.
CLONE_CALLSITE: CallSiteId = -1

#: Reserved callsite id marking a targeted-encoding boundary crossing:
#: the entry was pushed when control left the targeted subgraph
#: (departure) or came back into it (re-entry).  The decoder renders the
#: untracked span as a single ``<untracked>`` pseudo-frame.
UNTRACKED_CALLSITE: CallSiteId = -2

#: Pseudo function id standing for all code outside the targeted
#: subgraph — the ``<untracked>`` frame in decoded contexts and samples.
UNTRACKED_FUNCTION: FunctionId = -2


@dataclass(slots=True)
class _MutableEntry:
    """Stack-internal, mutable twin of :class:`CcStackEntry`.

    ``discovery`` marks entries saved for edges that merely await their
    first encoding (a transient state bounded by the re-encoding
    latency) as opposed to recursive back edges, whose entries are the
    steady-state ccStack content Figure 10 measures.
    """

    id: int
    callsite: CallSiteId
    target: FunctionId
    count: int = 0
    discovery: bool = False

    def freeze(self) -> CcStackEntry:
        return CcStackEntry(self.id, self.callsite, self.target, self.count)


@dataclass
class CcStackStats:
    """Operation counters reported per benchmark in Table 1."""

    pushes: int = 0
    pops: int = 0
    compressions: int = 0
    decompressions: int = 0
    max_depth: int = 0

    @property
    def operations(self) -> int:
        """Total ccStack accesses (the ``ccStack/s`` numerator)."""
        return self.pushes + self.pops + self.compressions + self.decompressions


class CcStack:
    """One thread's ccStack.

    ``compression_enabled`` reflects the adaptive policy: the paper turns
    recursion compression on when the collected contexts show highly
    repetitive ccStack content (Section 4); the ablation benchmark drives
    it directly.
    """

    def __init__(
        self,
        compression_enabled: bool = True,
        capacity: Optional[int] = None,
    ):
        self._entries: List[_MutableEntry] = []
        #: Logical depth (including compressed repetitions), maintained
        #: incrementally so the per-push ``max_depth`` update is O(1)
        #: instead of a full-stack sum.
        self._depth = 0
        self.compression_enabled = compression_enabled
        #: Section 5.3: the ccStack is allocated lazily per thread and its
        #: bottom page is protected to detect overflow.  ``capacity``
        #: models the protected bound; ``None`` means unbounded.
        self.capacity = capacity
        self.stats = CcStackStats()

    # ------------------------------------------------------------------
    def push(
        self,
        id_value: int,
        callsite: CallSiteId,
        target: FunctionId,
        allow_compress: bool = False,
        discovery: bool = False,
    ) -> bool:
        """Save an encoding context before an unencoded call.

        With ``allow_compress`` (recursive back edges whose instrumentation
        was upgraded per Figure 5(e)) an entry identical to the current top
        only bumps the top's repetition counter.  Returns ``True`` when the
        push was compressed.
        """
        if (
            allow_compress
            and self.compression_enabled
            and self._entries
            and self._entries[-1].id == id_value
            and self._entries[-1].callsite == callsite
            and self._entries[-1].target == target
        ):
            self._entries[-1].count += 1
            self.stats.compressions += 1
            self._depth += 1
            if self._depth > self.stats.max_depth:
                self.stats.max_depth = self._depth
            return True
        if self.capacity is not None and len(self._entries) >= self.capacity:
            raise TraceError(
                "ccStack overflow: %d entries (capacity %d) — the paper's "
                "guard page would trap here" % (len(self._entries), self.capacity)
            )
        self._entries.append(
            _MutableEntry(id_value, callsite, target, discovery=discovery)
        )
        self.stats.pushes += 1
        self._depth += 1
        if self._depth > self.stats.max_depth:
            self.stats.max_depth = self._depth
        return False

    def pop(self) -> int:
        """Undo the most recent (uncompressed) push; returns the saved id."""
        if not self._entries:
            raise TraceError("pop from empty ccStack")
        top = self._entries[-1]
        self._depth -= 1
        if top.count > 0:
            # A compressed repetition ends: restore the id and drop one
            # repetition (the ``ccStack.top().count--`` of Figure 5(e)).
            top.count -= 1
            self.stats.decompressions += 1
            return top.id
        self._entries.pop()
        self.stats.pops += 1
        return top.id

    def top(self) -> Optional[CcStackEntry]:
        if not self._entries:
            return None
        return self._entries[-1].freeze()

    def top_matches(
        self, id_value: int, callsite: CallSiteId, target: FunctionId
    ) -> bool:
        """Does the top entry equal ``<id, callsite, target>``?

        Allocation-free variant of ``top() == CcStackEntry(...)`` for the
        engine's hot compressed-recursion check.
        """
        if not self._entries:
            return False
        top = self._entries[-1]
        return (
            top.id == id_value
            and top.callsite == callsite
            and top.target == target
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of physical entries (compressed runs count once)."""
        return len(self._entries)

    def depth(self) -> int:
        """Logical depth including compressed repetitions."""
        return self._depth

    def steady_depth(self) -> int:
        """Logical depth excluding transient edge-discovery entries."""
        return sum(1 + e.count for e in self._entries if not e.discovery)

    def snapshot(self) -> Tuple[CcStackEntry, ...]:
        """Frozen bottom-to-top copy stored into a collected sample."""
        return tuple(e.freeze() for e in self._entries)

    def saved_state(self) -> Tuple[int, int]:
        """(physical length, top count) — enough to restore across a call.

        Within one call's dynamic extent the stack never shrinks below its
        entry depth and only the entry that was on top may see its counter
        change, so this pair restores the stack exactly.  Used by the
        engine for tail-call (TcStack) restoration and re-encoding.
        """
        top_count = self._entries[-1].count if self._entries else 0
        return (len(self._entries), top_count)

    def restore(self, state: Tuple[int, int]) -> None:
        """Truncate back to a :meth:`saved_state` checkpoint."""
        length, top_count = state
        if length > len(self._entries):
            raise TraceError("cannot restore ccStack to a deeper state")
        del self._entries[length:]
        if self._entries and length > 0:
            self._entries[-1].count = top_count
        self._depth = sum(1 + e.count for e in self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._depth = 0

    def replace(self, entries: List[CcStackEntry]) -> None:
        """Overwrite content (used by re-encoding regeneration)."""
        self._entries = [
            _MutableEntry(e.id, e.callsite, e.target, e.count) for e in entries
        ]
        self._depth = sum(1 + e.count for e in self._entries)

    def __repr__(self) -> str:
        return "CcStack(%s)" % (
            ", ".join(
                "<%d,%d,%d,%d>" % (e.id, e.callsite, e.target, e.count)
                for e in self._entries
            )
        )
