"""Indirect-call dispatch strategies (Section 3.2, Figures 3 and 4).

After re-encoding, the targets identified so far for an indirect call
site are encoded separately and the site is patched with one of two
instrumentation shapes:

* **Inline cache** (Figure 3(d)) — a chain of ``if (target == T_k)``
  comparisons, one per identified target, each adding that edge's
  encoding.  Cheap for a handful of targets; the cost of a dispatch is
  the position of the dynamic target in the chain.
* **Hash table** (Figure 4) — when the number of identified targets
  exceeds a threshold, target addresses and codings are stored in a hash
  table; a dispatch costs one hash plus one comparison regardless of the
  number of targets.  400.perlbench, 445.gobmk and x264 are the paper's
  motivating cases.

A dynamic target that is not in the patched set misses: the context is
saved on the ccStack and the runtime handler records the new edge.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .events import CallSiteId, FunctionId

#: Paper: "if the number of identified targets exceeds a threshold" —
#: the threshold is not published; 4 keeps inline chains short, and the
#: ablation benchmark sweeps it.
DEFAULT_HASH_THRESHOLD = 4


class DispatchStrategy(enum.Enum):
    """How an indirect call site tests its dynamic target."""

    INLINE_CACHE = "inline-cache"
    HASH_TABLE = "hash-table"


@dataclass
class DispatchResult:
    """Outcome of one indirect dispatch, consumed by the cost model."""

    hit: bool
    comparisons: int
    hashed: bool


@dataclass
class IndirectCallSite:
    """Per-site dispatch state, rebuilt at every re-encoding.

    ``order`` lists the targets in patch order — discovery order until the
    adaptive pass reorders by frequency so hot targets sit early in the
    inline chain.
    """

    callsite: CallSiteId
    strategy: DispatchStrategy = DispatchStrategy.INLINE_CACHE
    order: List[FunctionId] = field(default_factory=list)
    _positions: Dict[FunctionId, int] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    total_comparisons: int = 0
    #: Inline-cache → hash-table strategy switches over the site's life.
    promotions: int = 0

    def patch(
        self,
        targets: List[FunctionId],
        hash_threshold: int = DEFAULT_HASH_THRESHOLD,
    ) -> bool:
        """Install the target set, choosing the strategy by its size.

        Returns ``True`` when the patch *promoted* the site from the
        inline cache to the hash table (the Figure 4 upgrade).
        """
        previous = self.strategy
        self.order = list(targets)
        self._positions = {t: i for i, t in enumerate(self.order)}
        if len(self.order) > hash_threshold:
            self.strategy = DispatchStrategy.HASH_TABLE
        else:
            self.strategy = DispatchStrategy.INLINE_CACHE
        promoted = (
            previous is DispatchStrategy.INLINE_CACHE
            and self.strategy is DispatchStrategy.HASH_TABLE
        )
        if promoted:
            self.promotions += 1
        return promoted

    def dispatch(self, target: FunctionId) -> DispatchResult:
        """Test ``target`` against the patched set and record the cost."""
        if self.strategy is DispatchStrategy.HASH_TABLE:
            # One hash, one comparison; open addressing conflicts are
            # folded into the miss path like the paper's Figure 4.
            hit = target in self._positions
            result = DispatchResult(hit=hit, comparisons=1, hashed=True)
        else:
            position = self._positions.get(target)
            if position is None:
                result = DispatchResult(
                    hit=False, comparisons=len(self.order), hashed=False
                )
            else:
                result = DispatchResult(
                    hit=True, comparisons=position + 1, hashed=False
                )
        if result.hit:
            self.hits += 1
        else:
            self.misses += 1
        self.total_comparisons += result.comparisons
        return result

    @property
    def num_targets(self) -> int:
        return len(self.order)


class IndirectDispatchTable:
    """All indirect call sites of a running program."""

    def __init__(self, hash_threshold: int = DEFAULT_HASH_THRESHOLD):
        self.hash_threshold = hash_threshold
        self._sites: Dict[CallSiteId, IndirectCallSite] = {}

    def site(self, callsite: CallSiteId) -> IndirectCallSite:
        entry = self._sites.get(callsite)
        if entry is None:
            entry = IndirectCallSite(callsite)
            self._sites[callsite] = entry
        return entry

    def get(self, callsite: CallSiteId) -> Optional[IndirectCallSite]:
        return self._sites.get(callsite)

    def sites(self) -> List[IndirectCallSite]:
        return list(self._sites.values())

    def __len__(self) -> int:
        return len(self._sites)

    # -- aggregate counters (telemetry pull surface) -------------------
    # list() on every aggregate below: scrape-time readers must survive
    # the engine registering a new indirect site mid-iteration.
    def total_hits(self) -> int:
        return sum(site.hits for site in list(self._sites.values()))

    def total_misses(self) -> int:
        return sum(site.misses for site in list(self._sites.values()))

    def total_comparisons(self) -> int:
        return sum(
            site.total_comparisons for site in list(self._sites.values())
        )

    def total_promotions(self) -> int:
        """Inline-cache → hash-table promotions across all sites."""
        return sum(site.promotions for site in list(self._sites.values()))

    def num_hash_sites(self) -> int:
        return sum(
            1
            for site in list(self._sites.values())
            if site.strategy is DispatchStrategy.HASH_TABLE
        )

    # -- transactional re-encoding support -----------------------------
    def snapshot_patches(self) -> Dict[CallSiteId, tuple]:
        """Capture every site's patch state (not its dispatch counters)."""
        return {
            callsite: (
                site.strategy,
                list(site.order),
                dict(site._positions),
                site.promotions,
            )
            for callsite, site in self._sites.items()
        }

    def restore_patches(self, snapshot: Dict[CallSiteId, tuple]) -> None:
        """Restore patch state; drops sites created after the snapshot.

        Dispatch counters (hits/misses/comparisons) are cumulative
        traffic statistics and are deliberately left untouched.
        """
        for callsite in list(self._sites):
            if callsite not in snapshot:
                del self._sites[callsite]
        for callsite, (strategy, order, positions, promotions) in snapshot.items():
            site = self._sites.get(callsite)
            if site is None:
                site = IndirectCallSite(callsite)
                self._sites[callsite] = site
            site.strategy = strategy
            site.order = list(order)
            site._positions = dict(positions)
            site.promotions = promotions
