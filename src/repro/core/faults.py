"""Fault quarantine — the engine's survival layer for malformed input.

The paper's deployment story records contexts inside long-running
production processes; the event stream feeding the engine there comes
from real instrumentation and real log transport, both of which drop,
duplicate and reorder records under load.  In ``strict`` fault policy
(the default, and the paper's semantics) any inconsistency raises a
:class:`~repro.core.errors.TraceError` and the analysis dies with the
process.  In ``recover`` policy the engine *quarantines* the offending
event instead: the fault is appended to a bounded :class:`FaultLog`
with full runtime context, the affected thread's shadow state is
resynchronised against its own stack walk (the paper's ccStack escape
hatch), and encoding continues.

The decoding side has the matching degraded path:
:meth:`~repro.core.decoder.Decoder.decode_best_effort` returns a
:class:`PartialDecode` — the longest decodable leaf-most suffix plus a
structured :class:`DecodeFault` — instead of raising.

What ``recover`` guarantees and gives up is spelled out in
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import enum
import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from .context import CallingContext, ContextStep

logger = logging.getLogger(__name__)

#: A fault-log subscriber: called synchronously with each new record.
FaultListener = Callable[["FaultRecord"], None]


class FaultPolicy(enum.Enum):
    """How the engine reacts to malformed events.

    * ``STRICT`` — raise, as the unhardened engine always did.  The
      paper's semantics; nothing is hidden.
    * ``RECOVER`` — quarantine the event, resynchronise the thread, keep
      encoding.  Production semantics: the encoder must survive bad
      input and keep serving ids.
    """

    STRICT = "strict"
    RECOVER = "recover"


class FaultKind(enum.Enum):
    """Stable classification of everything the quarantine can catch."""

    #: A call event whose ``caller`` is not the thread's current function.
    CALLER_MISMATCH = "caller-mismatch"
    #: A return event with only the bottom frame live.
    RETURN_BOTTOM = "return-bottom"
    #: A tail call issued from the bottom frame.
    TAIL_BOTTOM = "tail-bottom"
    #: A thread-start event for a thread id that already exists.
    DUPLICATE_THREAD = "duplicate-thread"
    #: An event referencing a thread the engine does not know (including
    #: the thread-exit-then-sample race).
    UNKNOWN_THREAD = "unknown-thread"
    #: A thread-exit event arriving while frames are still live.
    THREAD_EXIT_LIVE_FRAMES = "thread-exit-live-frames"
    #: An event object of a type the engine does not understand.
    UNKNOWN_EVENT = "unknown-event"
    #: A re-encoding pass failed its commit gate and was rolled back.
    REENCODE_ABORTED = "reencode-aborted"
    #: Backstop for any other :class:`~repro.core.errors.DacceError`
    #: escaping a handler in recover mode.
    TRACE_ERROR = "trace-error"


class RecoveryAction(enum.Enum):
    """What the quarantine did with the faulting event."""

    #: The event was discarded; thread state was already consistent.
    DROPPED = "dropped"
    #: Frames above the event's caller were unwound (missed returns),
    #: the thread was resynchronised, and the event was then applied.
    UNWOUND = "unwound"
    #: The thread's encoding state was rebuilt from its shadow stack.
    RESYNCED = "resynced"
    #: A failed re-encoding pass was rolled back to its pre-pass state.
    ROLLED_BACK = "rolled-back"


@dataclass(frozen=True)
class FaultRecord:
    """One quarantined event, with enough context to debug it offline."""

    kind: FaultKind
    message: str
    thread: Optional[int] = None
    gts: Optional[int] = None
    #: Engine position (``stats.calls``) when the fault was caught —
    #: together with ``thread`` this bounds the quarantined window.
    at_call: int = 0
    event: Optional[str] = None
    recovery: RecoveryAction = RecoveryAction.DROPPED
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind.value,
            "message": self.message,
            "thread": self.thread,
            "gts": self.gts,
            "at_call": self.at_call,
            "recovery": self.recovery.value,
        }
        if self.event is not None:
            data["event"] = self.event
        if self.detail:
            data["detail"] = dict(self.detail)
        return data


class FaultLog:
    """Bounded record of quarantined faults.

    Keeps the most recent ``capacity`` records (older ones are evicted
    and counted in ``dropped``) plus per-kind totals that never reset —
    the totals feed the ``repro.obs`` metrics registry, so eviction
    never under-reports.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._records: Deque[FaultRecord] = deque(maxlen=capacity)
        self._counts: Dict[FaultKind, int] = {}
        self._listeners: List[FaultListener] = []
        self.total = 0
        self.dropped = 0

    def subscribe(self, listener: FaultListener) -> FaultListener:
        """Call ``listener`` with every record from now on (e.g. to emit
        ``fault`` event frames).  Listeners see each record exactly once,
        even after the bounded ring evicts it; exceptions are logged and
        swallowed so a broken listener cannot break quarantine."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: FaultListener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def record(self, record: FaultRecord) -> None:
        if len(self._records) == self.capacity:
            self.dropped += 1
        self._records.append(record)
        self.total += 1
        self._counts[record.kind] = self._counts.get(record.kind, 0) + 1
        for listener in self._listeners:
            try:
                listener(record)
            except Exception:
                logger.exception("fault-log listener %r failed", listener)

    def count(self, kind: FaultKind) -> int:
        return self._counts.get(kind, 0)

    def counts_by_kind(self) -> Dict[str, int]:
        # list() so scrape-time readers survive a concurrent quarantine
        # adding a first-of-its-kind fault mid-iteration.
        return {kind.value: count for kind, count in list(self._counts.items())}

    def kinds(self) -> Tuple[FaultKind, ...]:
        return tuple(self._counts)

    def records(self) -> List[FaultRecord]:
        return list(self._records)

    def to_list(self) -> List[Dict[str, Any]]:
        return [record.to_dict() for record in self._records]

    def quarantined_windows(self) -> List[Tuple[Optional[int], int]]:
        """(thread, at_call) pairs — where decode-vs-truth may diverge."""
        return [(r.thread, r.at_call) for r in self._records]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FaultRecord]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return self.total > 0

    def __repr__(self) -> str:
        return "FaultLog(total=%d, retained=%d, kinds=%s)" % (
            self.total,
            len(self._records),
            ",".join(sorted(k.value for k in self._counts)),
        )


# ----------------------------------------------------------------------
# degraded decoding
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecodeFault:
    """Structured reason a sample did not decode completely."""

    reason: str
    message: str
    timestamp: Optional[int] = None
    context_id: Optional[int] = None
    function: Optional[int] = None
    thread: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "reason": self.reason,
            "message": self.message,
            "timestamp": self.timestamp,
            "context_id": self.context_id,
            "function": self.function,
            "thread": self.thread,
        }


@dataclass(frozen=True)
class PartialDecode:
    """Best-effort decode result: a suffix of the true context.

    ``context`` holds the longest decodable *leaf-most* portion —
    decoding walks from the sample point toward the root, so whatever
    was recovered before the failure is exact; the missing part is
    root-ward.  ``complete`` is ``True`` when the full context decoded
    (then ``fault`` is ``None`` and ``context`` equals what
    :meth:`~repro.core.decoder.Decoder.decode` returns).
    """

    context: CallingContext
    complete: bool
    fault: Optional[DecodeFault] = None

    @property
    def steps(self) -> Tuple[ContextStep, ...]:
        return self.context.steps

    def __len__(self) -> int:
        return len(self.context)
