"""Ball–Larus / PCCE numbering over a call graph (Sections 2.1 and 3).

The encoder assigns:

* ``numCC(n)`` — the number of calling contexts of function ``n`` that are
  representable purely by an id (paths over *encoded* edges), computed in
  topological order as the sum of the callers' counts:
  ``numCC(n) = max(1, Σ numCC(p) over encoded in-edges <p, n, cs>)``.
  The ``max(1, ...)`` makes head-of-sub-path functions (``main``, indirect
  targets, back-edge targets, newly loaded library entries) occupy one
  context, so sub-path sums always stay below ``numCC`` along the path —
  the invariant that makes Algorithm 1's greedy interval decode exact.
* ``En(e)`` — per in-edge prefix sums in a chosen order.  The first edge
  in the order gets ``En = 0`` and therefore *no instrumentation*; the
  adaptive encoder orders by invocation frequency so the hottest edge is
  free (Section 4).

Back edges are never encoded.  ``maxID`` is ``max numCC - 1``; ids in
``[maxID+1, 2*maxID+1]`` are reserved at runtime to flag sub-paths whose
prefix lives on the ccStack.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .callgraph import CallEdge, CallGraph
from .dictionary import EdgeInfo, EncodingDictionary
from .errors import EncodingError
from .events import FunctionId

#: Orders the encoded in-edges of one node prior to prefix-sum assignment.
EdgeOrderPolicy = Callable[[List[CallEdge]], List[CallEdge]]


def insertion_order(edges: List[CallEdge]) -> List[CallEdge]:
    """Keep discovery order — the policy used before any re-encoding."""
    return list(edges)


def frequency_order(edges: List[CallEdge]) -> List[CallEdge]:
    """Hottest edge first, so it receives encoding 0 (Section 4).

    Ties break on discovery order (Python's sort is stable), which keeps
    re-encoding deterministic run to run.
    """
    return sorted(edges, key=lambda e: -e.invocations)


class Encoder:
    """Computes encodings for the non-back subset of a call graph.

    Parameters
    ----------
    order_policy:
        How to order each node's encoded in-edges; decides which edge gets
        the free ``En = 0`` slot.
    id_bits:
        Width of the runtime context identifier.  The paper uses 64-bit
        ids; encodings beyond the width are *flagged* (Table 1 reports
        "overflow" for PCCE on perlbench/gcc), not truncated — Python
        integers are exact.
    """

    def __init__(
        self,
        order_policy: EdgeOrderPolicy = insertion_order,
        id_bits: int = 64,
    ):
        self.order_policy = order_policy
        self.id_bits = id_bits

    def encode(self, graph: CallGraph, timestamp: int = 0) -> EncodingDictionary:
        """Produce the decoding dictionary for ``graph`` at ``timestamp``."""
        numcc: Dict[FunctionId, int] = {}
        encodings: Dict[CallEdge, int] = {}

        for function in graph.topological_order():
            in_edges = [e for e in graph.in_edges(function) if not e.is_back]
            ordered = self.order_policy(in_edges)
            if len(ordered) != len(in_edges):
                raise EncodingError("order policy dropped or duplicated edges")
            running = 0
            for edge in ordered:
                encodings[edge] = running
                running += numcc[edge.caller]
            numcc[function] = max(1, running)

        max_id = max(numcc.values(), default=1) - 1
        overflow_bits: Optional[int] = None
        # The runtime also needs maxID+1 .. 2*maxID+1 for sub-path marks,
        # so the width requirement is on 2*maxID+1.
        if 2 * max_id + 1 >= (1 << self.id_bits):
            overflow_bits = self.id_bits

        infos = {}
        for edge in graph.edges():
            infos[edge.key()] = EdgeInfo(
                caller=edge.caller,
                callee=edge.callee,
                callsite=edge.callsite,
                kind=edge.kind,
                is_back=edge.is_back,
                encoding=encodings.get(edge),
            )
        return EncodingDictionary(
            timestamp=timestamp,
            numcc=numcc,
            edges=infos,
            max_id=max_id,
            root=graph.root,
            overflow_bits=overflow_bits,
        )


def encode_graph(
    graph: CallGraph,
    timestamp: int = 0,
    order_policy: EdgeOrderPolicy = insertion_order,
    id_bits: int = 64,
) -> EncodingDictionary:
    """Convenience wrapper around :class:`Encoder`."""
    return Encoder(order_policy=order_policy, id_bits=id_bits).encode(
        graph, timestamp=timestamp
    )
