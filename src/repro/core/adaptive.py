"""Adaptive re-encoding policy (Section 4).

The paper initiates a re-encoding pass when any of three conditions is
detected at runtime:

1. the number of newly identified call edges reaches a threshold,
2. the frequently invoked call paths have changed — hot traffic is
   flowing through edges the current encoding does not cover,
3. the ccStack is frequently accessed.

:class:`AdaptivePolicy` evaluates those triggers over observation windows.
The re-encoding pass itself then (a) reclassifies back edges so that hot
edges stay encoded ("cold edges will not affect the encodings of hot
edges", Section 6.4 — the paper's 483.xalancbmk anecdote where maxID
*decreases* after a re-encoding comes from exactly this reclassification),
(b) orders each node's in-edges by invocation frequency so the hottest
gets encoding 0, and (c) enables ccStack compression on highly repetitive
recursive edges (Figure 5(e)).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallEdge, CallGraph
from .events import CallSiteId, FunctionId

EdgeKey = Tuple[CallSiteId, FunctionId]


@dataclass
class AdaptiveConfig:
    """Thresholds for the three re-encoding triggers.

    The paper does not publish its constants; these defaults make the
    trigger counts (``gTS`` in Table 1) land in the paper's observed range
    of roughly 2-110 re-encodings per benchmark.
    """

    #: Trigger 1 — re-encode when this many edges were discovered since
    #: the last pass.
    new_edge_threshold: int = 16
    #: Trigger 2 — re-encode when more than this fraction of window calls
    #: travelled edges that currently have no encoding (excluding back
    #: edges, which can never be encoded).
    hot_unencoded_fraction: float = 0.02
    #: Trigger 3 — re-encode when ccStack operations per call in the
    #: window exceed this rate.
    ccstack_rate_threshold: float = 0.25
    #: How many calls between trigger evaluations.
    check_interval: int = 512
    #: A back edge whose repetitive-push fraction exceeds this gets the
    #: compressing instrumentation of Figure 5(e) at the next re-encoding.
    compression_repetition_fraction: float = 0.5
    #: Minimum observations before compression is considered.
    compression_min_pushes: int = 16


@dataclass
class WindowStats:
    """What the engine observed since the last policy evaluation."""

    calls: int = 0
    unencoded_calls: int = 0
    ccstack_ops: int = 0
    new_edges: int = 0


@dataclass
class TriggerDecision:
    """Outcome of one policy evaluation, with the reasons that fired.

    Carries the evidence behind the decision (the observed window and
    the pending new-edge count) so telemetry can report *why* a
    re-encoding pass started, not just that it did.
    """

    reencode: bool
    reasons: List[str] = field(default_factory=list)
    window: Optional[WindowStats] = None
    pending_new_edges: int = 0

    def window_dict(self) -> Optional[Dict[str, int]]:
        """The window counters as plain data (for pass reports)."""
        if self.window is None:
            return None
        return {
            "calls": self.window.calls,
            "unencoded_calls": self.window.unencoded_calls,
            "ccstack_ops": self.window.ccstack_ops,
            "pending_new_edges": self.pending_new_edges,
        }


class AdaptivePolicy:
    """Evaluates the Section 4 triggers over engine-supplied windows."""

    def __init__(self, config: Optional[AdaptiveConfig] = None):
        self.config = config or AdaptiveConfig()
        #: (callsite, callee) -> [pushes, repetitive pushes] per back edge.
        self._recursion_pushes: Dict[EdgeKey, List[int]] = {}
        self._compressed_edges: Set[EdgeKey] = set()
        #: Telemetry: evaluations performed / evaluations that fired.
        self.evaluations = 0
        self.fired = 0

    # -- trigger evaluation --------------------------------------------
    def evaluate(self, window: WindowStats, pending_new_edges: int) -> TriggerDecision:
        """Check the three triggers against the latest window."""
        config = self.config
        self.evaluations += 1
        reasons: List[str] = []
        if pending_new_edges >= config.new_edge_threshold:
            reasons.append("new-edges")
        if window.calls > 0:
            unencoded_rate = window.unencoded_calls / window.calls
            if unencoded_rate > config.hot_unencoded_fraction:
                reasons.append("hot-paths-changed")
            ccstack_rate = window.ccstack_ops / window.calls
            if ccstack_rate > config.ccstack_rate_threshold:
                reasons.append("ccstack-traffic")
        if reasons:
            self.fired += 1
        return TriggerDecision(
            reencode=bool(reasons),
            reasons=reasons,
            window=window,
            pending_new_edges=pending_new_edges,
        )

    # -- recursion compression -----------------------------------------
    def observe_back_edge_push(self, key: EdgeKey, repetitive: bool) -> None:
        """Record one back-edge ccStack push and whether it repeated the top."""
        counters = self._recursion_pushes.setdefault(key, [0, 0])
        counters[0] += 1
        if repetitive:
            counters[1] += 1

    def refresh_compressed_edges(self) -> Set[EdgeKey]:
        """Recompute which back edges deserve compressing instrumentation.

        Called during the re-encoding pass ("analyze the contents on
        ccStack of collected contexts; if they are highly repetitive,
        adjust the encoding algorithm on recursive calls").
        """
        config = self.config
        for key, (pushes, repetitive) in self._recursion_pushes.items():
            if (
                pushes >= config.compression_min_pushes
                and repetitive / pushes >= config.compression_repetition_fraction
            ):
                self._compressed_edges.add(key)
        return set(self._compressed_edges)

    def is_compressed(self, key: EdgeKey) -> bool:
        return key in self._compressed_edges

    @property
    def compressed_edges(self) -> Set[EdgeKey]:
        return set(self._compressed_edges)

    def restore_compressed(self, edges: Set[EdgeKey]) -> None:
        """Reset the compressed-edge set (re-encoding rollback)."""
        self._compressed_edges = set(edges)


# ----------------------------------------------------------------------
# back-edge reclassification
# ----------------------------------------------------------------------
def strongly_connected_components(graph: CallGraph) -> List[List[FunctionId]]:
    """Tarjan's SCC algorithm over *all* edges of the call graph.

    Iterative formulation — recursion depth would otherwise be bounded by
    the call-graph diameter, which reaches thousands of nodes for
    xalancbmk-sized graphs.
    """
    index: Dict[FunctionId, int] = {}
    lowlink: Dict[FunctionId, int] = {}
    on_stack: Set[FunctionId] = set()
    stack: List[FunctionId] = []
    components: List[List[FunctionId]] = []
    counter = [0]

    for start in graph.functions():
        if start in index:
            continue
        work: List[Tuple[FunctionId, int]] = [(start, 0)]
        while work:
            node, edge_pos = work.pop()
            if edge_pos == 0:
                index[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            out_edges = graph.out_edges(node)
            advanced = False
            while edge_pos < len(out_edges):
                successor = out_edges[edge_pos].callee
                edge_pos += 1
                if successor not in index:
                    work.append((node, edge_pos))
                    work.append((successor, 0))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index[successor])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def classify_back_edges(graph: CallGraph, priority: str = "frequency", seed: int = 0) -> int:
    """Re-pick the back-edge set for the whole graph.

    Edges crossing strongly connected components can never be on a cycle
    and are always non-back.  Within each non-trivial SCC the edges are
    inserted one by one into an acyclic subset; an edge that would close
    a cycle becomes a back edge.  Self edges are always back.

    ``priority`` chooses the insertion order and therefore *which* edge
    of each cycle gets trapped:

    * ``"frequency"`` — hottest first: hot edges stay encodable.  This is
      DACCE's adaptive re-encoding behaviour ("cold edges will not
      affect the encodings of hot edges", Section 6.4).
    * ``"random"`` — a seeded shuffle, modelling the frequency-blind
      classification of static tools: in a cycle formed by a
      never-executed edge and hot edges, the *hot* edge is trapped with
      uniform probability — the root cause of PCCE's extra ccStack
      traffic on 400.perlbench / 483.xalancbmk.

    Returns the number of edges whose classification changed.  Rebuilding
    from scratch lets a formerly encoded edge *become* the back edge of a
    newly closed cycle, which is how the paper's maximum id can decrease
    across re-encodings (the Figure 9 xalancbmk anecdote).
    """
    component_of: Dict[FunctionId, int] = {}
    components = strongly_connected_components(graph)
    for number, members in enumerate(components):
        for member in members:
            component_of[member] = number

    nontrivial: Dict[int, List[CallEdge]] = {}
    changed = 0
    for edge in graph.edges():
        if edge.caller == edge.callee:
            if not edge.is_back:
                changed += 1
            edge.is_back = True
            continue
        if component_of[edge.caller] != component_of[edge.callee]:
            if edge.is_back:
                changed += 1
            edge.is_back = False
            continue
        nontrivial.setdefault(component_of[edge.caller], []).append(edge)

    rng = random.Random(seed)
    for edges in nontrivial.values():
        changed += _classify_within_component(edges, priority, rng)
    if changed:
        graph.generation += 1
    return changed


def _classify_within_component(
    edges: List[CallEdge], priority: str, rng: random.Random
) -> int:
    """Greedy acyclic subset selection inside one SCC."""
    if priority == "random":
        ordered = list(edges)
        rng.shuffle(ordered)
    else:
        ordered = sorted(edges, key=lambda e: (-e.invocations, e.callsite))
    adjacency: Dict[FunctionId, List[FunctionId]] = {}
    changed = 0
    for edge in ordered:
        if _reaches(adjacency, edge.callee, edge.caller):
            if not edge.is_back:
                changed += 1
            edge.is_back = True
        else:
            if edge.is_back:
                changed += 1
            edge.is_back = False
            adjacency.setdefault(edge.caller, []).append(edge.callee)
    return changed


def _reaches(
    adjacency: Dict[FunctionId, List[FunctionId]],
    source: FunctionId,
    target: FunctionId,
) -> bool:
    if source == target:
        return True
    seen = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for successor in adjacency.get(node, ()):
            if successor == target:
                return True
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False
