"""DACCE core: dynamic call graph, encoder, runtime engine, decoder."""

from .adaptive import AdaptiveConfig, AdaptivePolicy, classify_back_edges
from .callgraph import CallEdge, CallGraph, CallNode, dfs_classify_back_edges
from .ccstack import CLONE_CALLSITE, CcStack
from .context import CallingContext, CcStackEntry, CollectedSample, ContextStep
from .decoder import DecodeCache, Decoder, decode_sample
from .dictionary import DictionaryStore, EdgeInfo, EncodingDictionary
from .encoder import Encoder, encode_graph, frequency_order, insertion_order
from .fastpath import FastPathStats, FastPathTable, compile_table
from .engine import (
    CompressionMode,
    DacceConfig,
    DacceEngine,
    DacceStats,
    ReencodeRecord,
    SampleCallback,
    SampleHook,
)
from .errors import (
    CallGraphError,
    DacceError,
    DecodingError,
    EncodingError,
    EncodingOverflowError,
    ProgramModelError,
    ReencodeError,
    StaleDictionaryError,
    TraceError,
)
from .faults import (
    DecodeFault,
    FaultKind,
    FaultLog,
    FaultPolicy,
    FaultRecord,
    PartialDecode,
    RecoveryAction,
)
from .events import (
    CallEvent,
    CallKind,
    Event,
    LibraryLoadEvent,
    ReturnEvent,
    SampleEvent,
    ThreadExitEvent,
    ThreadStartEvent,
)
from .invariants import assert_sound, check_dictionary
from .indirect import (
    DEFAULT_HASH_THRESHOLD,
    DispatchStrategy,
    IndirectCallSite,
    IndirectDispatchTable,
)
from .parallel import decode_log_parallel
from .samplelog import SampleLog, SampleLogError, SampleLogFault
from .serialize import (
    SerializationError,
    decode_log,
    export_decoding_state,
    load_decoder,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptivePolicy",
    "CLONE_CALLSITE",
    "CallEdge",
    "CallEvent",
    "CallGraph",
    "CallGraphError",
    "CallKind",
    "CallNode",
    "CallingContext",
    "CcStack",
    "CcStackEntry",
    "CollectedSample",
    "CompressionMode",
    "ContextStep",
    "DEFAULT_HASH_THRESHOLD",
    "DacceConfig",
    "DacceEngine",
    "DacceError",
    "DacceStats",
    "DecodeCache",
    "DecodeFault",
    "Decoder",
    "DecodingError",
    "DictionaryStore",
    "DispatchStrategy",
    "EdgeInfo",
    "Encoder",
    "EncodingDictionary",
    "EncodingError",
    "EncodingOverflowError",
    "Event",
    "FastPathStats",
    "FastPathTable",
    "FaultKind",
    "FaultLog",
    "FaultPolicy",
    "FaultRecord",
    "IndirectCallSite",
    "IndirectDispatchTable",
    "LibraryLoadEvent",
    "PartialDecode",
    "ProgramModelError",
    "RecoveryAction",
    "ReencodeError",
    "ReencodeRecord",
    "SampleCallback",
    "SampleHook",
    "ReturnEvent",
    "SampleEvent",
    "SampleLog",
    "SampleLogError",
    "SampleLogFault",
    "SerializationError",
    "export_decoding_state",
    "load_decoder",
    "StaleDictionaryError",
    "ThreadExitEvent",
    "ThreadStartEvent",
    "TraceError",
    "assert_sound",
    "check_dictionary",
    "classify_back_edges",
    "compile_table",
    "decode_log",
    "decode_log_parallel",
    "decode_sample",
    "dfs_classify_back_edges",
    "encode_graph",
    "frequency_order",
    "insertion_order",
]
