"""Compact binary serialisation of collected context samples.

The paper's motivating tools log a calling context with *every* recorded
event (memory accesses in race detectors, entries in replay logs) — the
whole point of context encoding is that the logged record is a few words
instead of a stack walk.  This module provides that log format:

* varint (LEB128) encoding of ids, call sites and counts,
* delta-encoded timestamps (gTimeStamp changes rarely),
* ccStack entries serialised inline (most samples have none).

``SampleLog`` is an append-only in-memory log with ``to_bytes`` /
``from_bytes`` round-tripping; the benchmark harness uses it to quantify
bytes-per-context against the naive full-path representation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from .context import CcStackEntry, CollectedSample
from .errors import DacceError


class SampleLogError(DacceError):
    """Corrupt or truncated sample-log data."""


# ----------------------------------------------------------------------
# varint primitives
# ----------------------------------------------------------------------
def _zigzag(value: int) -> int:
    # Arbitrary-precision zig-zag (no fixed word size to shift against).
    return -2 * value - 1 if value < 0 else 2 * value


def _unzigzag(value: int) -> int:
    return -((value + 1) // 2) if value & 1 else value // 2


def write_varint(out: bytearray, value: int) -> None:
    """LEB128 of a zig-zagged (possibly negative, unbounded) integer."""
    value = _zigzag(value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Returns (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SampleLogError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return _unzigzag(result), offset
        shift += 7
        if shift > 640:
            raise SampleLogError("varint too long")


# ----------------------------------------------------------------------
# sample encoding
# ----------------------------------------------------------------------
def encode_sample(
    sample: CollectedSample, out: bytearray, previous_timestamp: int = 0
) -> None:
    """Append one sample to ``out`` (timestamp delta-encoded)."""
    write_varint(out, sample.timestamp - previous_timestamp)
    write_varint(out, sample.thread)
    write_varint(out, sample.function)
    write_varint(out, sample.context_id)
    write_varint(out, len(sample.ccstack))
    for entry in sample.ccstack:
        write_varint(out, entry.id)
        write_varint(out, entry.callsite)
        write_varint(out, entry.target)
        write_varint(out, entry.count)


def decode_sample_bytes(
    data: bytes, offset: int, previous_timestamp: int = 0
) -> Tuple[CollectedSample, int]:
    """Read one sample; returns (sample, new offset)."""
    delta, offset = read_varint(data, offset)
    thread, offset = read_varint(data, offset)
    function, offset = read_varint(data, offset)
    context_id, offset = read_varint(data, offset)
    depth, offset = read_varint(data, offset)
    if depth < 0 or depth > 1_000_000:
        raise SampleLogError("implausible ccStack length %d" % depth)
    entries: List[CcStackEntry] = []
    for _ in range(depth):
        entry_id, offset = read_varint(data, offset)
        callsite, offset = read_varint(data, offset)
        target, offset = read_varint(data, offset)
        count, offset = read_varint(data, offset)
        entries.append(CcStackEntry(entry_id, callsite, target, count))
    sample = CollectedSample(
        timestamp=previous_timestamp + delta,
        context_id=context_id,
        function=function,
        ccstack=tuple(entries),
        thread=thread,
    )
    return sample, offset


_MAGIC = b"DCL1"


class SampleLog:
    """Append-only compact log of collected samples."""

    def __init__(self) -> None:
        self._buffer = bytearray(_MAGIC)
        self._count = 0
        self._last_timestamp = 0

    def append(self, sample: CollectedSample) -> None:
        encode_sample(sample, self._buffer, self._last_timestamp)
        self._last_timestamp = sample.timestamp
        self._count += 1

    def extend(self, samples: Iterable[CollectedSample]) -> None:
        for sample in samples:
            self.append(sample)

    def __len__(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return len(self._buffer)

    @property
    def bytes_per_sample(self) -> float:
        if not self._count:
            return 0.0
        return (len(self._buffer) - len(_MAGIC)) / self._count

    def to_bytes(self) -> bytes:
        return bytes(self._buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SampleLog":
        if data[: len(_MAGIC)] != _MAGIC:
            raise SampleLogError("bad magic")
        log = cls()
        log._buffer = bytearray(data)
        offset = len(_MAGIC)
        timestamp = 0
        count = 0
        while offset < len(data):
            sample, offset = decode_sample_bytes(data, offset, timestamp)
            timestamp = sample.timestamp
            count += 1
        log._count = count
        log._last_timestamp = timestamp
        return log

    def __iter__(self) -> Iterator[CollectedSample]:
        data = bytes(self._buffer)
        offset = len(_MAGIC)
        timestamp = 0
        while offset < len(data):
            sample, offset = decode_sample_bytes(data, offset, timestamp)
            timestamp = sample.timestamp
            yield sample
