"""Compact binary serialisation of collected context samples.

The paper's motivating tools log a calling context with *every* recorded
event (memory accesses in race detectors, entries in replay logs) — the
whole point of context encoding is that the logged record is a few words
instead of a stack walk.  This module provides that log format:

* varint (LEB128) encoding of ids, call sites and counts,
* ccStack entries serialised inline (most samples have none),
* per-record framing (length prefix + one CRC byte) so a corrupt or
  truncated record can be *skipped and reported* instead of poisoning
  everything after it (format ``DCL2``; the legacy delta-timestamped
  ``DCL1`` format is still read).

``SampleLog`` is an append-only in-memory log with ``to_bytes`` /
``from_bytes`` round-tripping; the benchmark harness uses it to quantify
bytes-per-context against the naive full-path representation.  Passing
``best_effort=True`` to :meth:`SampleLog.from_bytes` recovers every
intact record from damaged data and reports the rest as structured
:class:`SampleLogFault` entries on ``log.faults``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Tuple

from .context import CcStackEntry, CollectedSample
from .errors import DacceError


class SampleLogError(DacceError):
    """Corrupt or truncated sample-log data.

    Structured attributes: ``reason`` (stable slug such as
    ``bad-magic`` / ``truncated`` / ``checksum-mismatch`` /
    ``corrupt-record``) and ``offset`` (byte position of the damage).
    """


@dataclass(frozen=True)
class SampleLogFault:
    """One damaged region skipped during a best-effort load."""

    offset: int
    reason: str
    message: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "offset": self.offset,
            "reason": self.reason,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# varint primitives
# ----------------------------------------------------------------------
def _zigzag(value: int) -> int:
    # Arbitrary-precision zig-zag (no fixed word size to shift against).
    return -2 * value - 1 if value < 0 else 2 * value


def _unzigzag(value: int) -> int:
    return -((value + 1) // 2) if value & 1 else value // 2


def write_varint(out: bytearray, value: int) -> None:
    """LEB128 of a zig-zagged (possibly negative, unbounded) integer."""
    value = _zigzag(value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    """Returns (value, new offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SampleLogError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return _unzigzag(result), offset
        shift += 7
        if shift > 640:
            raise SampleLogError("varint too long")


# ----------------------------------------------------------------------
# sample encoding
# ----------------------------------------------------------------------
def encode_sample(
    sample: CollectedSample, out: bytearray, previous_timestamp: int = 0
) -> None:
    """Append one sample to ``out`` (timestamp delta-encoded)."""
    write_varint(out, sample.timestamp - previous_timestamp)
    write_varint(out, sample.thread)
    write_varint(out, sample.function)
    write_varint(out, sample.context_id)
    write_varint(out, len(sample.ccstack))
    for entry in sample.ccstack:
        write_varint(out, entry.id)
        write_varint(out, entry.callsite)
        write_varint(out, entry.target)
        write_varint(out, entry.count)


def decode_sample_bytes(
    data: bytes, offset: int, previous_timestamp: int = 0
) -> Tuple[CollectedSample, int]:
    """Read one sample; returns (sample, new offset)."""
    delta, offset = read_varint(data, offset)
    thread, offset = read_varint(data, offset)
    function, offset = read_varint(data, offset)
    context_id, offset = read_varint(data, offset)
    depth, offset = read_varint(data, offset)
    if depth < 0 or depth > 1_000_000:
        raise SampleLogError("implausible ccStack length %d" % depth)
    entries: List[CcStackEntry] = []
    for _ in range(depth):
        entry_id, offset = read_varint(data, offset)
        callsite, offset = read_varint(data, offset)
        target, offset = read_varint(data, offset)
        count, offset = read_varint(data, offset)
        entries.append(CcStackEntry(entry_id, callsite, target, count))
    sample = CollectedSample(
        timestamp=previous_timestamp + delta,
        context_id=context_id,
        function=function,
        ccstack=tuple(entries),
        thread=thread,
    )
    return sample, offset


#: Current write format: per-record framing, absolute timestamps.
_MAGIC = b"DCL2"
#: Legacy read-only format: unframed records, delta timestamps.
_MAGIC_V1 = b"DCL1"


def _record_checksum(payload: bytes) -> int:
    """One CRC32-derived byte per record — cheap corruption tripwire."""
    return zlib.crc32(payload) & 0xFF


class SampleLog:
    """Append-only compact log of collected samples.

    The on-disk layout (``DCL2``) frames each record as::

        varint(payload_length) | payload | checksum_byte

    with the timestamp stored *absolute* inside the payload, so a
    skipped record does not shift the timestamps of everything after
    it.  ``DCL1`` data (unframed, delta timestamps) is still readable.
    """

    def __init__(self) -> None:
        self._buffer = bytearray(_MAGIC)
        self._count = 0
        self._last_timestamp = 0
        self._samples_cache: "List[CollectedSample] | None" = None
        #: Damage skipped by a best-effort load (empty for clean data).
        self.faults: List[SampleLogFault] = []

    def append(self, sample: CollectedSample) -> None:
        payload = bytearray()
        # previous_timestamp=0 ⇒ the stored delta IS the absolute value.
        encode_sample(sample, payload, 0)
        write_varint(self._buffer, len(payload))
        self._buffer += payload
        self._buffer.append(_record_checksum(bytes(payload)))
        self._last_timestamp = sample.timestamp
        self._count += 1
        self._samples_cache = None

    def extend(self, samples: Iterable[CollectedSample]) -> None:
        for sample in samples:
            self.append(sample)

    #: Frame trailer of one DCL2 record: the single checksum byte.
    _TRAILER = struct.Struct("B")

    def extend_packed(self, samples: Iterable[CollectedSample]) -> None:
        """Bulk-append ``samples`` in one serialisation pass.

        Produces bytes identical to calling :meth:`append` once per
        sample (pinned by a byte-equality test), but amortises the
        per-record costs across the whole batch: the payload scratch
        buffer is reused instead of reallocated, records accumulate in
        a local batch buffer spliced into the log once, and the parse
        cache is invalidated once instead of per record.  This is the
        sink for column-sourced sample runs, where the engine hands
        back the full ``samples`` list after a columnar batch rather
        than one sample per hot callback.
        """
        scratch = bytearray()
        batch = bytearray()
        crc32 = zlib.crc32
        pack_trailer = self._TRAILER.pack_into
        count = 0
        last_timestamp = self._last_timestamp
        for sample in samples:
            del scratch[:]
            # previous_timestamp=0 ⇒ the stored delta IS the absolute
            # value — same framing invariant as append().
            encode_sample(sample, scratch, 0)
            write_varint(batch, len(scratch))
            batch += scratch
            trailer_at = len(batch)
            batch.append(0)
            pack_trailer(batch, trailer_at, crc32(bytes(scratch)) & 0xFF)
            last_timestamp = sample.timestamp
            count += 1
        if not count:
            return
        self._buffer += batch
        self._last_timestamp = last_timestamp
        self._count += count
        self._samples_cache = None

    def __len__(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return len(self._buffer)

    @property
    def bytes_per_sample(self) -> float:
        if not self._count:
            return 0.0
        return (len(self._buffer) - len(_MAGIC)) / self._count

    def to_bytes(self) -> bytes:
        return bytes(self._buffer)

    @classmethod
    def from_bytes(cls, data: bytes, best_effort: bool = False) -> "SampleLog":
        """Parse serialised log data.

        Strict mode (the default) raises :class:`SampleLogError` with a
        structured ``reason``/``offset`` at the first sign of damage.
        With ``best_effort=True`` every record whose frame and checksum
        survive is recovered; damaged regions become
        :class:`SampleLogFault` entries on the returned log's
        ``faults`` list and the rebuilt buffer contains only the
        recovered records.
        """
        magic = bytes(data[: len(_MAGIC)])
        log = cls()
        if magic == _MAGIC:
            samples, faults = _parse_v2(data, best_effort)
        elif magic == _MAGIC_V1:
            samples, faults = _parse_v1(data, best_effort)
        else:
            fault = SampleLogFault(
                offset=0,
                reason="bad-magic",
                message="unrecognised magic %r" % magic,
            )
            if not best_effort:
                raise SampleLogError(
                    fault.message, reason=fault.reason, offset=0
                )
            log.faults.append(fault)
            return log
        log.extend(samples)
        log.faults.extend(faults)
        return log

    def samples(self) -> List[CollectedSample]:
        """All records as a list, parsed once and cached.

        Random access by record index is what the parallel decoder's
        range sharding needs; the cache is invalidated by
        :meth:`append`.  The returned list is shared — do not mutate.
        """
        if self._samples_cache is None:
            samples, _ = _parse_v2(bytes(self._buffer), best_effort=False)
            self._samples_cache = samples
        return self._samples_cache

    def __iter__(self) -> Iterator[CollectedSample]:
        return iter(self.samples())


def _parse_v2(
    data: bytes, best_effort: bool
) -> Tuple[List[CollectedSample], List[SampleLogFault]]:
    samples: List[CollectedSample] = []
    faults: List[SampleLogFault] = []

    def fail(offset: int, reason: str, message: str) -> bool:
        """Record (or raise) one fault; returns True to stop parsing."""
        if not best_effort:
            raise SampleLogError(message, reason=reason, offset=offset)
        faults.append(
            SampleLogFault(offset=offset, reason=reason, message=message)
        )
        return True

    offset = len(_MAGIC)
    while offset < len(data):
        record_start = offset
        try:
            length, offset = read_varint(data, offset)
        except SampleLogError as error:
            fail(record_start, "truncated", "truncated frame header: %s" % error)
            break
        if length < 0 or offset + length + 1 > len(data):
            fail(
                record_start,
                "truncated",
                "frame claims %d payload bytes but only %d remain"
                % (length, len(data) - offset - 1),
            )
            break
        payload = bytes(data[offset : offset + length])
        stored = data[offset + length]
        offset += length + 1
        if _record_checksum(payload) != stored:
            if fail(
                record_start,
                "checksum-mismatch",
                "record checksum 0x%02x != stored 0x%02x"
                % (_record_checksum(payload), stored),
            ):
                continue
        try:
            sample, consumed = decode_sample_bytes(payload, 0)
            if consumed != len(payload):
                raise SampleLogError(
                    "record decoded %d of %d payload bytes"
                    % (consumed, len(payload))
                )
        except SampleLogError as error:
            fail(record_start, "corrupt-record", str(error))
            continue
        samples.append(sample)
    return samples, faults


def _parse_v1(
    data: bytes, best_effort: bool
) -> Tuple[List[CollectedSample], List[SampleLogFault]]:
    """Legacy ``DCL1`` reader: unframed, delta-timestamped records.

    Without framing there is no way to resynchronise after damage, so a
    best-effort read keeps everything up to the first bad byte and
    reports a single fault for the rest.
    """
    samples: List[CollectedSample] = []
    faults: List[SampleLogFault] = []
    offset = len(_MAGIC_V1)
    timestamp = 0
    while offset < len(data):
        record_start = offset
        try:
            sample, offset = decode_sample_bytes(data, offset, timestamp)
        except SampleLogError as error:
            if not best_effort:
                raise SampleLogError(
                    str(error), reason="corrupt-record", offset=record_start
                ) from None
            faults.append(
                SampleLogFault(
                    offset=record_start,
                    reason="corrupt-record",
                    message="%s (v1 log: remainder unrecoverable)" % error,
                )
            )
            break
        timestamp = sample.timestamp
        samples.append(sample)
    return samples, faults
