"""Incremental dynamic call graph.

DACCE starts with a call graph containing only ``main`` and grows it one
edge at a time as the runtime handler observes first invocations
(Section 3).  The graph is a *multigraph*: two different call sites in the
same caller targeting the same callee are two distinct edges, because each
call site gets its own encoding.

Back edges — edges that would close a cycle among the currently *encoded*
(non-back) edges — are detected incrementally when the edge is added and
are never encoded (Section 3.3: "the recursive calls will not be encoded
while re-encoding the call graph").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .errors import CallGraphError
from .events import CallKind, CallSiteId, FunctionId


@dataclass(eq=False)  # identity semantics: edges are unique objects
class CallEdge:
    """A call-graph edge ``<caller, callee, callsite>``.

    ``invocations`` is the dynamic frequency counter the adaptive encoder
    uses to order in-edges (hot edge gets encoding 0).  ``is_back`` marks
    recursive edges which are handled through the ccStack and never
    receive a static encoding.
    """

    caller: FunctionId
    callee: FunctionId
    callsite: CallSiteId
    kind: CallKind = CallKind.NORMAL
    is_back: bool = False
    invocations: int = 0
    #: True when the edge entered the graph through static warm-start
    #: seeding rather than runtime discovery (Section 3 handler).
    seeded: bool = False

    def key(self) -> Tuple[CallSiteId, FunctionId]:
        """Identity of the edge: a call site plus a concrete target.

        A direct call site has exactly one edge; an indirect call site has
        one edge per dynamic target identified so far.
        """
        return (self.callsite, self.callee)


@dataclass
class CallNode:
    """A function in the call graph with its adjacency."""

    function: FunctionId
    in_edges: List[CallEdge] = field(default_factory=list)
    out_edges: List[CallEdge] = field(default_factory=list)


class CallGraph:
    """A dynamically growing call multigraph with back-edge detection.

    The graph maintains the invariant that the subset of non-back edges is
    acyclic.  ``add_edge`` checks — before inserting — whether the new edge
    would close a cycle through non-back edges and, if so, marks it as a
    back edge.  This mirrors how DACCE classifies a newly discovered
    recursive call the first time it fires.

    Notes on complexity: the reachability check is a DFS over non-back
    edges, O(V+E) worst case per insertion.  Call graphs are small (a few
    thousand nodes, Table 1) and edges are only inserted once each, so
    this is cheap in practice; a positive-result cache short-circuits
    repeated queries between insertions.
    """

    def __init__(self, root: FunctionId = 0):
        self._nodes: Dict[FunctionId, CallNode] = {}
        self._edges: Dict[Tuple[CallSiteId, FunctionId], CallEdge] = {}
        self._root = root
        # Monotone generation counter; bumped on every structural change so
        # dependent caches (encoder output, reachability) can be validated.
        self.generation = 0
        self.add_node(root)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def root(self) -> FunctionId:
        """The program entry function (``main``)."""
        return self._root

    def add_node(self, function: FunctionId) -> CallNode:
        """Insert ``function`` if absent and return its node."""
        node = self._nodes.get(function)
        if node is None:
            node = CallNode(function)
            self._nodes[function] = node
            self.generation += 1
        return node

    def add_edge(
        self,
        caller: FunctionId,
        callee: FunctionId,
        callsite: CallSiteId,
        kind: CallKind = CallKind.NORMAL,
        force_back: bool = False,
        classify: bool = True,
    ) -> CallEdge:
        """Insert the edge ``<caller, callee, callsite>`` and classify it.

        Returns the existing edge if the same (callsite, callee) pair was
        already added.  The edge is marked as a back edge when
        ``force_back`` is set or when callee already reaches caller
        through non-back edges (adding it would create a cycle).  Self
        recursion (``caller == callee``) is always a back edge.

        ``classify=False`` skips the (DFS-based) cycle check — used by
        bulk static-graph construction, which classifies all edges in a
        single pass afterwards (:func:`dfs_classify_back_edges`).
        """
        key = (callsite, callee)
        existing = self._edges.get(key)
        if existing is not None:
            if existing.caller != caller:
                raise CallGraphError(
                    "call site %d already belongs to caller %d, not %d"
                    % (callsite, existing.caller, caller)
                )
            return existing

        caller_node = self.add_node(caller)
        callee_node = self.add_node(callee)
        is_back = force_back or caller == callee
        if not is_back and classify:
            is_back = self.reaches(callee, caller, encoded_only=True)
        edge = CallEdge(caller, callee, callsite, kind=kind, is_back=is_back)
        caller_node.out_edges.append(edge)
        callee_node.in_edges.append(edge)
        self._edges[key] = edge
        self.generation += 1
        return edge

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node(self, function: FunctionId) -> CallNode:
        """The node for ``function``; raises if absent."""
        try:
            return self._nodes[function]
        except KeyError:
            raise CallGraphError("unknown function %r" % (function,)) from None

    def has_node(self, function: FunctionId) -> bool:
        return function in self._nodes

    def edge(self, callsite: CallSiteId, callee: FunctionId) -> CallEdge:
        """The edge at ``callsite`` targeting ``callee``; raises if absent."""
        try:
            return self._edges[(callsite, callee)]
        except KeyError:
            raise CallGraphError(
                "no edge at callsite %d to function %d" % (callsite, callee)
            ) from None

    def find_edge(
        self, callsite: CallSiteId, callee: FunctionId
    ) -> Optional[CallEdge]:
        """Like :meth:`edge` but returns ``None`` when absent.

        This is ``getEdge`` in Algorithm 1.
        """
        return self._edges.get((callsite, callee))

    def edges(self) -> Iterator[CallEdge]:
        return iter(self._edges.values())

    def nodes(self) -> Iterator[CallNode]:
        return iter(self._nodes.values())

    def functions(self) -> Iterator[FunctionId]:
        return iter(self._nodes.keys())

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def in_edges(self, function: FunctionId) -> List[CallEdge]:
        return self.node(function).in_edges

    def out_edges(self, function: FunctionId) -> List[CallEdge]:
        return self.node(function).out_edges

    def reaches(
        self,
        source: FunctionId,
        target: FunctionId,
        encoded_only: bool = True,
    ) -> bool:
        """DFS reachability from ``source`` to ``target``.

        With ``encoded_only`` the search only follows non-back edges — the
        acyclic skeleton over which context encodings are computed.
        """
        if source not in self._nodes or target not in self._nodes:
            return False
        if source == target:
            return True
        seen: Set[FunctionId] = {source}
        stack = [source]
        while stack:
            fn = stack.pop()
            for edge in self._nodes[fn].out_edges:
                if encoded_only and edge.is_back:
                    continue
                nxt = edge.callee
                if nxt == target:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def topological_order(self) -> List[FunctionId]:
        """Topological order of nodes over non-back edges.

        Raises :class:`CallGraphError` if the non-back subset is cyclic —
        which would indicate a bug in back-edge classification.
        """
        in_degree: Dict[FunctionId, int] = {fn: 0 for fn in self._nodes}
        for edge in self._edges.values():
            if not edge.is_back:
                in_degree[edge.callee] += 1
        ready = sorted(fn for fn, deg in in_degree.items() if deg == 0)
        order: List[FunctionId] = []
        # Use a list as a stack; determinism comes from the initial sort
        # plus insertion order of out-edges.
        while ready:
            fn = ready.pop()
            order.append(fn)
            for edge in self._nodes[fn].out_edges:
                if edge.is_back:
                    continue
                in_degree[edge.callee] -= 1
                if in_degree[edge.callee] == 0:
                    ready.append(edge.callee)
        if len(order) != len(self._nodes):
            raise CallGraphError("non-back edge subset is cyclic")
        return order

    # ------------------------------------------------------------------
    # bulk helpers
    # ------------------------------------------------------------------
    def copy(self) -> "CallGraph":
        """A deep structural copy (fresh edge objects, counters kept)."""
        clone = CallGraph(self._root)
        for fn in self._nodes:
            clone.add_node(fn)
        for edge in self._edges.values():
            new = clone.add_edge(
                edge.caller,
                edge.callee,
                edge.callsite,
                kind=edge.kind,
                force_back=edge.is_back,
            )
            new.invocations = edge.invocations
            new.seeded = edge.seeded
        return clone

    @staticmethod
    def from_edges(
        edges: Iterable[Tuple[FunctionId, FunctionId, CallSiteId]],
        root: FunctionId = 0,
    ) -> "CallGraph":
        """Convenience constructor for tests and examples."""
        graph = CallGraph(root)
        for caller, callee, callsite in edges:
            graph.add_edge(caller, callee, callsite)
        return graph

    def __contains__(self, function: FunctionId) -> bool:
        return function in self._nodes

    def __repr__(self) -> str:
        return "CallGraph(nodes=%d, edges=%d)" % (self.num_nodes, self.num_edges)


def dfs_classify_back_edges(graph: CallGraph) -> int:
    """Classify every edge of ``graph`` in one DFS pass.

    An edge whose target is *gray* (on the current DFS stack) is a back
    edge; every other edge (tree/forward/cross) is not.  Removing the
    back edges leaves a DAG — the classic DFS argument.  This is the
    frequency-blind classification static tools use (and is what lets
    never-executed edges turn *hot* edges into back edges in PCCE's
    complete graphs, Section 6.4 of the paper).

    Runs in O(V + E); returns the number of back edges.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[FunctionId, int] = {fn: WHITE for fn in graph.functions()}
    back = 0
    for start in sorted(graph.functions()):
        if color[start] != WHITE:
            continue
        stack: List[Tuple[FunctionId, int]] = [(start, 0)]
        color[start] = GRAY
        while stack:
            node, position = stack.pop()
            out_edges = graph.out_edges(node)
            descended = False
            while position < len(out_edges):
                edge = out_edges[position]
                position += 1
                target_color = color[edge.callee]
                if target_color == GRAY:
                    if not edge.is_back:
                        graph.generation += 1
                    edge.is_back = True
                    back += 1
                else:
                    if edge.is_back:
                        graph.generation += 1
                    edge.is_back = False
                    if target_color == WHITE:
                        color[edge.callee] = GRAY
                        stack.append((node, position))
                        stack.append((edge.callee, 0))
                        descended = True
                        break
            if not descended:
                color[node] = BLACK
    return back
