"""Instrumentation cost accounting for the overhead experiments."""

from .model import CostModel, CostParameters, CostReport

__all__ = ["CostModel", "CostParameters", "CostReport"]
