"""Abstract cycle-cost model for instrumentation overhead (Figure 8).

The paper measures wall-clock overhead of instrumented binaries.  The
reproduction replaces the hardware with an explicit cost model: every
instrumentation action is charged a cycle cost, the uninstrumented
program is charged a baseline cost per call (derived from the
benchmark's ``calls/s`` characteristics — call-dense programs have fewer
application cycles per call over which to amortise instrumentation), and
overhead is the ratio of the two.

The constants are calibrated so that the *shape* of Figure 8 holds:
id arithmetic is nearly free, ccStack traffic and indirect comparisons
dominate, runtime-handler invocations and re-encoding passes are
expensive but rare.  Absolute percentages are model outputs, not
hardware measurements; EXPERIMENTS.md discusses the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class CostParameters:
    """Per-operation cycle charges.

    Defaults approximate a modern x86 core: an add to a TLS id is a
    couple of cycles, a ccStack push/pop touches memory, the runtime
    handler is a patched-out call into the shared library, re-encoding
    suspends every thread and rewrites instrumentation.
    """

    id_update: float = 1.5        # id += En / id -= En (En != 0)
    ccstack_push: float = 9.0     # spill <id, cs, target> + bump pointer
    ccstack_pop: float = 6.0      # reload id + drop entry
    ccstack_compress: float = 7.0 # compare top + counter bump (Fig. 5(e))
    compare: float = 2.5          # inline-cache compare+branch (Fig. 3(d));
                                  # deep chains mispredict, hence > 1 cycle
    hash_lookup: float = 7.0      # hash + load + compare (Fig. 4)
    tcstack_op: float = 5.0       # TcStack save/restore pair share (Fig. 7)
    handler: float = 2500.0       # runtime handler: patch + graph insert
    sample: float = 120.0         # record (gTS, id, ccStack snapshot)
    reencode_per_edge: float = 220.0   # re-encoding pass, per graph edge
    thread_suspend: float = 4000.0     # stop/resume the world per thread
    # Baseline application work per dynamic call.  Programs making tens of
    # millions of calls per second spend roughly this many cycles of real
    # work per call (frequency-derived; see bench.suite).
    baseline_cycles_per_call: float = 150.0


#: Charges that occur a bounded number of times per program run (edge
#: discovery, re-encoding passes).  The paper measures hour-long runs
#: where these amortise to nothing; the reproduction simulates a short
#: window, so Figure 8's overhead amortises them over a full-run budget
#: instead of charging them against the window (see analysis.stats).
ONETIME_CATEGORIES = frozenset({"handler", "reencode", "discovery"})

#: Charges belonging to the *client tool* (the libpfm4 sampling module),
#: not to the encoding instrumentation Figure 8 measures.
CLIENT_CATEGORIES = frozenset({"sample"})


@dataclass
class CostReport:
    """Accumulated instrumentation charges for one run."""

    charges: Dict[str, float] = field(default_factory=dict)
    baseline_cycles: float = 0.0

    def add(self, category: str, cycles: float) -> None:
        self.charges[category] = self.charges.get(category, 0.0) + cycles

    @property
    def instrumentation_cycles(self) -> float:
        return sum(self.charges.values())

    @property
    def steady_cycles(self) -> float:
        """Per-call instrumentation work (scales with execution length)."""
        return sum(
            value
            for key, value in self.charges.items()
            if key not in ONETIME_CATEGORIES and key not in CLIENT_CATEGORIES
        )

    @property
    def onetime_cycles(self) -> float:
        """Bounded-per-run work: runtime handler + re-encoding passes."""
        return sum(
            value
            for key, value in self.charges.items()
            if key in ONETIME_CATEGORIES
        )

    @property
    def overhead(self) -> float:
        """Total instrumentation cycles over baseline cycles (raw)."""
        if self.baseline_cycles <= 0:
            return 0.0
        return self.instrumentation_cycles / self.baseline_cycles

    def amortized_overhead(self, full_run_cycles: Optional[float] = None) -> float:
        """Steady-state overhead plus one-time work amortised over a run.

        ``full_run_cycles`` is the application-cycle budget of the *real*
        benchmark run the simulated window stands in for (defaults to the
        window itself, i.e. no amortisation).
        """
        if self.baseline_cycles <= 0:
            return 0.0
        steady = self.steady_cycles / self.baseline_cycles
        budget = full_run_cycles if full_run_cycles else self.baseline_cycles
        return steady + self.onetime_cycles / budget

    def merged(self, other: "CostReport") -> "CostReport":
        out = CostReport(dict(self.charges), self.baseline_cycles)
        for key, value in other.charges.items():
            out.add(key, value)
        out.baseline_cycles += other.baseline_cycles
        return out


class CostModel:
    """Charges instrumentation actions against a :class:`CostReport`."""

    def __init__(self, parameters: CostParameters = CostParameters()):
        self.parameters = parameters
        self.report = CostReport()

    # -- application baseline ------------------------------------------
    def charge_call_baseline(
        self, calls: int = 1, work: Optional[float] = None
    ) -> None:
        """Account uninstrumented application work for ``calls`` calls."""
        per_call = (
            self.parameters.baseline_cycles_per_call if work is None else work
        )
        self.report.baseline_cycles += calls * per_call

    # -- instrumentation actions ---------------------------------------
    def charge_id_update(self, count: int = 1) -> None:
        self.report.add("id_update", count * self.parameters.id_update)

    def charge_ccstack_push(self) -> None:
        self.report.add("ccstack", self.parameters.ccstack_push)

    def charge_ccstack_pop(self) -> None:
        self.report.add("ccstack", self.parameters.ccstack_pop)

    def charge_ccstack_compress(self) -> None:
        self.report.add("ccstack", self.parameters.ccstack_compress)

    def charge_comparisons(self, count: int) -> None:
        self.report.add("indirect", count * self.parameters.compare)

    def charge_hash_lookup(self) -> None:
        self.report.add("indirect", self.parameters.hash_lookup)

    def charge_tcstack(self, count: int = 1) -> None:
        self.report.add("tcstack", count * self.parameters.tcstack_op)

    def charge_handler(self) -> None:
        self.report.add("handler", self.parameters.handler)

    def charge_sample(self, ccstack_entries: int = 0) -> None:
        self.report.add(
            "sample",
            self.parameters.sample + 2.0 * ccstack_entries,
        )

    def charge_reencode(self, edges: int, threads: int) -> None:
        self.report.add(
            "reencode",
            edges * self.parameters.reencode_per_edge
            + threads * self.parameters.thread_suspend,
        )

    def charge_stack_walk(self, frames: int) -> None:
        """Used by the stack-walking baseline: one load chain per frame."""
        self.report.add("stackwalk", 14.0 * frames)

    def charge_cct_step(self) -> None:
        """Used by the CCT baseline: child lookup + position update."""
        self.report.add("cct", 11.0)

    def charge_pcc_hash(self) -> None:
        """Used by the probabilistic-calling-context baseline."""
        self.report.add("pcc", 3.0)
