"""Figure 9 — the progress of encodings over time.

The paper plots, for four representative benchmarks (445.gobmk,
483.xalancbmk, 458.sjeng, 433.milc), how the number of encoded nodes and
edges and the maximum encoding context id evolve as the program runs:
re-encodings cluster at start-up, the encoding reaches a steady state
quickly, and later phase changes trigger occasional adjustments (with
xalancbmk's famous maxID *decrease* when a re-encoding reclassifies a
back edge).

The engine already logs every re-encoding (:class:`ReencodeRecord`); this
module turns that log into an evenly sampled time series comparable with
the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bench.suite import BenchmarkSpec
from ..core.engine import DacceEngine
from ..program.generator import generate_program
from ..program.trace import TraceExecutor


@dataclass
class ProgressPoint:
    """Encoding state after a given number of dynamic calls."""

    at_call: int
    nodes: int
    edges: int
    max_id: int
    timestamp: int


@dataclass
class ProgressSeries:
    """The full Figure 9 series for one benchmark."""

    name: str
    points: List[ProgressPoint]
    total_calls: int

    def max_id_decreased(self) -> bool:
        """Did any re-encoding *lower* maxID (the xalancbmk anecdote)?"""
        values = [point.max_id for point in self.points]
        return any(b < a for a, b in zip(values, values[1:]))


def progress_from_engine(
    engine: DacceEngine, name: str, total_calls: Optional[int] = None
) -> ProgressSeries:
    """Build the series from an engine's re-encoding log."""
    points = [
        ProgressPoint(
            at_call=record.at_call,
            nodes=record.nodes,
            edges=record.edges,
            max_id=record.max_id,
            timestamp=record.timestamp,
        )
        for record in engine.reencode_log
    ]
    final_calls = total_calls if total_calls is not None else engine.stats.calls
    points.append(
        ProgressPoint(
            at_call=final_calls,
            nodes=engine.graph.num_nodes,
            edges=engine.graph.num_edges,
            max_id=engine.max_id,
            timestamp=engine.timestamp,
        )
    )
    return ProgressSeries(name=name, points=points, total_calls=final_calls)


def run_progress(
    benchmark: BenchmarkSpec,
    calls: int = 40_000,
    scale: float = 1.0,
    seed: int = 1,
) -> ProgressSeries:
    """Run DACCE over the benchmark and extract its Figure 9 series."""
    program = generate_program(benchmark.generator_config(scale))
    spec = benchmark.workload_spec(calls=calls, seed=seed)
    engine = DacceEngine(root=program.main)
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
    return progress_from_engine(engine, benchmark.name)


#: The four representative benchmarks the paper shows in Figure 9.
FIGURE9_BENCHMARKS = ("445.gobmk", "483.xalancbmk", "458.sjeng", "433.milc")
