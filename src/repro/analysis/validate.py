"""Cross-validation of decoded contexts against the shadow-stack oracle.

The paper validates DACCE by sampling with libpfm4 and comparing the
decoded contexts against simultaneously captured stack walks
(Section 6.1).  The reproduction's equivalent: run the engine over a
workload, capture the true shadow-stack context at every sample point,
decode every collected sample at the end (decoding dictionaries for all
timestamps are retained), and compare step-by-step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.context import CallingContext, CollectedSample
from ..core.engine import DacceEngine
from ..core.errors import DecodingError
from ..core.events import SampleEvent
from ..program.model import Program
from ..program.trace import TraceExecutor, WorkloadSpec


@dataclass
class ValidationResult:
    """Outcome of one validation run."""

    samples: int = 0
    matches: int = 0
    mismatches: int = 0
    undecodable: int = 0
    failures: List[Tuple[CollectedSample, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.mismatches == 0 and self.undecodable == 0

    @property
    def accuracy(self) -> float:
        return self.matches / self.samples if self.samples else 1.0


def contexts_equal(decoded: CallingContext, expected: CallingContext) -> bool:
    """Step-wise (function, callsite) equality of two expanded contexts."""
    if len(decoded.steps) != len(expected.steps):
        return False
    for left, right in zip(decoded.steps, expected.steps):
        if left.function != right.function or left.callsite != right.callsite:
            return False
    return True


def validate_run(
    program: Program,
    spec: WorkloadSpec,
    engine: Optional[DacceEngine] = None,
    max_failures: int = 10,
) -> ValidationResult:
    """Drive ``engine`` over the workload, decode every sample, compare.

    Oracles are captured at sample time (the shadow stack moves on);
    decoding happens at the end, exercising the timestamped dictionary
    store across every re-encoding the run performed.
    """
    engine = engine or DacceEngine(root=program.main)
    executor = TraceExecutor(program, spec)
    expectations: List[Tuple[CollectedSample, CallingContext]] = []

    for event in executor.events():
        engine.on_event(event)
        if isinstance(event, SampleEvent):
            expectations.append(
                (engine.samples[-1], engine.expected_context(event.thread))
            )

    decoder = engine.decoder()
    result = ValidationResult()
    for sample, expected in expectations:
        result.samples += 1
        try:
            decoded = decoder.decode(sample)
        except DecodingError as error:
            result.undecodable += 1
            if len(result.failures) < max_failures:
                result.failures.append((sample, "undecodable: %s" % error))
            continue
        if contexts_equal(decoded, expected):
            result.matches += 1
        else:
            result.mismatches += 1
            if len(result.failures) < max_failures:
                result.failures.append(
                    (
                        sample,
                        "decoded %s != expected %s"
                        % (decoded.steps, expected.steps),
                    )
                )
    return result
