"""Analysis and reporting: Table 1 stats, Figures 8-10, validation."""

from .depth import (
    FIGURE10_BENCHMARKS,
    DepthDistributions,
    cumulative_distribution,
    run_depth_distributions,
)
from .progress import (
    FIGURE9_BENCHMARKS,
    ProgressPoint,
    ProgressSeries,
    progress_from_engine,
    run_progress,
)
from .export import (
    export_fig8_csv,
    export_fig9_csv,
    export_fig10_csv,
    export_table1_csv,
)
from .report import (
    render_figure8,
    render_figure9,
    render_figure10,
    render_table,
    render_table1,
)
from .stats import (
    BenchmarkMeasurement,
    EngineMeasurement,
    geomean,
    measure_benchmark,
    measure_dacce,
    measure_pcce,
)
from .validate import ValidationResult, contexts_equal, validate_run

__all__ = [
    "BenchmarkMeasurement",
    "DepthDistributions",
    "EngineMeasurement",
    "FIGURE10_BENCHMARKS",
    "FIGURE9_BENCHMARKS",
    "ProgressPoint",
    "ProgressSeries",
    "ValidationResult",
    "contexts_equal",
    "cumulative_distribution",
    "export_fig8_csv",
    "export_fig9_csv",
    "export_fig10_csv",
    "export_table1_csv",
    "geomean",
    "measure_benchmark",
    "measure_dacce",
    "measure_pcce",
    "progress_from_engine",
    "render_figure8",
    "render_figure9",
    "render_figure10",
    "render_table",
    "render_table1",
    "run_depth_distributions",
    "run_progress",
    "validate_run",
]
