"""Plain-text rendering of the reproduced tables and figures.

Everything prints to a string so benchmarks, the CLI and EXPERIMENTS.md
generation share one formatter.  Figures are rendered as aligned text
(bar charts / series tables) — good enough to eyeball the shapes the
paper reports without a plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .depth import DepthDistributions
from .progress import ProgressSeries
from .stats import BenchmarkMeasurement, geomean


def format_number(value: float) -> str:
    """Compact numeric formatting matching Table 1's style."""
    if isinstance(value, float) and not value.is_integer():
        if value >= 1e6:
            return "%.1E" % value
        return "%.2f" % value
    value = int(value)
    if value >= 10_000_000:
        return "%.1E" % value
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]]
) -> str:
    """Monospace table with right-aligned numeric-ish columns."""
    materialised = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------
TABLE1_HEADERS = [
    "benchmark",
    "P.nodes", "P.edges", "P.maxID", "P.ccs/s", "P.depth",
    "D.nodes", "D.edges", "D.maxID", "D.ccs/s", "D.depth",
    "gTS", "cost(us)", "calls/s",
]


def table1_row(measurement: BenchmarkMeasurement) -> List[str]:
    pcce = measurement.pcce
    dacce = measurement.dacce
    calls_per_s = (
        dacce.calls / dacce.sim_seconds if dacce.sim_seconds else 0.0
    )
    return [
        measurement.benchmark.name,
        str(pcce.nodes),
        str(pcce.edges),
        "overflow" if pcce.overflowed else format_number(pcce.max_id),
        format_number(pcce.ccstack_per_s),
        "%.2f" % pcce.avg_ccstack_depth,
        str(dacce.nodes),
        str(dacce.edges),
        format_number(dacce.max_id),
        format_number(dacce.ccstack_per_s),
        "%.2f" % dacce.avg_ccstack_depth,
        str(dacce.gts),
        format_number(dacce.reencode_cost_us),
        format_number(calls_per_s),
    ]


def render_table1(measurements: Sequence[BenchmarkMeasurement]) -> str:
    return render_table(
        TABLE1_HEADERS, [table1_row(m) for m in measurements]
    )


# ----------------------------------------------------------------------
# Figure 8
# ----------------------------------------------------------------------
def render_figure8(
    measurements: Sequence[BenchmarkMeasurement],
    bar_width: int = 40,
    with_paper: bool = True,
) -> str:
    """Runtime-overhead bar chart: PCCE vs DACCE per benchmark."""
    rows = []
    pcce_values = []
    dacce_values = []
    peak = 0.0
    for measurement in measurements:
        peak = max(
            peak, measurement.pcce.overhead_pct, measurement.dacce.overhead_pct
        )
    peak = max(peak, 1e-9)
    for measurement in measurements:
        pcce = measurement.pcce.overhead_pct
        dacce = measurement.dacce.overhead_pct
        pcce_values.append(pcce)
        dacce_values.append(dacce)
        paper = measurement.benchmark.paper
        row = [
            measurement.benchmark.name,
            "%.2f%%" % pcce,
            "%.2f%%" % dacce,
            "#" * max(0, round(bar_width * pcce / peak)),
            "=" * max(0, round(bar_width * dacce / peak)),
        ]
        if with_paper:
            row.extend(
                ["%.1f%%" % paper.overhead_pcce, "%.1f%%" % paper.overhead_dacce]
            )
        rows.append(row)
    rows.append(
        [
            "geomean",
            "%.2f%%" % (geomean([v / 100 for v in pcce_values]) * 100),
            "%.2f%%" % (geomean([v / 100 for v in dacce_values]) * 100),
            "",
            "",
        ]
        + (["2.5%", "2.0%"] if with_paper else [])
    )
    headers = ["benchmark", "PCCE", "DACCE", "PCCE bar (#)", "DACCE bar (=)"]
    if with_paper:
        headers.extend(["paper PCCE", "paper DACCE"])
    return render_table(headers, rows)


# ----------------------------------------------------------------------
# Figure 9
# ----------------------------------------------------------------------
def render_figure9(series: Sequence[ProgressSeries]) -> str:
    """Encoding-progress series: nodes/edges/maxID after each re-encoding."""
    blocks = []
    for entry in series:
        rows = [
            [
                str(point.timestamp),
                str(point.at_call),
                str(point.nodes),
                str(point.edges),
                format_number(point.max_id),
            ]
            for point in entry.points
        ]
        note = (
            "  (maxID decreased across a re-encoding — the paper's "
            "483.xalancbmk anecdote)"
            if entry.max_id_decreased()
            else ""
        )
        blocks.append(
            "%s%s\n%s"
            % (
                entry.name,
                note,
                render_table(
                    ["gTS", "at call", "nodes", "edges", "maxID"], rows
                ),
            )
        )
    return "\n\n".join(blocks)


# ----------------------------------------------------------------------
# Figure 10
# ----------------------------------------------------------------------
def render_figure10(
    distributions: Sequence[DepthDistributions],
    percentiles: Sequence[float] = (0.5, 0.8, 0.9, 0.95, 1.0),
) -> str:
    """Depth CDF summaries: call stack vs ccStack."""
    rows = []
    for dist in distributions:
        for which, label in (("call", "call stack"), ("cc", "ccStack")):
            rows.append(
                [
                    dist.name,
                    label,
                    str(len(dist.call_stack_depths)),
                ]
                + [
                    str(dist.depth_covering(p, which=which))
                    for p in percentiles
                ]
            )
    headers = ["benchmark", "stack", "samples"] + [
        "p%d" % int(p * 100) for p in percentiles
    ]
    return render_table(headers, rows)
