"""CSV export of the reproduced artifacts (machine-readable results).

Each exporter mirrors one rendered artifact so downstream analysis or
plotting can consume the measurements without re-running anything.
"""

from __future__ import annotations

import csv
from typing import Sequence

from .depth import DepthDistributions
from .progress import ProgressSeries
from .stats import BenchmarkMeasurement


def export_table1_csv(
    measurements: Sequence[BenchmarkMeasurement], path: str
) -> str:
    """Table 1 (paper and measured columns side by side)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "benchmark", "suite",
                "paper_pcce_nodes", "measured_pcce_nodes",
                "paper_pcce_edges", "measured_pcce_edges",
                "paper_pcce_maxid", "measured_pcce_maxid",
                "measured_pcce_overflow",
                "paper_dacce_nodes", "measured_dacce_nodes",
                "paper_dacce_edges", "measured_dacce_edges",
                "paper_dacce_maxid", "measured_dacce_maxid",
                "paper_ccstack_per_s", "measured_ccstack_per_s",
                "paper_depth", "measured_depth",
                "paper_gts", "measured_gts",
                "paper_cost_us", "measured_cost_us",
            ]
        )
        for m in measurements:
            paper = m.benchmark.paper
            writer.writerow(
                [
                    m.benchmark.name, m.benchmark.suite,
                    paper.pcce_nodes, m.pcce.nodes,
                    paper.pcce_edges, m.pcce.edges,
                    paper.pcce_maxid, m.pcce.max_id,
                    int(m.pcce.overflowed),
                    paper.nodes, m.dacce.nodes,
                    paper.edges, m.dacce.edges,
                    paper.maxid, m.dacce.max_id,
                    paper.ccstack_s, round(m.dacce.ccstack_per_s, 2),
                    paper.depth, round(m.dacce.avg_ccstack_depth, 3),
                    paper.gts, m.dacce.gts,
                    paper.costs_us, round(m.dacce.reencode_cost_us, 2),
                ]
            )
    return path


def export_fig8_csv(
    measurements: Sequence[BenchmarkMeasurement], path: str
) -> str:
    """Figure 8 (overheads, paper read-offs included)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "benchmark",
                "paper_pcce_overhead_pct", "paper_dacce_overhead_pct",
                "measured_pcce_overhead_pct", "measured_dacce_overhead_pct",
            ]
        )
        for m in measurements:
            paper = m.benchmark.paper
            writer.writerow(
                [
                    m.benchmark.name,
                    paper.overhead_pcce, paper.overhead_dacce,
                    round(m.pcce.overhead_pct, 4),
                    round(m.dacce.overhead_pct, 4),
                ]
            )
    return path


def export_fig9_csv(series: Sequence[ProgressSeries], path: str) -> str:
    """Figure 9 (one row per re-encoding per benchmark)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["benchmark", "gts", "at_call", "nodes", "edges", "max_id"]
        )
        for entry in series:
            for point in entry.points:
                writer.writerow(
                    [
                        entry.name, point.timestamp, point.at_call,
                        point.nodes, point.edges, point.max_id,
                    ]
                )
    return path


def export_fig10_csv(
    distributions: Sequence[DepthDistributions], path: str
) -> str:
    """Figure 10 (full CDFs, one row per (benchmark, stack, depth))."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["benchmark", "stack", "depth", "cumulative_fraction"])
        for dist in distributions:
            for label, cdf in (
                ("call", dist.call_stack_cdf()),
                ("ccstack", dist.ccstack_cdf()),
            ):
                for depth, fraction in cdf:
                    writer.writerow(
                        [dist.name, label, depth, round(fraction, 6)]
                    )
    return path
