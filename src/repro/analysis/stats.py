"""Benchmark characteristic measurement — the Table 1 pipeline.

For one benchmark stand-in this module runs the DACCE engine and the
PCCE baseline over the same workload (PCCE additionally gets its offline
profiling pass) and extracts the paper's Table 1 columns:

* Nodes / Edges — call-graph size (dynamic for DACCE, static for PCCE),
* MaxID — maximum context identifier required,
* ccStack/s — ccStack operations per second of simulated execution
  (simulated seconds = calls / the paper's measured ``calls/s``),
* depth — average logical ccStack depth at sample points,
* gTS / costs — re-encoding passes and their total cost in µs,
* overhead — instrumentation cycles over baseline application cycles
  from the cost model (the Figure 8 quantity).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

from ..baselines.pcce import PcceEngine, profile_edge_frequencies
from ..bench.suite import CLOCK_HZ, BenchmarkSpec
from ..core.engine import DacceEngine
from ..core.errors import DecodingError
from ..cost.model import CostModel, CostParameters
from ..program.generator import generate_program
from ..program.trace import TraceExecutor


@dataclass
class EngineMeasurement:
    """Measured Table 1 columns for one engine on one benchmark."""

    name: str
    approach: str  # "DACCE" | "PCCE"
    nodes: int
    edges: int
    max_id: int
    overflowed: bool
    ccstack_per_s: float
    avg_ccstack_depth: float
    gts: int
    reencode_cost_us: float
    calls: int
    samples: int
    decoded_ok: int
    undecodable: int
    overhead_pct: float
    sim_seconds: float


@dataclass
class BenchmarkMeasurement:
    """DACCE + PCCE measurements for one benchmark."""

    benchmark: BenchmarkSpec
    dacce: EngineMeasurement
    pcce: EngineMeasurement


def _cost_model(benchmark: BenchmarkSpec) -> CostModel:
    parameters = replace(
        CostParameters(),
        baseline_cycles_per_call=benchmark.baseline_cycles_per_call,
    )
    return CostModel(parameters)


def _simulated_seconds(benchmark: BenchmarkSpec, calls: int) -> float:
    rate = benchmark.paper.calls_s
    if rate <= 0:
        return float(calls)
    return calls / rate


def _decode_accuracy(engine, limit: int = 300) -> Tuple[int, int]:
    """Decode up to ``limit`` evenly spaced samples; count failures."""
    samples = engine.samples
    if not samples:
        return (0, 0)
    step = max(1, len(samples) // limit)
    decoder = engine.decoder()
    ok = bad = 0
    for sample in samples[::step]:
        try:
            decoder.decode(sample)
            ok += 1
        except DecodingError:
            bad += 1
    return (ok, bad)


def _avg_sample_depth(engine) -> float:
    """Mean ccStack depth at sample points, skipping the warm-up phase.

    The paper samples hour-long runs where start-up (every edge still
    unencoded) is negligible; the simulated window is short, so samples
    taken before the first re-encoding would dominate unfairly.
    """
    samples = [s for s in engine.samples if s.timestamp >= 1]
    if not samples:
        samples = engine.samples
    if not samples:
        return 0.0
    return sum(s.ccstack_depth() for s in samples) / len(samples)


#: Application-cycle budget the one-time charges amortise over: the
#: paper's benchmarks run for minutes on a 1.87 GHz machine.
FULL_RUN_SECONDS = 600.0


def _ccstack_ops(engine) -> int:
    """Steady-state ccStack operations: total minus discovery traffic."""
    total = sum(
        v for k, v in engine.ccstack_stats().items() if k != "max_depth"
    )
    return total - engine.stats.discovery_ccstack_ops


def measure_dacce(
    benchmark: BenchmarkSpec,
    calls: int = 40_000,
    scale: float = 1.0,
    seed: int = 1,
) -> Tuple[DacceEngine, EngineMeasurement]:
    """Run DACCE over the benchmark's workload and measure it.

    Steady-state quantities (overhead, ccStack rate) are measured from
    the first re-encoding onwards: the paper's hour-long runs make the
    start-up phase (every edge still unencoded and pushing) negligible,
    whereas it would dominate the short simulated window.
    """
    program = generate_program(benchmark.generator_config(scale))
    spec = benchmark.workload_spec(calls=calls, seed=seed)
    engine = DacceEngine(root=program.main, cost_model=_cost_model(benchmark))

    warmup_steady = warmup_baseline = 0.0
    warmup_ops = warmup_calls = 0
    marked = False
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
        if not marked and engine.stats.reencodings >= 1:
            marked = True
            warmup_steady = engine.cost.report.steady_cycles
            warmup_baseline = engine.cost.report.baseline_cycles
            warmup_ops = _ccstack_ops(engine)
            warmup_calls = engine.stats.calls

    ok, bad = _decode_accuracy(engine)
    seconds = _simulated_seconds(benchmark, engine.stats.calls)
    steady_calls = max(1, engine.stats.calls - warmup_calls)
    steady_seconds = _simulated_seconds(benchmark, steady_calls)
    steady_ops = _ccstack_ops(engine) - warmup_ops
    steady_cycles = engine.cost.report.steady_cycles - warmup_steady
    steady_baseline = max(
        1.0, engine.cost.report.baseline_cycles - warmup_baseline
    )
    overhead = (
        steady_cycles / steady_baseline
        + engine.cost.report.onetime_cycles / (FULL_RUN_SECONDS * CLOCK_HZ)
    )
    measurement = EngineMeasurement(
        name=benchmark.name,
        approach="DACCE",
        nodes=engine.graph.num_nodes,
        edges=engine.graph.num_edges,
        max_id=engine.max_id,
        overflowed=engine.current_dictionary.overflowed,
        ccstack_per_s=steady_ops / steady_seconds if steady_seconds else 0.0,
        avg_ccstack_depth=_avg_sample_depth(engine),
        gts=engine.stats.reencodings,
        reencode_cost_us=engine.stats.reencode_cost_cycles / (CLOCK_HZ / 1e6),
        calls=engine.stats.calls,
        samples=engine.stats.samples,
        decoded_ok=ok,
        undecodable=bad,
        overhead_pct=overhead * 100.0,
        sim_seconds=seconds,
    )
    return engine, measurement


def measure_pcce(
    benchmark: BenchmarkSpec,
    calls: int = 40_000,
    scale: float = 1.0,
    seed: int = 1,
) -> Tuple[PcceEngine, EngineMeasurement]:
    """Profile offline, then run the PCCE baseline and measure it."""
    program = generate_program(benchmark.generator_config(scale))
    spec = benchmark.workload_spec(calls=calls, seed=seed)
    profile = profile_edge_frequencies(program, spec)
    engine = PcceEngine(program, profile, cost_model=_cost_model(benchmark))
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
    ok, bad = _decode_accuracy(engine)
    seconds = _simulated_seconds(benchmark, engine.stats.calls)
    ccstack_ops = sum(
        v for k, v in engine.ccstack_stats().items() if k != "max_depth"
    )
    static = engine.static_result
    measurement = EngineMeasurement(
        name=benchmark.name,
        approach="PCCE",
        nodes=static.static_nodes,
        edges=static.static_edges,
        max_id=static.max_id_before_fix,
        overflowed=static.overflowed,
        ccstack_per_s=ccstack_ops / seconds if seconds else 0.0,
        avg_ccstack_depth=_avg_sample_depth(engine),
        gts=0,
        reencode_cost_us=0.0,
        calls=engine.stats.calls,
        samples=engine.stats.samples,
        decoded_ok=ok,
        undecodable=bad,
        overhead_pct=engine.cost.report.amortized_overhead(
            FULL_RUN_SECONDS * CLOCK_HZ
        ) * 100.0,
        sim_seconds=seconds,
    )
    return engine, measurement


def measure_benchmark(
    benchmark: BenchmarkSpec,
    calls: int = 40_000,
    scale: float = 1.0,
    seed: int = 1,
) -> BenchmarkMeasurement:
    """The full Table 1 treatment for one benchmark."""
    _, dacce = measure_dacce(benchmark, calls=calls, scale=scale, seed=seed)
    _, pcce = measure_pcce(benchmark, calls=calls, scale=scale, seed=seed)
    return BenchmarkMeasurement(benchmark=benchmark, dacce=dacce, pcce=pcce)


def overhead_rank_correlation(
    measurements: List["BenchmarkMeasurement"],
) -> Dict[str, float]:
    """Spearman rank correlation of measured vs published overheads.

    A scale-free reproduction metric: the cost model need not match the
    paper's absolute percentages, but the *ordering* of benchmarks by
    overhead should agree if the mechanisms are captured.  Returns the
    coefficient per approach.
    """
    from scipy.stats import spearmanr

    out: Dict[str, float] = {}
    for approach in ("pcce", "dacce"):
        paper = [
            getattr(m.benchmark.paper, "overhead_" + approach)
            for m in measurements
        ]
        measured = [
            getattr(m, approach).overhead_pct for m in measurements
        ]
        coefficient, _p = spearmanr(paper, measured)
        out[approach] = float(coefficient)
    return out


def geomean(values: List[float]) -> float:
    """Geometric mean tolerant of zeros (offset by 1, like overhead %)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= 1.0 + max(0.0, value)
    return product ** (1.0 / len(values)) - 1.0
