"""Figure 10 — cumulative distributions of call-stack and ccStack depth.

For four representative benchmarks (x264, 445.gobmk, 459.GemsFDTD,
483.xalancbmk) the paper plots, over all dynamic context instances, the
cumulative fraction whose (a) full call-stack depth and (b) ccStack depth
is below a given bound.  The shapes it highlights:

* for most programs the ccStack stays empty while the call stack has
  moderate depth (459.GemsFDTD),
* recursion-heavy programs (445.gobmk, 483.xalancbmk) have non-trivial
  ccStack depth, with xalancbmk needing thousands of stack slots to
  cover 90% of contexts.

This module records both depths at every sample point of a DACCE run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..bench.suite import BenchmarkSpec
from ..core.engine import DacceEngine
from ..core.events import SampleEvent
from ..program.generator import generate_program
from ..program.trace import TraceExecutor


@dataclass
class DepthDistributions:
    """Sampled depth observations for one benchmark."""

    name: str
    call_stack_depths: List[int]
    ccstack_depths: List[int]

    def call_stack_cdf(self) -> List[Tuple[int, float]]:
        return cumulative_distribution(self.call_stack_depths)

    def ccstack_cdf(self) -> List[Tuple[int, float]]:
        return cumulative_distribution(self.ccstack_depths)

    def depth_covering(self, fraction: float, which: str = "call") -> int:
        """Smallest depth bound covering ``fraction`` of the contexts.

        The paper's "stack depth needed to cover 90% of contexts".
        """
        depths = (
            self.call_stack_depths if which == "call" else self.ccstack_depths
        )
        if not depths:
            return 0
        ordered = sorted(depths)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


def cumulative_distribution(values: Sequence[int]) -> List[Tuple[int, float]]:
    """(depth, cumulative fraction <= depth) pairs, depth ascending."""
    if not values:
        return []
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    total = len(values)
    out: List[Tuple[int, float]] = []
    running = 0
    for depth in sorted(counts):
        running += counts[depth]
        out.append((depth, running / total))
    return out


def run_depth_distributions(
    benchmark: BenchmarkSpec,
    calls: int = 40_000,
    scale: float = 1.0,
    seed: int = 1,
) -> DepthDistributions:
    """Run DACCE, recording both depths at every sample point."""
    program = generate_program(benchmark.generator_config(scale))
    spec = benchmark.workload_spec(calls=calls, seed=seed)
    engine = DacceEngine(root=program.main)
    call_depths: List[int] = []
    cc_depths: List[int] = []
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
        if isinstance(event, SampleEvent):
            call_depths.append(engine.call_stack_depth(event.thread))
            # Steady-state content only: entries for edges that merely
            # await their first encoding are a short-window artifact the
            # paper's hour-long runs do not see (DESIGN.md §6).
            cc_depths.append(
                engine.ccstack_depth(event.thread, include_discovery=False)
            )
    return DepthDistributions(
        name=benchmark.name,
        call_stack_depths=call_depths,
        ccstack_depths=cc_depths,
    )


#: The four representative benchmarks the paper shows in Figure 10.
FIGURE10_BENCHMARKS = ("x264", "445.gobmk", "459.GemsFDTD", "483.xalancbmk")
