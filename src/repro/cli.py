"""Command-line harness: regenerate the paper's tables and figures.

Examples::

    dacce table1 --benchmarks 401.bzip2 445.gobmk --calls 30000
    dacce fig8 --scale 0.4
    dacce fig9
    dacce fig10
    dacce validate --seeds 5
    dacce experiments --output EXPERIMENTS.md   # full paper-vs-measured report
    dacce metrics --calls 20000                 # Prometheus-format telemetry
    dacce trace --calls 20000 --limit 30        # structured JSONL engine trace
    dacce doctor --state run.state.json --log run.log   # integrity check
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import List, Optional

from .analysis import (
    FIGURE9_BENCHMARKS,
    FIGURE10_BENCHMARKS,
    export_fig8_csv,
    export_fig9_csv,
    export_fig10_csv,
    export_table1_csv,
    measure_benchmark,
    render_figure8,
    render_figure9,
    render_figure10,
    render_table1,
    run_depth_distributions,
    run_progress,
    validate_run,
)
from .bench import full_suite
from .core.engine import DacceEngine
from .program.generator import GeneratorConfig, generate_program
from .program.trace import PhaseSpec, ThreadSpec, WorkloadSpec


def _select(names: Optional[List[str]]):
    suite = full_suite()
    if not names:
        return list(suite)
    missing = [n for n in names if n not in suite.names()]
    if missing:
        raise SystemExit(
            "unknown benchmarks: %s\navailable: %s"
            % (", ".join(missing), ", ".join(suite.names()))
        )
    return [suite.get(n) for n in names]


def _measure_all(args) -> list:
    benchmarks = _select(args.benchmarks)
    measurements = []
    start = time.time()
    for index, benchmark in enumerate(benchmarks):
        measurements.append(
            measure_benchmark(
                benchmark, calls=args.calls, scale=args.scale, seed=args.seed
            )
        )
        if args.verbose:
            print(
                "[%d/%d] %s (%.1fs elapsed)"
                % (index + 1, len(benchmarks), benchmark.name, time.time() - start),
                file=sys.stderr,
            )
    return measurements


def cmd_table1(args) -> int:
    measurements = _measure_all(args)
    print(render_table1(measurements))
    if args.csv:
        print("csv written to %s" % export_table1_csv(measurements, args.csv))
    return 0


def cmd_fig8(args) -> int:
    measurements = _measure_all(args)
    print(render_figure8(measurements))
    if args.csv:
        print("csv written to %s" % export_fig8_csv(measurements, args.csv))
    return 0


def cmd_fig9(args) -> int:
    names = args.benchmarks or list(FIGURE9_BENCHMARKS)
    series = [
        run_progress(b, calls=args.calls, scale=args.scale, seed=args.seed)
        for b in _select(names)
    ]
    print(render_figure9(series))
    if args.csv:
        print("csv written to %s" % export_fig9_csv(series, args.csv))
    return 0


def cmd_fig10(args) -> int:
    names = args.benchmarks or list(FIGURE10_BENCHMARKS)
    distributions = [
        run_depth_distributions(b, calls=args.calls, scale=args.scale, seed=args.seed)
        for b in _select(names)
    ]
    print(render_figure10(distributions))
    if args.csv:
        print("csv written to %s" % export_fig10_csv(distributions, args.csv))
    return 0


def cmd_validate(args) -> int:
    """Decode-vs-oracle cross validation over random workloads."""
    failures = 0
    for seed in range(args.seeds):
        program = generate_program(
            GeneratorConfig(
                seed=seed,
                recursive_sites=4,
                indirect_fraction=0.1,
                tail_fraction=0.05,
                library_functions=6,
                lazy_library=True,
            )
        )
        spec = WorkloadSpec(
            calls=args.calls,
            seed=seed + 1000,
            sample_period=41,
            recursion_affinity=0.4,
            threads=[ThreadSpec(thread=1, entry=3, spawn_at_call=1500)],
            phases=[PhaseSpec(at_call=args.calls // 2, seed=7)],
        )
        engine = DacceEngine(root=program.main)
        result = validate_run(program, spec, engine)
        status = "ok" if result.ok else "FAILED"
        print(
            "seed %d: %s — %d samples, %d mismatches, %d undecodable, "
            "%d re-encodings"
            % (
                seed,
                status,
                result.samples,
                result.mismatches,
                result.undecodable,
                engine.stats.reencodings,
            )
        )
        if not result.ok:
            failures += 1
            for _sample, message in result.failures[:3]:
                print("   %s" % message[:200])
    return 1 if failures else 0


def _record_program(seed: int):
    """The synthetic program ``dacce record`` runs for a given seed.

    ``dacce static --record-seed N`` must rebuild the *same* program so
    its static graph shares the recording's id space — keep the two in
    lockstep.
    """
    return generate_program(
        GeneratorConfig(
            seed=seed,
            recursive_sites=3,
            indirect_fraction=0.1,
            library_functions=6,
        )
    )


def cmd_record(args) -> int:
    """Run a synthetic workload; write a compact log + decoding state.

    Demonstrates the paper's deployment split: the recording side keeps
    only a few words per context, decoding happens later and elsewhere
    (see ``dacce decode``).
    """
    from .core.events import SampleEvent
    from .core.samplelog import SampleLog
    from .core.serialize import export_decoding_state

    program = _record_program(args.seed)
    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=max(10, args.calls // 500),
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=2, spawn_at_call=args.calls // 10)],
    )
    engine = DacceEngine(root=program.main)
    log = SampleLog()
    from .program.trace import TraceExecutor as _Executor

    for event in _Executor(program, spec).events():
        engine.on_event(event)
        if isinstance(event, SampleEvent):
            log.append(engine.samples[-1])

    log_path = args.prefix + ".log"
    state_path = args.prefix + ".state.json"
    with open(log_path, "wb") as handle:
        handle.write(log.to_bytes())
    export_decoding_state(engine, state_path)
    print("recorded %d contexts (%d bytes, %.1f bytes/context)"
          % (len(log), log.size_bytes, log.bytes_per_sample))
    print("wrote %s and %s" % (log_path, state_path))
    return 0


def cmd_decode(args) -> int:
    """Offline-decode a recorded context log against its state file."""
    from .core.faults import PartialDecode
    from .core.samplelog import SampleLog
    from .core.serialize import load_decoder

    best_effort = getattr(args, "best_effort", False)
    jobs = getattr(args, "jobs", 1) or 1
    decoder = load_decoder(args.state, best_effort=best_effort)
    with open(args.log, "rb") as handle:
        log = SampleLog.from_bytes(handle.read(), best_effort=best_effort)
    for fault in getattr(decoder, "load_faults", []):
        print("state fault: [%s] %s" % (fault["reason"], fault["message"]),
              file=sys.stderr)
    for fault in log.faults:
        print("log fault @%d: [%s] %s"
              % (fault.offset, fault.reason, fault.message), file=sys.stderr)

    samples = log.samples()

    def show(sample, result) -> None:
        if isinstance(result, PartialDecode):
            context = result.context
            marker = "" if result.complete else " (partial: %s)" % (
                result.fault.reason if result.fault else "unknown"
            )
        else:
            context = result
            marker = ""
        path = " -> ".join(
            "fn%d" % step.function
            + ("@%d" % step.callsite if step.callsite is not None else "")
            for step in context.steps
        )
        print("[T%d gTS=%d id=%d] %s%s"
              % (sample.thread, sample.timestamp, sample.context_id, path,
                 marker))

    if jobs > 1:
        from .core.parallel import decode_log_parallel

        stats: dict = {}
        results = decode_log_parallel(
            args.state,
            samples,
            jobs=jobs,
            best_effort=best_effort,
            best_effort_state=best_effort,
            stats=stats,
        )
        for shown, (sample, result) in enumerate(zip(samples, results)):
            if args.limit and shown >= args.limit:
                print("... (%d more)" % (len(samples) - shown))
                break
            show(sample, result)
        print(
            "decoded %d contexts with %d jobs (cache: %d hits / %d misses)"
            % (len(results), stats["jobs"], stats["cache_hits"],
               stats["cache_misses"]),
            file=sys.stderr,
        )
        return 0

    shown = 0
    for sample in samples:
        if args.limit and shown >= args.limit:
            remaining = len(samples) - shown
            print("... (%d more)" % remaining)
            break
        if best_effort:
            show(sample, decoder.decode_best_effort(sample))
        else:
            show(sample, decoder.decode(sample))
        shown += 1
    return 0


def cmd_doctor(args) -> int:
    """Validate a decoding-state file (and optionally a log) offline.

    Checks, in order: the state file parses and carries a supported
    format version; every dictionary passes its checksum (v2) and the
    structural invariants of Algorithm 1; the sample log's framing and
    per-record checksums hold; every sample decodes against the state.
    Exits non-zero with a fault report when anything is damaged.
    """
    from .core.invariants import check_dictionary
    from .core.samplelog import SampleLog
    from .core.serialize import (
        SerializationError,
        _SUPPORTED_VERSIONS,
        decoder_from_dict,
        dictionary_from_dict,
        verify_dictionary_entry,
    )

    problems = []

    def report(message: str) -> None:
        problems.append(message)
        print("FAULT: %s" % message)

    try:
        with open(args.state) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        report("state file unreadable: %s" % error)
        print("doctor: 1 fault, no further checks possible")
        return 1

    version = data.get("format")
    if version not in _SUPPORTED_VERSIONS:
        report("unsupported decoding-state format %r" % version)
    entries = data.get("dictionaries", [])
    checked = 0
    for entry in entries:
        ts = entry.get("timestamp")
        if version == 2:
            try:
                verify_dictionary_entry(entry)
            except SerializationError as error:
                report(str(error))
                continue
        try:
            dictionary = dictionary_from_dict(entry)
        except SerializationError as error:
            report(str(error))
            continue
        for violation in check_dictionary(dictionary):
            report("dictionary ts=%s invariant: %s" % (ts, violation))
        checked += 1
    print("state: format v%s, %d/%d dictionaries verified"
          % (version, checked, len(entries)))

    if args.log:
        try:
            with open(args.log, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            report("log file unreadable: %s" % error)
            raw = None
        if raw is not None:
            log = SampleLog.from_bytes(raw, best_effort=True)
            for fault in log.faults:
                report("log @%d [%s]: %s"
                       % (fault.offset, fault.reason, fault.message))
            decoded = partial = 0
            if version in _SUPPORTED_VERSIONS:
                decoder = decoder_from_dict(data, best_effort=True)
                undecodable = {}
                for sample in log:
                    result = decoder.decode_best_effort(sample)
                    if result.complete:
                        decoded += 1
                    else:
                        partial += 1
                        fault = result.fault
                        key = (fault.reason if fault else "unknown",
                               sample.timestamp)
                        undecodable[key] = undecodable.get(key, 0) + 1
                for (reason, ts), count in sorted(undecodable.items()):
                    report("%d sample(s) at gTS=%d undecodable [%s]"
                           % (count, ts, reason))
            print("log: %d samples recovered, %d decoded, %d partial"
                  % (len(log), decoded, partial))

    if problems:
        print("doctor: %d fault(s) found" % len(problems))
        return 1
    print("doctor: all checks passed")
    return 0


def cmd_static(args) -> int:
    """Extract a static call graph and save it for ``dacce lint``.

    Three extraction modes: ``--source DIR`` runs the AST extractor over
    a Python source tree; ``--benchmark NAME`` runs the exact extractor
    over a synthetic benchmark program (the one ``dacce table1`` &c.
    drive); ``--record-seed N`` extracts the exact program a
    ``dacce record --seed N`` run executed, so ``dacce lint --static``
    can cross-check that recording (the graphs must describe the same
    program — ids from unrelated programs produce meaningless findings).
    """
    from .static import extract_package, extract_program

    modes = [
        args.source is not None,
        args.benchmark is not None,
        args.record_seed is not None,
    ]
    if sum(modes) != 1:
        raise SystemExit(
            "pass exactly one of --source, --benchmark, or --record-seed"
        )
    if args.source:
        graph = extract_package(args.source)
    elif args.record_seed is not None:
        graph = extract_program(_record_program(args.record_seed))
    else:
        suite = full_suite()
        if args.benchmark not in suite.names():
            raise SystemExit(
                "unknown benchmark %r\navailable: %s"
                % (args.benchmark, ", ".join(suite.names()))
            )
        benchmark = suite.get(args.benchmark)
        program = generate_program(benchmark.generator_config(args.scale))
        graph = extract_program(program)
    graph.save(args.output)
    histogram = graph.confidence_histogram()
    print(
        "static graph: %d functions, %d edges (%s), %d unresolved sites"
        % (
            graph.num_functions,
            graph.num_edges,
            ", ".join("%s=%d" % (k, v) for k, v in histogram.items()),
            len(graph.unresolved),
        )
    )
    print("wrote %s" % args.output)
    return 0


def cmd_lint(args) -> int:
    """Verify persisted encoding state; cross-check against a static graph.

    Runs the full invariant suite over every dictionary in the state
    file, scans for id-space hazards and dead encoded edges, and — when
    ``--static`` supplies an extracted graph — verifies that every
    dynamically discovered direct edge was statically predicted (misses
    are static-extractor bugs, reported with source locations).  Exits
    non-zero iff any error-severity finding survives.
    """
    from .static import Severity, StaticCallGraph, has_errors, lint_state
    from .static.graph import StaticAnalysisError

    try:
        with open(args.state) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print("FAULT: state file unreadable: %s" % error)
        return 1

    static_graph = None
    if args.static:
        try:
            static_graph = StaticCallGraph.load(args.static)
        except (OSError, StaticAnalysisError) as error:
            print("FAULT: static graph unreadable: %s" % error)
            return 1

    findings = lint_state(
        data, static_graph=static_graph, margin_bits=args.margin_bits
    )
    for finding in findings:
        print(finding.render())
    by_severity = {severity: 0 for severity in Severity}
    for finding in findings:
        by_severity[finding.severity] += 1
    print(
        "lint: %d error(s), %d warning(s), %d info"
        % (
            by_severity[Severity.ERROR],
            by_severity[Severity.WARNING],
            by_severity[Severity.INFO],
        )
    )
    return 1 if has_errors(findings) else 0


def _telemetry_workload(args):
    """A synthetic workload shared by ``metrics`` and ``trace``.

    Recursion, indirect and tail call sites plus a spawned thread and a
    phase shift, so every telemetry surface (depth histograms, indirect
    dispatch counters, re-encoding pass reports) has something to show.
    """
    program = generate_program(
        GeneratorConfig(
            seed=args.seed,
            recursive_sites=4,
            indirect_fraction=0.12,
            tail_fraction=0.05,
            library_functions=6,
        )
    )
    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=max(10, args.calls // 500),
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=3, spawn_at_call=args.calls // 10)],
        phases=[PhaseSpec(at_call=args.calls // 2, seed=7)],
    )
    return program, spec


def cmd_metrics(args) -> int:
    """Run an instrumented workload; emit the metrics snapshot."""
    from .obs import Telemetry
    from .program.trace import TraceExecutor

    program, spec = _telemetry_workload(args)
    telemetry = Telemetry()
    engine = DacceEngine(root=program.main, telemetry=telemetry)
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)

    if args.format == "json":
        output = telemetry.to_json(indent=2)
    else:
        output = telemetry.to_prometheus()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output)
        print("wrote %s" % args.output)
    else:
        print(output, end="")
    return 0


def cmd_trace(args) -> int:
    """Run an instrumented workload; emit the structured JSONL trace."""
    from .obs import Telemetry
    from .program.trace import TraceExecutor

    program, spec = _telemetry_workload(args)
    handle = open(args.output, "w") if args.output else None
    try:
        telemetry = Telemetry(trace_stream=handle)
        engine = DacceEngine(root=program.main, telemetry=telemetry)
        for event in TraceExecutor(program, spec).events():
            engine.on_event(event)
    finally:
        if handle is not None:
            handle.close()
    if args.output:
        print(
            "wrote %d trace records to %s"
            % (telemetry.trace.emitted, args.output)
        )
    else:
        shown = 0
        for record in telemetry.trace.events():
            if args.limit and shown >= args.limit:
                print(
                    "... (%d more retained, %d emitted)"
                    % (len(telemetry.trace) - shown, telemetry.trace.emitted)
                )
                break
            print(json.dumps(record))
            shown += 1
    return 0


def cmd_experiments(args) -> int:
    """Write the paper-vs-measured EXPERIMENTS.md report."""
    from .analysis.experiments import write_experiments_report

    path = write_experiments_report(
        output=args.output, calls=args.calls, scale=args.scale, seed=args.seed
    )
    print("wrote %s" % path)
    return 0


def _add_common(parser) -> None:
    parser.add_argument("--calls", type=int, default=30_000,
                        help="dynamic calls per benchmark run")
    parser.add_argument("--scale", type=float, default=0.4,
                        help="graph-size scale factor vs the paper's Table 1")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmark names (default: all)")
    parser.add_argument("--csv", default=None,
                        help="also export the results as CSV to this path")
    parser.add_argument("--verbose", action="store_true")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dacce",
        description="DACCE (CGO 2014) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, doc in (
        ("table1", cmd_table1, "reproduce Table 1 (characteristics)"),
        ("fig8", cmd_fig8, "reproduce Figure 8 (runtime overhead)"),
        ("fig9", cmd_fig9, "reproduce Figure 9 (encoding progress)"),
        ("fig10", cmd_fig10, "reproduce Figure 10 (depth CDFs)"),
        ("experiments", cmd_experiments, "write EXPERIMENTS.md"),
    ):
        p = sub.add_parser(name, help=doc)
        _add_common(p)
        p.set_defaults(fn=fn)
        if name == "experiments":
            p.add_argument("--output", default="EXPERIMENTS.md")

    p = sub.add_parser("validate", help="decode-vs-oracle cross validation")
    p.add_argument("--seeds", type=int, default=5)
    p.add_argument("--calls", type=int, default=25_000)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "record", help="run a workload, write compact log + decoding state"
    )
    p.add_argument("--prefix", default="dacce-run")
    p.add_argument("--calls", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("decode", help="offline-decode a recorded log")
    p.add_argument("--state", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--best-effort", action="store_true",
                   help="recover what is decodable from damaged inputs "
                        "instead of aborting on the first fault")
    p.add_argument("--jobs", type=int, default=1,
                   help="decode with N parallel workers (each loads the "
                        "state file read-only and memoizes hot contexts)")
    p.set_defaults(fn=cmd_decode)

    p = sub.add_parser(
        "doctor",
        help="validate a decoding-state file (and optionally a log) offline",
    )
    p.add_argument("--state", required=True)
    p.add_argument("--log", default=None)
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser(
        "static",
        help="extract a static call graph (AST or synthetic) to a file",
    )
    p.add_argument("--source", default=None,
                   help="Python source tree to analyze")
    p.add_argument("--benchmark", default=None,
                   help="synthetic benchmark name to extract exactly")
    p.add_argument("--record-seed", type=int, default=None,
                   help="extract the program of `dacce record --seed N`")
    p.add_argument("--scale", type=float, default=0.4)
    p.add_argument("--output", default="dacce-static.json")
    p.set_defaults(fn=cmd_static)

    p = sub.add_parser(
        "lint",
        help="verify persisted encoding state against invariants "
             "and an optional static call graph",
    )
    p.add_argument("--state", required=True)
    p.add_argument("--static", default=None,
                   help="static graph file from `dacce static`")
    p.add_argument("--margin-bits", type=int, default=8,
                   help="id-space headroom (bits) below which to warn")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "metrics",
        help="run an instrumented workload; print the telemetry snapshot",
    )
    p.add_argument("--calls", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--format", choices=("prom", "json"), default="prom",
                   help="Prometheus text format (default) or JSON snapshot")
    p.add_argument("--output", default=None,
                   help="write to this path instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="run an instrumented workload; print the JSONL engine trace",
    )
    p.add_argument("--calls", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--limit", type=int, default=50,
                   help="max records printed to stdout (0 = all)")
    p.add_argument("--output", default=None,
                   help="stream JSONL records to this path instead")
    p.set_defaults(fn=cmd_trace)

    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.WARNING,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
