"""Command-line harness: regenerate the paper's tables and figures.

Examples::

    dacce table1 --benchmarks 401.bzip2 445.gobmk --calls 30000
    dacce fig8 --scale 0.4
    dacce fig9
    dacce fig10
    dacce validate --seeds 5
    dacce experiments --output EXPERIMENTS.md   # full paper-vs-measured report
    dacce metrics --calls 20000                 # Prometheus-format telemetry
    dacce trace --calls 20000 --limit 30        # structured JSONL engine trace
    dacce trace --input run/trace.jsonl --follow    # live tail (rotation-safe)
    dacce spans report --input spans.jsonl      # per-stage latency summary
    dacce spans waterfall --input producer.jsonl ingest.jsonl   # trace tree
    dacce doctor --state run.state.json --log run.log   # integrity check
    dacce profile record --prefix prof          # sampled profiling run
    dacce profile flame --state prof.state.json --log prof.log \
        --output prof.folded                    # flamegraph.pl input
    dacce profile serve --port 8787 --duration 30   # live profile server
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time
from typing import List, Optional

from .analysis import (
    FIGURE9_BENCHMARKS,
    FIGURE10_BENCHMARKS,
    export_fig8_csv,
    export_fig9_csv,
    export_fig10_csv,
    export_table1_csv,
    measure_benchmark,
    render_figure8,
    render_figure9,
    render_figure10,
    render_table1,
    run_depth_distributions,
    run_progress,
    validate_run,
)
from .bench import full_suite
from .core.engine import DacceEngine
from .program.generator import GeneratorConfig, generate_program
from .program.trace import PhaseSpec, ThreadSpec, WorkloadSpec


def _fault(message: str) -> int:
    """Structured CLI failure, matching the ``dacce doctor`` convention."""
    print("FAULT: %s" % message)
    return 1


def _select(names: Optional[List[str]]):
    suite = full_suite()
    if not names:
        return list(suite)
    missing = [n for n in names if n not in suite.names()]
    if missing:
        raise SystemExit(
            "unknown benchmarks: %s\navailable: %s"
            % (", ".join(missing), ", ".join(suite.names()))
        )
    return [suite.get(n) for n in names]


def _measure_all(args) -> list:
    benchmarks = _select(args.benchmarks)
    measurements = []
    start = time.time()
    for index, benchmark in enumerate(benchmarks):
        measurements.append(
            measure_benchmark(
                benchmark, calls=args.calls, scale=args.scale, seed=args.seed
            )
        )
        if args.verbose:
            print(
                "[%d/%d] %s (%.1fs elapsed)"
                % (index + 1, len(benchmarks), benchmark.name, time.time() - start),
                file=sys.stderr,
            )
    return measurements


def cmd_table1(args) -> int:
    measurements = _measure_all(args)
    print(render_table1(measurements))
    if args.csv:
        print("csv written to %s" % export_table1_csv(measurements, args.csv))
    return 0


def cmd_fig8(args) -> int:
    measurements = _measure_all(args)
    print(render_figure8(measurements))
    if args.csv:
        print("csv written to %s" % export_fig8_csv(measurements, args.csv))
    return 0


def cmd_fig9(args) -> int:
    names = args.benchmarks or list(FIGURE9_BENCHMARKS)
    series = [
        run_progress(b, calls=args.calls, scale=args.scale, seed=args.seed)
        for b in _select(names)
    ]
    print(render_figure9(series))
    if args.csv:
        print("csv written to %s" % export_fig9_csv(series, args.csv))
    return 0


def cmd_fig10(args) -> int:
    names = args.benchmarks or list(FIGURE10_BENCHMARKS)
    distributions = [
        run_depth_distributions(b, calls=args.calls, scale=args.scale, seed=args.seed)
        for b in _select(names)
    ]
    print(render_figure10(distributions))
    if args.csv:
        print("csv written to %s" % export_fig10_csv(distributions, args.csv))
    return 0


def cmd_validate(args) -> int:
    """Decode-vs-oracle cross validation over random workloads."""
    failures = 0
    for seed in range(args.seeds):
        program = generate_program(
            GeneratorConfig(
                seed=seed,
                recursive_sites=4,
                indirect_fraction=0.1,
                tail_fraction=0.05,
                library_functions=6,
                lazy_library=True,
            )
        )
        spec = WorkloadSpec(
            calls=args.calls,
            seed=seed + 1000,
            sample_period=41,
            recursion_affinity=0.4,
            threads=[ThreadSpec(thread=1, entry=3, spawn_at_call=1500)],
            phases=[PhaseSpec(at_call=args.calls // 2, seed=7)],
        )
        engine = DacceEngine(root=program.main)
        result = validate_run(program, spec, engine)
        status = "ok" if result.ok else "FAILED"
        print(
            "seed %d: %s — %d samples, %d mismatches, %d undecodable, "
            "%d re-encodings"
            % (
                seed,
                status,
                result.samples,
                result.mismatches,
                result.undecodable,
                engine.stats.reencodings,
            )
        )
        if not result.ok:
            failures += 1
            for _sample, message in result.failures[:3]:
                print("   %s" % message[:200])
    return 1 if failures else 0


def _record_program(seed: int):
    """The synthetic program ``dacce record`` runs for a given seed.

    ``dacce static --record-seed N`` must rebuild the *same* program so
    its static graph shares the recording's id space — keep the two in
    lockstep.
    """
    return generate_program(
        GeneratorConfig(
            seed=seed,
            recursive_sites=3,
            indirect_fraction=0.1,
            library_functions=6,
        )
    )


def cmd_record(args) -> int:
    """Run a synthetic workload; write a compact log + decoding state.

    Demonstrates the paper's deployment split: the recording side keeps
    only a few words per context, decoding happens later and elsewhere
    (see ``dacce decode``).
    """
    from .core.samplelog import SampleLog
    from .core.serialize import export_decoding_state

    program = _record_program(args.seed)
    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=max(10, args.calls // 500),
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=2, spawn_at_call=args.calls // 10)],
    )
    engine = DacceEngine(root=program.main)
    from .program.trace import run_workload_columnar

    # Drive the engine through the columnar batch path; the collected
    # samples are then bulk-serialised in one pass instead of one
    # append per sample callback.
    run_workload_columnar(program, spec, engine)
    log = SampleLog()
    log.extend_packed(engine.samples)

    log_path = args.prefix + ".log"
    state_path = args.prefix + ".state.json"
    with open(log_path, "wb") as handle:
        handle.write(log.to_bytes())
    export_decoding_state(engine, state_path)
    print("recorded %d contexts (%d bytes, %.1f bytes/context)"
          % (len(log), log.size_bytes, log.bytes_per_sample))
    print("wrote %s and %s" % (log_path, state_path))
    return 0


def cmd_decode(args) -> int:
    """Offline-decode a recorded context log against its state file."""
    from .core.faults import PartialDecode
    from .core.samplelog import SampleLog
    from .core.serialize import load_decoder

    best_effort = getattr(args, "best_effort", False)
    jobs = getattr(args, "jobs", 1) or 1
    try:
        decoder = load_decoder(args.state, best_effort=best_effort)
    except OSError as error:
        return _fault("state file unreadable: %s" % error)
    try:
        with open(args.log, "rb") as handle:
            log = SampleLog.from_bytes(handle.read(), best_effort=best_effort)
    except OSError as error:
        return _fault("log file unreadable: %s" % error)
    for fault in getattr(decoder, "load_faults", []):
        print("state fault: [%s] %s" % (fault["reason"], fault["message"]),
              file=sys.stderr)
    for fault in log.faults:
        print("log fault @%d: [%s] %s"
              % (fault.offset, fault.reason, fault.message), file=sys.stderr)

    samples = log.samples()

    def show(sample, result) -> None:
        if isinstance(result, PartialDecode):
            context = result.context
            marker = "" if result.complete else " (partial: %s)" % (
                result.fault.reason if result.fault else "unknown"
            )
        else:
            context = result
            marker = ""
        path = " -> ".join(
            "fn%d" % step.function
            + ("@%d" % step.callsite if step.callsite is not None else "")
            for step in context.steps
        )
        print("[T%d gTS=%d id=%d] %s%s"
              % (sample.thread, sample.timestamp, sample.context_id, path,
                 marker))

    if jobs > 1:
        from .core.parallel import decode_log_parallel

        stats: dict = {}
        results = decode_log_parallel(
            args.state,
            samples,
            jobs=jobs,
            best_effort=best_effort,
            best_effort_state=best_effort,
            stats=stats,
        )
        for shown, (sample, result) in enumerate(zip(samples, results)):
            if args.limit and shown >= args.limit:
                print("... (%d more)" % (len(samples) - shown))
                break
            show(sample, result)
        print(
            "decoded %d contexts with %d jobs (cache: %d hits / %d misses)"
            % (len(results), stats["jobs"], stats["cache_hits"],
               stats["cache_misses"]),
            file=sys.stderr,
        )
        return 0

    shown = 0
    for sample in samples:
        if args.limit and shown >= args.limit:
            remaining = len(samples) - shown
            print("... (%d more)" % remaining)
            break
        if best_effort:
            show(sample, decoder.decode_best_effort(sample))
        else:
            show(sample, decoder.decode(sample))
        shown += 1
    return 0


def _doctor_events(target: str, report) -> None:
    """Validate a canonical ``events.ndjson`` run log.

    ``target`` is the log file itself or a run directory containing
    one.  Checks every line parses as a ``dacce.events.v1`` envelope,
    the per-run ``sequence`` is strictly monotonic, and the file ends
    on a newline (a torn tail means the writing service died
    mid-append and has not recovered the log yet).
    """
    from .ingest import EnvelopeError, parse_envelope

    path = target
    if os.path.isdir(target):
        path = os.path.join(target, "events.ndjson")
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as error:
        report("event log unreadable: %s" % error)
        return
    torn = b""
    body = raw
    if raw and not raw.endswith(b"\n"):
        cut = raw.rfind(b"\n") + 1
        body, torn = raw[:cut], raw[cut:]
    last_sequence = {}
    events = 0
    for lineno, line in enumerate(
        body.decode("utf-8", errors="replace").splitlines(), 1
    ):
        if not line.strip():
            continue
        try:
            envelope = parse_envelope(line)
        except EnvelopeError as error:
            report("events line %d: %s [%s]" % (lineno, error, error.reason))
            continue
        previous = last_sequence.get(envelope.run, 0)
        if envelope.sequence <= previous:
            report(
                "events line %d: run %r sequence %d is not greater than %d"
                % (lineno, envelope.run, envelope.sequence, previous)
            )
        else:
            last_sequence[envelope.run] = envelope.sequence
        events += 1
    if torn:
        report(
            "events torn tail: final line incomplete (%d byte(s), %r...)"
            % (len(torn), torn[:40].decode("utf-8", errors="replace"))
        )
    print(
        "events: %d envelope(s) across %d run(s)" % (events, len(last_sequence))
    )
    for run, sequence in sorted(last_sequence.items()):
        print("  run %s: sequence watermark %d" % (run, sequence))


def cmd_doctor(args) -> int:
    """Validate persisted artifacts offline; non-zero exit on damage.

    ``--state`` (+ optional ``--log``) checks a decoding-state file:
    it parses and carries a supported format version; every dictionary
    passes its checksum (v2) and the structural invariants of
    Algorithm 1; the sample log's framing and per-record checksums
    hold; every sample decodes against the state.  ``--events`` checks
    a canonical ``events.ndjson`` run log (or the run directory
    holding one): parseable envelopes, strictly-monotonic per-run
    sequence, no torn tail.
    """
    from .core.invariants import check_dictionary
    from .core.samplelog import SampleLog
    from .core.serialize import (
        SerializationError,
        _SUPPORTED_VERSIONS,
        decoder_from_dict,
        dictionary_from_dict,
        verify_dictionary_entry,
    )

    if not args.state and not args.events:
        return _fault("doctor needs --state and/or --events")

    problems = []

    def report(message: str) -> None:
        problems.append(message)
        print("FAULT: %s" % message)

    if args.events:
        _doctor_events(args.events, report)
    if not args.state:
        if problems:
            print("doctor: %d fault(s) found" % len(problems))
            return 1
        print("doctor: all checks passed")
        return 0

    try:
        with open(args.state) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        report("state file unreadable: %s" % error)
        print("doctor: %d fault(s), no further checks possible"
              % len(problems))
        return 1

    version = data.get("format")
    if version not in _SUPPORTED_VERSIONS:
        report("unsupported decoding-state format %r" % version)
    entries = data.get("dictionaries", [])
    checked = 0
    for entry in entries:
        ts = entry.get("timestamp")
        if version == 2:
            try:
                verify_dictionary_entry(entry)
            except SerializationError as error:
                report(str(error))
                continue
        try:
            dictionary = dictionary_from_dict(entry)
        except SerializationError as error:
            report(str(error))
            continue
        for violation in check_dictionary(dictionary):
            report("dictionary ts=%s invariant: %s" % (ts, violation))
        checked += 1
    print("state: format v%s, %d/%d dictionaries verified"
          % (version, checked, len(entries)))

    if args.log:
        try:
            with open(args.log, "rb") as handle:
                raw = handle.read()
        except OSError as error:
            report("log file unreadable: %s" % error)
            raw = None
        if raw is not None:
            log = SampleLog.from_bytes(raw, best_effort=True)
            for fault in log.faults:
                report("log @%d [%s]: %s"
                       % (fault.offset, fault.reason, fault.message))
            decoded = partial = 0
            if version in _SUPPORTED_VERSIONS:
                decoder = decoder_from_dict(data, best_effort=True)
                undecodable = {}
                for sample in log:
                    result = decoder.decode_best_effort(sample)
                    if result.complete:
                        decoded += 1
                    else:
                        partial += 1
                        fault = result.fault
                        key = (fault.reason if fault else "unknown",
                               sample.timestamp)
                        undecodable[key] = undecodable.get(key, 0) + 1
                for (reason, ts), count in sorted(undecodable.items()):
                    report("%d sample(s) at gTS=%d undecodable [%s]"
                           % (count, ts, reason))
            print("log: %d samples recovered, %d decoded, %d partial"
                  % (len(log), decoded, partial))

    if problems:
        print("doctor: %d fault(s) found" % len(problems))
        return 1
    print("doctor: all checks passed")
    return 0


def cmd_static(args) -> int:
    """Extract a static call graph and save it for ``dacce lint``.

    Three extraction modes: ``--source DIR`` runs the AST extractor over
    a Python source tree; ``--benchmark NAME`` runs the exact extractor
    over a synthetic benchmark program (the one ``dacce table1`` &c.
    drive); ``--record-seed N`` extracts the exact program a
    ``dacce record --seed N`` run executed, so ``dacce lint --static``
    can cross-check that recording (the graphs must describe the same
    program — ids from unrelated programs produce meaningless findings).
    """
    from .static import extract_package, extract_program

    modes = [
        args.source is not None,
        args.benchmark is not None,
        args.record_seed is not None,
    ]
    if sum(modes) != 1:
        raise SystemExit(
            "pass exactly one of --source, --benchmark, or --record-seed"
        )
    if args.source:
        if not os.path.isdir(args.source):
            return _fault(
                "source tree unreadable: %r is not a directory" % args.source
            )
        try:
            graph = extract_package(args.source)
        except OSError as error:
            return _fault("source tree unreadable: %s" % error)
    elif args.record_seed is not None:
        graph = extract_program(_record_program(args.record_seed))
    else:
        suite = full_suite()
        if args.benchmark not in suite.names():
            raise SystemExit(
                "unknown benchmark %r\navailable: %s"
                % (args.benchmark, ", ".join(suite.names()))
            )
        benchmark = suite.get(args.benchmark)
        program = generate_program(benchmark.generator_config(args.scale))
        graph = extract_program(program)
    try:
        graph.save(args.output)
    except OSError as error:
        return _fault("static graph unwritable: %s" % error)
    histogram = graph.confidence_histogram()
    print(
        "static graph: %d functions, %d edges (%s), %d unresolved sites"
        % (
            graph.num_functions,
            graph.num_edges,
            ", ".join("%s=%d" % (k, v) for k, v in histogram.items()),
            len(graph.unresolved),
        )
    )
    print("wrote %s" % args.output)
    return 0


def cmd_lint(args) -> int:
    """Verify persisted encoding state; cross-check against a static graph.

    Runs the full invariant suite over every dictionary in the state
    file, scans for id-space hazards and dead encoded edges, and — when
    ``--static`` supplies an extracted graph — verifies that every
    dynamically discovered direct edge was statically predicted (misses
    are static-extractor bugs, reported with source locations).  Exits
    non-zero iff any error-severity finding survives.
    """
    from .static import Severity, StaticCallGraph, has_errors, lint_state
    from .static.graph import StaticAnalysisError
    from .static.lint import lint_targets

    try:
        with open(args.state) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print("FAULT: state file unreadable: %s" % error)
        return 1

    static_graph = None
    if args.static:
        try:
            static_graph = StaticCallGraph.load(args.static)
        except (OSError, StaticAnalysisError) as error:
            print("FAULT: static graph unreadable: %s" % error)
            return 1

    specs = None
    if args.targets:
        if static_graph is None:
            return _fault(
                "--targets needs --static to resolve sink names to ids"
            )
        from .static.reachability import load_targets

        try:
            specs = load_targets(args.targets)
        except OSError as error:
            return _fault("targets manifest unreadable: %s" % error)
        except StaticAnalysisError as error:
            return _fault("targets manifest invalid: %s" % error)

    findings = lint_state(
        data, static_graph=static_graph, margin_bits=args.margin_bits
    )
    if specs is not None:
        findings.extend(lint_targets(data, specs, static_graph))
    for finding in findings:
        print(finding.render())
    by_severity = {severity: 0 for severity in Severity}
    for finding in findings:
        by_severity[finding.severity] += 1
    print(
        "lint: %d error(s), %d warning(s), %d info"
        % (
            by_severity[Severity.ERROR],
            by_severity[Severity.WARNING],
            by_severity[Severity.INFO],
        )
    )
    return 1 if has_errors(findings) else 0


def cmd_guard_record(args) -> int:
    """Record a targeted run with per-sink context capture.

    Builds the sink-reaching plan from a ``targets.json`` manifest over
    the exact program ``dacce record --seed N`` runs, drives the same
    workload through a targeted engine, and snapshots the encoded
    context at every call into a sink.  Writes ``PREFIX.state.json``
    (decoding state) and ``PREFIX.guard.json`` (counted sink contexts,
    each stored with its record-time decoded path) for
    ``dacce guard check``.
    """
    from .core.serialize import export_decoding_state
    from .guard import GuardRecorder, write_guard
    from .program.trace import TraceExecutor
    from .static import extract_program
    from .static.graph import StaticAnalysisError
    from .static.reachability import load_targets
    from .static.targeted import build_targeted

    try:
        specs = load_targets(args.targets)
    except OSError as error:
        return _fault("targets manifest unreadable: %s" % error)
    except StaticAnalysisError as error:
        return _fault("targets manifest invalid: %s" % error)

    program = _record_program(args.seed)
    static = extract_program(program)
    try:
        plan = build_targeted(static, specs)
    except StaticAnalysisError as error:
        return _fault("targeted plan failed: %s" % error)

    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=max(10, args.calls // 500),
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=2, spawn_at_call=args.calls // 10)],
    )
    engine = DacceEngine(targeted=plan)
    recorder = GuardRecorder(engine, plan.sinks)
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
        recorder.observe(event)
    hits = recorder.finish()

    state_path = args.prefix + ".state.json"
    guard_path = args.prefix + ".guard.json"
    names = {fn.id: fn.qualname for fn in static.functions()}
    try:
        export_decoding_state(engine, state_path)
        write_guard(hits, plan.sinks, guard_path, names=names)
    except OSError as error:
        return _fault("guard output unwritable: %s" % error)

    summary = plan.summary()
    print(
        "targeted %d/%d functions (%.1f%%), %d sink(s), "
        "static max_id %d (%s)"
        % (
            summary["functions"],
            summary["total_functions"],
            plan.instrumented_fraction * 100.0,
            len(plan.sinks),
            plan.report.proof.max_id,
            "collision-free"
            if plan.report.proof.collision_free
            else "NOT collision-free",
        )
    )
    print(
        "captured %d sink call(s) across %d distinct context(s)"
        % (sum(hit.count for hit in hits), len(hits))
    )
    print("wrote %s and %s" % (state_path, guard_path))
    return 0


def cmd_guard_check(args) -> int:
    """Check a guard recording against a policy (and a baseline).

    Re-decodes every stored sink context from the state file (a
    mismatch with the stored path is itself a violation), applies
    allow / deny / rate-limit rules to the decoded paths, and — with
    ``--baseline`` — scores how far the context mix drifted from a
    previous recording.  Exits non-zero iff any violation is found.
    """
    from .core.serialize import SerializationError, load_decoder
    from .guard import (
        GuardError,
        Violation,
        anomaly_scores,
        evaluate_policy,
        load_guard,
        load_policy,
        render_path,
        verify_hits,
    )

    try:
        decoder = load_decoder(args.state)
    except OSError as error:
        return _fault("state file unreadable: %s" % error)
    except SerializationError as error:
        return _fault("state file invalid: %s" % error)
    try:
        guard = load_guard(args.guard)
    except OSError as error:
        return _fault("guard log unreadable: %s" % error)
    except GuardError as error:
        return _fault("guard log invalid: %s" % error)
    try:
        policy = load_policy(args.policy).resolve(guard.names)
    except OSError as error:
        return _fault("policy unreadable: %s" % error)
    except GuardError as error:
        return _fault("policy invalid: %s" % error)

    violations = verify_hits(decoder, guard.hits)
    violations.extend(evaluate_policy(guard.hits, policy))

    if args.baseline:
        try:
            baseline = load_guard(args.baseline)
        except OSError as error:
            return _fault("baseline guard log unreadable: %s" % error)
        except GuardError as error:
            return _fault("baseline guard log invalid: %s" % error)
        scores = anomaly_scores(guard.hits, baseline.hits)
        worst = max(scores.values(), default=0.0)
        novel = sum(1 for score in scores.values() if score >= 1.0)
        print(
            "anomaly: %d context(s) scored against baseline, "
            "%d never seen before, worst score %.3f"
            % (len(scores), novel, worst)
        )
        if args.max_anomaly is not None and worst > args.max_anomaly:
            offender = max(scores, key=lambda path: scores[path])
            violations.append(
                Violation(
                    kind="anomaly",
                    message="context mix drifted %.3f > %.3f (worst: %s)"
                    % (
                        worst,
                        args.max_anomaly,
                        render_path(offender, guard.names),
                    ),
                    path=offender,
                )
            )

    for violation in violations:
        print(
            "guard violation [%s]: %s"
            % (violation.kind, violation.message)
        )
    print(
        "guard: %d sink call(s) in %d context(s), %d violation(s)"
        % (guard.total, len(guard.hits), len(violations))
    )
    return 1 if violations else 0


def _telemetry_workload(args):
    """A synthetic workload shared by ``metrics`` and ``trace``.

    Recursion, indirect and tail call sites plus a spawned thread and a
    phase shift, so every telemetry surface (depth histograms, indirect
    dispatch counters, re-encoding pass reports) has something to show.
    """
    program = generate_program(
        GeneratorConfig(
            seed=args.seed,
            recursive_sites=4,
            indirect_fraction=0.12,
            tail_fraction=0.05,
            library_functions=6,
        )
    )
    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=max(10, args.calls // 500),
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=3, spawn_at_call=args.calls // 10)],
        phases=[PhaseSpec(at_call=args.calls // 2, seed=7)],
    )
    return program, spec


def cmd_metrics(args) -> int:
    """Run an instrumented workload; emit the metrics snapshot."""
    from .obs import Telemetry
    from .program.trace import TraceExecutor

    program, spec = _telemetry_workload(args)
    telemetry = Telemetry()
    engine = DacceEngine(root=program.main, telemetry=telemetry)
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)

    if args.format == "json":
        output = telemetry.to_json(indent=2)
    else:
        output = telemetry.to_prometheus()
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(output)
        except OSError as error:
            return _fault("metrics output unwritable: %s" % error)
        print("wrote %s" % args.output)
    else:
        print(output, end="")
    return 0


def cmd_trace(args) -> int:
    """Run an instrumented workload; emit the structured JSONL trace."""
    from .obs import Telemetry
    from .program.trace import TraceExecutor

    if args.input:
        if args.follow:
            # Tail mode: poll the active file and keep reading across
            # size/age rotations (the renamed shard is drained before
            # the cursor resets to the new active file).  The file may
            # not exist yet — the writer can come up later.
            from .obs import follow_rotated_jsonl

            shown = 0
            try:
                for record in follow_rotated_jsonl(
                    args.input, poll=args.poll, duration=args.duration
                ):
                    print(json.dumps(record), flush=True)
                    shown += 1
                    if args.limit and shown >= args.limit:
                        break
            except KeyboardInterrupt:
                pass
            except ValueError as error:
                return _fault(str(error))
            print("followed %d record(s) from %s" % (shown, args.input),
                  file=sys.stderr)
            return 0
        # Read-back mode: print an existing (possibly rotated) trace in
        # chronological order — shards trace.jsonl.N .. .1, then the
        # active file.
        from .obs import read_rotated_jsonl, rotated_files

        if not rotated_files(args.input):
            return _fault("trace input unreadable: %r has no shards" % args.input)
        shown = 0
        for record in read_rotated_jsonl(args.input):
            if args.limit and shown >= args.limit:
                print("... (stopped at --limit %d)" % args.limit)
                break
            print(json.dumps(record))
            shown += 1
        return 0

    program, spec = _telemetry_workload(args)
    try:
        handle = open(args.output, "w") if args.output else None
    except OSError as error:
        return _fault("trace output unwritable: %s" % error)
    try:
        telemetry = Telemetry(trace_stream=handle)
        engine = DacceEngine(root=program.main, telemetry=telemetry)
        for event in TraceExecutor(program, spec).events():
            engine.on_event(event)
    finally:
        if handle is not None:
            handle.close()
    if args.output:
        print(
            "wrote %d trace records to %s"
            % (telemetry.trace.emitted, args.output)
        )
    else:
        shown = 0
        for record in telemetry.trace.events():
            if args.limit and shown >= args.limit:
                print(
                    "... (%d more retained, %d emitted)"
                    % (len(telemetry.trace) - shown, telemetry.trace.emitted)
                )
                break
            print(json.dumps(record))
            shown += 1
    return 0


# ----------------------------------------------------------------------
# continuous profiling (repro.prof)
# ----------------------------------------------------------------------
def _profile_names(path: Optional[str]):
    """Load a ``{function_id: name}`` sidecar written by profile record."""
    from .prof import default_names, names_from_mapping

    if path is None:
        return default_names, None
    try:
        with open(path) as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return None, "names file unreadable: %s" % error
    return names_from_mapping({int(k): str(v) for k, v in raw.items()}), None


def _profile_aggregate(state: str, log_path: str, jobs: int, names):
    """Batch-aggregate a recorded log; returns (aggregator, error)."""
    from .core.samplelog import SampleLog
    from .prof import CCTAggregator

    if not os.path.exists(state):
        return None, "state file unreadable: %r does not exist" % state
    try:
        with open(log_path, "rb") as handle:
            log = SampleLog.from_bytes(handle.read(), best_effort=True)
    except OSError as error:
        return None, "log file unreadable: %s" % error
    stats: dict = {}
    try:
        aggregator = CCTAggregator.aggregate_log(
            state,
            log.samples(),
            jobs=max(1, jobs),
            names=names,
            best_effort_state=True,
            stats=stats,
        )
    except OSError as error:
        return None, "state file unreadable: %s" % error
    aggregator.decode_stats = stats  # type: ignore[attr-defined]
    return aggregator, None


def cmd_profile_record(args) -> int:
    """Run a sampled synthetic workload; write log + state + names.

    Unlike ``dacce record`` (explicit SampleEvents in the stream), this
    drives the engine's continuous-profiling hook: every Nth applied
    call captures ``(context_id, gTimeStamp, ccStack)`` through the
    batched fast lane, which is the always-on profiler deployment the
    paper evaluates in Section 6.
    """
    from .core.samplelog import SampleLog
    from .core.serialize import export_decoding_state
    from .prof import render_overhead, self_overhead_account
    from .program.trace import run_workload_batched

    program = _record_program(args.seed)
    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=0,
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=2, spawn_at_call=args.calls // 10)],
    )
    engine = DacceEngine(root=program.main)
    log = SampleLog()
    engine.install_sample_hook(
        args.sample_every, lambda sample, weight: log.append(sample)
    )
    run_workload_batched(program, spec, engine)

    log_path = args.prefix + ".log"
    state_path = args.prefix + ".state.json"
    names_path = args.prefix + ".names.json"
    try:
        with open(log_path, "wb") as handle:
            handle.write(log.to_bytes())
        export_decoding_state(engine, state_path)
        with open(names_path, "w") as handle:
            json.dump(
                {fn.id: fn.name for fn in program.functions()},
                handle,
                indent=0,
            )
    except OSError as error:
        return _fault("profile output unwritable: %s" % error)
    print(
        "profiled %d calls at 1/%d: %d samples (%d bytes, %.1f bytes/sample)"
        % (args.calls, args.sample_every, len(log), log.size_bytes,
           log.bytes_per_sample)
    )
    print("wrote %s, %s and %s" % (log_path, state_path, names_path))
    print()
    print(render_overhead(self_overhead_account(engine)))
    return 0


def cmd_profile_report(args) -> int:
    """Aggregate a recorded profile into a CCT; print the hot contexts."""
    from .prof import render_top

    names, error = _profile_names(args.names)
    if error:
        return _fault(error)
    aggregator, error = _profile_aggregate(args.state, args.log, args.jobs, names)
    if error:
        return _fault(error)
    stats = aggregator.stats()
    print(
        "profile: %d samples (%d partial) over %d epoch(s), "
        "%d CCT nodes, max depth %d"
        % (stats["samples"], stats["samples_partial"], stats["epochs"],
           stats["nodes"], stats["max_depth"])
    )
    print()
    print(render_top(aggregator, n=args.top, by=args.by))
    return 0


def cmd_profile_flame(args) -> int:
    """Export a recorded profile as folded stacks (flamegraph.pl input)."""
    from .prof import to_folded

    names, error = _profile_names(args.names)
    if error:
        return _fault(error)
    aggregator, error = _profile_aggregate(args.state, args.log, args.jobs, names)
    if error:
        return _fault(error)
    folded = to_folded(aggregator)
    stats = aggregator.stats()
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(folded + "\n")
        except OSError as error_:
            return _fault("folded output unwritable: %s" % error_)
        print(
            "wrote %d stacks to %s (total weight %g, <partial> weight %g)"
            % (len(folded.splitlines()), args.output, stats["weight"],
               stats["weight_partial"])
        )
    else:
        print(folded)
    return 0


def cmd_profile_diff(args) -> int:
    """Compare two recorded profiles node-by-node."""
    from .prof import diff_profiles, flatten

    def load_side(state, log_path, folded_path, names_path, side):
        if folded_path is not None:
            try:
                with open(folded_path) as handle:
                    return flatten(handle.read()), None
            except (OSError, ValueError) as error:
                return None, "folded file (%s) unreadable: %s" % (side, error)
        if not state or not log_path:
            return None, (
                "side %s needs --state-%s and --log-%s (or --folded-%s)"
                % (side, side, side, side)
            )
        names, error = _profile_names(names_path)
        if error:
            return None, error
        aggregator, error = _profile_aggregate(state, log_path, args.jobs, names)
        if error:
            return None, "%s (%s side)" % (error, side)
        return flatten(aggregator), None

    before, error = load_side(
        args.state_a, args.log_a, args.folded_a, args.names_a, "a"
    )
    if error:
        return _fault(error)
    after, error = load_side(
        args.state_b, args.log_b, args.folded_b, args.names_b, "b"
    )
    if error:
        return _fault(error)

    result = diff_profiles(before, after, threshold=args.threshold)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(result.render(limit=args.limit))
    return 0


def cmd_profile_serve(args) -> int:
    """Serve a live profile of a continuously running synthetic workload."""
    from dataclasses import replace

    from .core.engine import DacceConfig
    from .obs import RotatingTraceStream, Telemetry
    from .prof import CCTAggregator, ProfileServer, ProfileService, names_from_program
    from .program.trace import run_workload_batched

    from .obs.trace import DEFAULT_ROTATE_BACKUPS, DEFAULT_ROTATE_BYTES

    trace_stream = None
    if args.trace_output:
        try:
            trace_stream = RotatingTraceStream(
                args.trace_output,
                max_bytes=(args.trace_max_bytes
                           if args.trace_max_bytes is not None
                           else DEFAULT_ROTATE_BYTES),
                max_age_seconds=args.trace_max_age,
                backups=(args.trace_backups
                         if args.trace_backups is not None
                         else DEFAULT_ROTATE_BACKUPS),
            )
        except (OSError, ValueError) as error:
            return _fault("trace output unwritable: %s" % error)

    program, _ = _telemetry_workload(args)
    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=0,
        recursion_affinity=0.4,
    )
    telemetry = Telemetry(trace_stream=trace_stream)
    # Hook samples feed the CCT; nothing needs retaining on the engine.
    engine = DacceEngine(
        root=program.main,
        config=DacceConfig(retain_samples=False),
        telemetry=telemetry,
    )
    aggregator = CCTAggregator(names=names_from_program(program))

    def deliver(sample, weight) -> None:
        aggregator.decoder = engine.decoder()
        aggregator.add_sample(sample, weight)

    engine.install_sample_hook(args.sample_every, deliver)
    service = ProfileService(aggregator, engine=engine, telemetry=telemetry)
    try:
        server = ProfileServer(service, host=args.host, port=args.port)
    except OSError as error:
        return _fault("cannot bind %s:%d: %s" % (args.host, args.port, error))
    server.start()
    print("profile server listening on %s" % server.url, flush=True)

    deadline = (time.time() + args.duration) if args.duration else None
    passes = 0
    try:
        while deadline is None or time.time() < deadline:
            run_workload_batched(
                program, replace(spec, seed=spec.seed + passes), engine
            )
            passes += 1
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        if trace_stream is not None:
            trace_stream.close()
    stats = aggregator.stats()
    print(
        "served %d workload pass(es): %d samples into %d CCT nodes "
        "across %d epoch(s)"
        % (passes, stats["samples"], stats["nodes"], stats["epochs"])
    )
    return 0


# ----------------------------------------------------------------------
# event ingestion plane (repro.ingest)
# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    """Run the fleet ingestion service: frames in, canonical events out.

    Accepts ``dacce.engine.events.v1`` frames over ``POST /ingest``
    (and, with ``--stdin`` or ``--from``, from a pipe or a recorded
    file), persists the canonical ``dacce.events.v1`` log per run and
    serves the merged many-producer view (``/cct``, ``/flame``,
    ``/top``, ``/metrics``) plus live SSE (``/events``).
    """
    from .ingest import IngestServer, IngestService

    spans = None
    span_stream = None
    if args.span_log:
        # Service-side spans continue the trace each frame propagates;
        # /spans serves the in-memory ring, this log is the durable copy.
        from .obs import RotatingTraceStream, SpanRecorder

        try:
            span_stream = RotatingTraceStream(args.span_log)
        except (OSError, ValueError) as error:
            return _fault("span log unwritable: %s" % error)
        spans = SpanRecorder("ingest", stream=span_stream)

    service = IngestService(data_dir=args.data_dir, spans=spans)
    recovery = service.recovery
    if recovery["events"] or recovery["torn_lines"]:
        # Crash recovery: the data dir already held canonical logs and
        # the service re-folded them (no re-ingestion) before serving.
        print(
            "recovered %d event(s) across %d run(s) from %s "
            "(%d torn line(s) truncated, %d bad line(s) skipped)"
            % (recovery["events"], recovery["runs"], args.data_dir,
               recovery["torn_lines"], recovery["bad_lines"]),
            flush=True,
        )
    try:
        server = IngestServer(service, host=args.host, port=args.port)
    except OSError as error:
        return _fault("cannot bind %s:%d: %s" % (args.host, args.port, error))

    # A recorded frame file is pre-loaded before the banner goes out:
    # once a client can learn the URL, /cct already reflects the file
    # (the banner is the readiness signal scripts key on).
    if getattr(args, "from_file", None):
        try:
            with open(args.from_file) as handle:
                summary = service.ingest_stream(handle, args.run)
        except OSError as error:
            server.shutdown()
            return _fault("frame file unreadable: %s" % error)
        print(
            "ingested %s: %d folded, %d skipped, %d rejected "
            "(run %s, sequence %d)"
            % (args.from_file, summary["folded"], summary["skipped"],
               summary["rejected"], args.run, summary["last_sequence"]),
            flush=True,
        )

    server.start()
    print("ingest server listening on %s" % server.url, flush=True)
    if args.data_dir:
        print("persisting canonical event logs under %s" % args.data_dir,
              flush=True)

    try:
        if args.stdin:
            summary = service.ingest_stream(sys.stdin, args.run)
            print(
                "ingested stdin: %d folded, %d skipped, %d rejected"
                % (summary["folded"], summary["skipped"], summary["rejected"]),
                flush=True,
            )
        deadline = (time.time() + args.duration) if args.duration else None
        while deadline is None or time.time() < deadline:
            time.sleep(0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        if spans is not None:
            spans.flush()
            span_stream.close()
    health = service.healthz()
    print(
        "served %d run(s): %d samples, total weight %g"
        % (health["runs"], health["samples"], health["weight"])
    )
    return 0


def cmd_events_record(args) -> int:
    """Run a synthetic producer; emit engine event frames.

    The producer contract: frames (and nothing else) go to the frame
    destination — stdout with ``--frames -`` (human output moves to
    stderr), a file, or an ingestion server via ``--url``.
    """
    from .ingest import FileFrameSink, FrameEmitter, HTTPFrameSink, SinkError
    from .ingest import SpoolingSink, StdoutFrameSink, new_run_id
    from .program.trace import run_workload_batched

    run = args.run or new_run_id()
    to_stdout = args.url is None and args.frames == "-"
    human = sys.stderr if to_stdout else sys.stdout

    spans = None
    span_stream = None
    if args.span_log:
        # One trace per emitter flush; the ids travel in each frame's
        # additive `trace` field so `dacce spans waterfall` can stitch
        # this log together with the ingest service's.
        from .obs import RotatingTraceStream, SpanRecorder

        try:
            span_stream = RotatingTraceStream(args.span_log)
        except (OSError, ValueError) as error:
            return _fault("span log unwritable: %s" % error)
        spans = SpanRecorder("producer", stream=span_stream)

    spool_dir = None
    if args.url is not None:
        sink = HTTPFrameSink(args.url, run=run)
        if args.spool:
            # Durable delivery: failed flushes spill to CRC-framed
            # segments and retry with backoff; segments left by a
            # previous crashed producer of the *same run* are adopted.
            # The run id namespaces the directory because segments
            # store raw frame lines while the run identity travels in
            # the POST URL — replaying another run's segments would
            # deliver its frames into this run's sequence space.
            spool_dir = os.path.join(args.spool, run)
            sink = SpoolingSink(sink, spool_dir)
    elif to_stdout:
        sink = StdoutFrameSink()
    else:
        try:
            sink = FileFrameSink(args.frames)
        except OSError as error:
            return _fault("frame output unwritable: %s" % error)

    program = _record_program(args.seed)
    spec = WorkloadSpec(
        calls=args.calls,
        seed=args.seed + 1,
        sample_period=0,
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=2, spawn_at_call=args.calls // 10)],
    )
    engine = DacceEngine(root=program.main, spans=spans)
    emitter = FrameEmitter(
        sink,
        run=run,
        producer="dacce-events-record",
        heartbeat_every=args.heartbeat,
        spans=spans,
    )
    emitter.attach(
        engine,
        every=args.sample_every,
        names={fn.id: fn.name for fn in program.functions()},
    )
    run_workload_batched(program, spec, engine)
    emitter.complete()
    try:
        sink.flush()
    except SinkError as error:
        return _fault("frame delivery failed: %s" % error)
    if isinstance(sink, SpoolingSink):
        if args.drain_timeout > 0 and sink.pending():
            sink.drain(args.drain_timeout)
        if sink.pending_frames:
            # Durable, not lost: the spool outlives this process and a
            # later producer (or drain) delivers it, so this is success.
            print(
                "spooled: %d undelivered frame(s) kept under %s"
                % (sink.pending_frames, spool_dir),
                file=human,
            )
        if sink.frames_dropped:
            print(
                "dropped: %d frame(s) accounted via fault frames"
                % sink.frames_dropped,
                file=human,
            )
    sink.close()
    if spans is not None:
        spans.flush()
        span_stream.close()
        print(
            "spans: %d recorded to %s" % (spans.emitted, args.span_log),
            file=human,
        )
    print(
        "run %s: %d calls at 1/%d -> %d frames (%d samples), %d dropped"
        % (run, args.calls, args.sample_every, emitter.frames_emitted,
           emitter.samples_emitted, emitter.frames_dropped),
        file=human,
    )
    if emitter.sink_errors:
        return _fault("frame delivery failed %d time(s)" % emitter.sink_errors)
    return 0


def cmd_events_replay(args) -> int:
    """Rebuild service state from a canonical ``events.ndjson`` log.

    Validates the log (schema, strictly monotonic per-run sequence) and
    folds every envelope through the same path live ingestion uses, so
    ``--cct``/``--metrics`` outputs are byte-identical to what the live
    service served — the CI replay-determinism gate diffs exactly that.
    """
    from .ingest import ReplayError, replay_file

    try:
        service, report = replay_file(args.log, strict=not args.lenient)
    except OSError as error:
        return _fault("event log unreadable: %s" % error)
    except ReplayError as error:
        return _fault(str(error))
    outcomes = report.outcomes
    print(
        "replayed %d event(s) across %d run(s): %d folded, %d skipped, "
        "%d rejected"
        % (report.events, report.runs, outcomes.get("folded", 0),
           outcomes.get("skipped", 0), outcomes.get("rejected", 0))
    )
    for error_line in report.errors:
        print("  invalid: %s" % error_line)
    try:
        if args.cct:
            with open(args.cct, "w") as handle:
                handle.write(service.cct_json())
            print("wrote %s" % args.cct)
        if args.metrics:
            with open(args.metrics, "w") as handle:
                handle.write(service.metrics_text())
            print("wrote %s" % args.metrics)
        if args.flame:
            with open(args.flame, "w") as handle:
                handle.write(service.flame_text())
            print("wrote %s" % args.flame)
    except OSError as error:
        return _fault("replay output unwritable: %s" % error)
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# span tracing (repro.obs.spans)
# ----------------------------------------------------------------------
def cmd_spans_report(args) -> int:
    """Per-stage latency summary over one or more span JSONL logs."""
    from .obs import load_span_records, stage_summary

    records = list(load_span_records(args.input, backups=args.backups))
    if not records:
        return _fault("no span records found in: %s" % ", ".join(args.input))
    summary = stage_summary(records)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    services = sorted({str(r.get("svc") or "?") for r in records})
    traces = {r["trace"] for r in records}
    print(
        "%d span(s) across %d trace(s) from %d service(s): %s"
        % (len(records), len(traces), len(services), ", ".join(services))
    )
    print()
    header = "%-8s %-24s %7s %10s %9s %9s %9s" % (
        "stage", "name", "count", "total(s)", "p50(ms)", "p95(ms)", "max(ms)"
    )
    print(header)
    print("-" * len(header))
    for row in summary.values():
        print(
            "%-8s %-24s %7d %10.4f %9.3f %9.3f %9.3f"
            % (
                row["stage"], row["name"], row["count"], row["total"],
                row["p50"] * 1e3, row["p95"] * 1e3, row["max"] * 1e3,
            )
        )
    return 0


def cmd_spans_waterfall(args) -> int:
    """Reconstruct per-trace span trees across producer + service logs.

    Pass every side's span log as ``--input`` (the producer's and the
    ingest service's); spans sharing a trace id are stitched into one
    tree even though they were recorded by different processes.  By
    default the single best trace is printed — the one covering the
    most pipeline stages — which is what a smoke run greps for.
    """
    from .obs import (
        PIPELINE_STAGES,
        build_waterfall,
        group_traces,
        load_span_records,
    )

    records = list(load_span_records(args.input, backups=args.backups))
    if not records:
        return _fault("no span records found in: %s" % ", ".join(args.input))
    traces = group_traces(records)

    if args.trace:
        if args.trace not in traces:
            return _fault(
                "trace %r not found (%d trace(s) in the log(s))"
                % (args.trace, len(traces))
            )
        selected = [args.trace]
    elif args.all:
        selected = sorted(traces, key=lambda t: traces[t][0]["ts"])
        if args.limit:
            selected = selected[: args.limit]
    else:
        def coverage(trace_id: str):
            stages = {r.get("stage") for r in traces[trace_id]}
            return (len(stages & set(PIPELINE_STAGES)), len(traces[trace_id]))

        selected = [max(traces, key=coverage)]

    covered: set = set()
    for trace_id in selected:
        spans = traces[trace_id]
        stages = [
            s for s in PIPELINE_STAGES
            if any(r.get("stage") == s for r in spans)
        ]
        covered.update(stages)
        print(
            "trace %s — %d span(s), stages %d/%d: %s"
            % (trace_id, len(spans), len(stages), len(PIPELINE_STAGES),
               " ".join(stages) or "-")
        )
        base = spans[0]["ts"]
        for depth, record in build_waterfall(spans):
            print(
                "  %-7s %s%s  svc=%s +%.3fms %.3fms"
                % (
                    record.get("stage") or "-",
                    "  " * depth,
                    record.get("name") or "?",
                    record.get("svc") or "?",
                    (float(record["ts"]) - base) * 1e3,
                    float(record["dur"]) * 1e3,
                )
            )
        print()

    if args.require_stages:
        required = (
            list(PIPELINE_STAGES)
            if args.require_stages == "all"
            else [s.strip() for s in args.require_stages.split(",") if s.strip()]
        )
        missing = [s for s in required if s not in covered]
        if missing:
            return _fault(
                "stage(s) missing from the printed trace(s): %s"
                % ", ".join(missing)
            )
        print("all required stages covered: %s" % " ".join(required))
    return 0


def cmd_experiments(args) -> int:
    """Write the paper-vs-measured EXPERIMENTS.md report."""
    from .analysis.experiments import write_experiments_report

    path = write_experiments_report(
        output=args.output, calls=args.calls, scale=args.scale, seed=args.seed
    )
    print("wrote %s" % path)
    return 0


def _add_common(parser) -> None:
    parser.add_argument("--calls", type=int, default=30_000,
                        help="dynamic calls per benchmark run")
    parser.add_argument("--scale", type=float, default=0.4,
                        help="graph-size scale factor vs the paper's Table 1")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="benchmark names (default: all)")
    parser.add_argument("--csv", default=None,
                        help="also export the results as CSV to this path")
    parser.add_argument("--verbose", action="store_true")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="dacce",
        description="DACCE (CGO 2014) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, fn, doc in (
        ("table1", cmd_table1, "reproduce Table 1 (characteristics)"),
        ("fig8", cmd_fig8, "reproduce Figure 8 (runtime overhead)"),
        ("fig9", cmd_fig9, "reproduce Figure 9 (encoding progress)"),
        ("fig10", cmd_fig10, "reproduce Figure 10 (depth CDFs)"),
        ("experiments", cmd_experiments, "write EXPERIMENTS.md"),
    ):
        p = sub.add_parser(name, help=doc)
        _add_common(p)
        p.set_defaults(fn=fn)
        if name == "experiments":
            p.add_argument("--output", default="EXPERIMENTS.md")

    p = sub.add_parser("validate", help="decode-vs-oracle cross validation")
    p.add_argument("--seeds", type=int, default=5)
    p.add_argument("--calls", type=int, default=25_000)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser(
        "record", help="run a workload, write compact log + decoding state"
    )
    p.add_argument("--prefix", default="dacce-run")
    p.add_argument("--calls", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_record)

    p = sub.add_parser("decode", help="offline-decode a recorded log")
    p.add_argument("--state", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--limit", type=int, default=20)
    p.add_argument("--best-effort", action="store_true",
                   help="recover what is decodable from damaged inputs "
                        "instead of aborting on the first fault")
    p.add_argument("--jobs", type=int, default=1,
                   help="decode with N parallel workers (each loads the "
                        "state file read-only and memoizes hot contexts)")
    p.set_defaults(fn=cmd_decode)

    p = sub.add_parser(
        "doctor",
        help="validate a decoding-state file, a sample log, or a "
             "canonical events.ndjson run log offline",
    )
    p.add_argument("--state", default=None)
    p.add_argument("--log", default=None)
    p.add_argument("--events", default=None,
                   help="events.ndjson path (or run directory) to "
                        "validate: envelopes, monotonic sequence, "
                        "torn tail")
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser(
        "static",
        help="extract a static call graph (AST or synthetic) to a file",
    )
    p.add_argument("--source", default=None,
                   help="Python source tree to analyze")
    p.add_argument("--benchmark", default=None,
                   help="synthetic benchmark name to extract exactly")
    p.add_argument("--record-seed", type=int, default=None,
                   help="extract the program of `dacce record --seed N`")
    p.add_argument("--scale", type=float, default=0.4)
    p.add_argument("--output", default="dacce-static.json")
    p.set_defaults(fn=cmd_static)

    p = sub.add_parser(
        "lint",
        help="verify persisted encoding state against invariants "
             "and an optional static call graph",
    )
    p.add_argument("--state", required=True)
    p.add_argument("--static", default=None,
                   help="static graph file from `dacce static`")
    p.add_argument("--margin-bits", type=int, default=8,
                   help="id-space headroom (bits) below which to warn")
    p.add_argument("--targets", default=None,
                   help="targets.json sink manifest: verify the recording's "
                        "targeted plan covers every declared sink "
                        "(requires --static)")
    p.set_defaults(fn=cmd_lint)

    guard = sub.add_parser(
        "guard",
        help="targeted sink guards: record per-sink contexts, check "
             "them against allow/deny/rate-limit policies",
    )
    guard_sub = guard.add_subparsers(dest="guard_command", required=True)

    p = guard_sub.add_parser(
        "record",
        help="targeted run over a sink manifest; write state + guard log",
    )
    p.add_argument("--targets", required=True,
                   help="targets.json sink manifest")
    p.add_argument("--prefix", default="dacce-guard")
    p.add_argument("--calls", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    p.set_defaults(fn=cmd_guard_record)

    p = guard_sub.add_parser(
        "check",
        help="re-decode a guard log and enforce a policy over its paths",
    )
    p.add_argument("--state", required=True,
                   help="state file from `dacce guard record`")
    p.add_argument("--guard", required=True,
                   help="guard log from `dacce guard record`")
    p.add_argument("--policy", required=True,
                   help="policy JSON: {default, rules:[{action,...}]}")
    p.add_argument("--baseline", default=None,
                   help="previous guard log to score context drift against")
    p.add_argument("--max-anomaly", type=float, default=None,
                   help="fail when the worst per-context anomaly score "
                        "exceeds this (0..1)")
    p.set_defaults(fn=cmd_guard_check)

    p = sub.add_parser(
        "metrics",
        help="run an instrumented workload; print the telemetry snapshot",
    )
    p.add_argument("--calls", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--format", choices=("prom", "json"), default="prom",
                   help="Prometheus text format (default) or JSON snapshot")
    p.add_argument("--output", default=None,
                   help="write to this path instead of stdout")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser(
        "trace",
        help="run an instrumented workload; print the JSONL engine trace",
    )
    p.add_argument("--calls", type=int, default=20_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--limit", type=int, default=50,
                   help="max records printed to stdout (0 = all)")
    p.add_argument("--output", default=None,
                   help="stream JSONL records to this path instead")
    p.add_argument("--input", default=None,
                   help="print an existing JSONL trace (reads rotated "
                        "shards PATH.N..PATH.1 then PATH, oldest first) "
                        "instead of running a workload")
    p.add_argument("--follow", action="store_true",
                   help="with --input: keep tailing the active file, "
                        "surviving size/age rotation mid-follow")
    p.add_argument("--poll", type=float, default=0.2,
                   help="with --follow: seconds between polls")
    p.add_argument("--duration", type=float, default=0.0,
                   help="with --follow: stop after this many seconds "
                        "(0 = until Ctrl-C or --limit)")
    p.set_defaults(fn=cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="continuous calling-context profiler (CCT, flamegraphs, diffs)",
    )
    profile_sub = profile.add_subparsers(dest="profile_command", required=True)

    p = profile_sub.add_parser(
        "record",
        help="run a hook-sampled workload; write log + state + names",
    )
    p.add_argument("--prefix", default="dacce-profile")
    p.add_argument("--calls", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--sample-every", type=int, default=64,
                   help="capture one context every N applied calls")
    p.set_defaults(fn=cmd_profile_record)

    p = profile_sub.add_parser(
        "report", help="aggregate a recorded profile; print hot contexts"
    )
    p.add_argument("--state", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--names", default=None,
                   help="names sidecar from `dacce profile record`")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--by", choices=("self", "total"), default="self")
    p.add_argument("--jobs", type=int, default=1)
    p.set_defaults(fn=cmd_profile_report)

    p = profile_sub.add_parser(
        "flame", help="export folded stacks (flamegraph.pl input)"
    )
    p.add_argument("--state", required=True)
    p.add_argument("--log", required=True)
    p.add_argument("--names", default=None)
    p.add_argument("--output", default=None,
                   help="write folded stacks here instead of stdout")
    p.add_argument("--jobs", type=int, default=1)
    p.set_defaults(fn=cmd_profile_flame)

    p = profile_sub.add_parser(
        "diff", help="compare two profiles (recorded or folded)"
    )
    p.add_argument("--state-a", default=None)
    p.add_argument("--log-a", default=None)
    p.add_argument("--folded-a", default=None,
                   help="pre-exported folded file for side a")
    p.add_argument("--names-a", default=None)
    p.add_argument("--state-b", default=None)
    p.add_argument("--log-b", default=None)
    p.add_argument("--folded-b", default=None)
    p.add_argument("--names-b", default=None)
    p.add_argument("--threshold", type=float, default=0.0,
                   help="min |delta|/max_total to call a path changed")
    p.add_argument("--limit", type=int, default=10)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_profile_diff)

    p = profile_sub.add_parser(
        "serve", help="live profile server over a looping workload"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port (printed at startup)")
    p.add_argument("--calls", type=int, default=20_000,
                   help="calls per workload pass")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--sample-every", type=int, default=64)
    p.add_argument("--duration", type=float, default=0.0,
                   help="stop after this many seconds (0 = until Ctrl-C)")
    p.add_argument("--trace-output", default=None,
                   help="mirror the engine trace to this JSONL file "
                        "(size/age-rotated)")
    p.add_argument("--trace-max-bytes", type=int, default=None)
    p.add_argument("--trace-max-age", type=float, default=0.0)
    p.add_argument("--trace-backups", type=int, default=None)
    p.set_defaults(fn=cmd_profile_serve)

    p = sub.add_parser(
        "serve",
        help="fleet ingestion service: frames in (HTTP/stdin/file), "
             "canonical event log + merged live profile out",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="0 picks a free port (printed at startup)")
    p.add_argument("--data-dir", default=None,
                   help="persist one events.ndjson per run under this "
                        "directory (enables /runs/<id>/events)")
    p.add_argument("--run", default="default",
                   help="run id for --stdin / --from frames")
    p.add_argument("--stdin", action="store_true",
                   help="also ingest frames piped on stdin")
    p.add_argument("--from", dest="from_file", default=None,
                   help="ingest a recorded frame file (NDJSON) at startup")
    p.add_argument("--duration", type=float, default=0.0,
                   help="stop after this many seconds (0 = until Ctrl-C)")
    p.add_argument("--span-log", default=None,
                   help="record service-side spans (admit/validate/fold/"
                        "publish) to this rotated JSONL file and enable "
                        "the /spans endpoint's span ring")
    p.set_defaults(fn=cmd_serve)

    events = sub.add_parser(
        "events",
        help="event ingestion plane: record producer frames, replay "
             "canonical run logs (docs/EVENTS.md)",
    )
    events_sub = events.add_subparsers(dest="events_command", required=True)

    p = events_sub.add_parser(
        "record",
        help="run a synthetic producer; emit dacce.engine.events.v1 frames",
    )
    p.add_argument("--frames", default="-",
                   help="frame destination path ('-' = stdout, with human "
                        "output on stderr)")
    p.add_argument("--url", default=None,
                   help="POST frames to a running `dacce serve` instead")
    p.add_argument("--run", default=None,
                   help="run id (default: generated)")
    p.add_argument("--calls", type=int, default=50_000)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--sample-every", type=int, default=64)
    p.add_argument("--heartbeat", type=float, default=0.0,
                   help="emit a heartbeat frame at least every N seconds")
    p.add_argument("--spool", default=None,
                   help="with --url: spill undeliverable batches to "
                        "CRC-framed segments under DIR/<run> and "
                        "retry with backoff (durable at-least-once; "
                        "a restarted producer of the same run adopts "
                        "its leftover segments)")
    p.add_argument("--drain-timeout", type=float, default=0.0,
                   help="with --spool: keep retrying up to N seconds "
                        "after the run to empty the spool")
    p.add_argument("--span-log", default=None,
                   help="record producer-side spans (flush/spool/send) to "
                        "this rotated JSONL file and stamp trace ids into "
                        "emitted frames")
    p.set_defaults(fn=cmd_events_record)

    spans_parser = sub.add_parser(
        "spans",
        help="span tracing: per-stage latency reports and cross-process "
             "waterfalls from span JSONL logs (docs/OBSERVABILITY.md)",
    )
    spans_sub = spans_parser.add_subparsers(dest="spans_command", required=True)

    p = spans_sub.add_parser(
        "report", help="per-(stage, name) latency summary with percentiles"
    )
    p.add_argument("--input", nargs="+", required=True,
                   help="span JSONL log path(s); rotated shards folded in")
    p.add_argument("--backups", type=int, default=None,
                   help="max rotated shards to scan per input")
    p.add_argument("--json", action="store_true",
                   help="emit the summary as JSON instead of a table")
    p.set_defaults(fn=cmd_spans_report)

    p = spans_sub.add_parser(
        "waterfall",
        help="stitch producer + service span logs into per-trace trees",
    )
    p.add_argument("--input", nargs="+", required=True,
                   help="span JSONL log path(s) from every side of the wire")
    p.add_argument("--backups", type=int, default=None)
    p.add_argument("--trace", default=None,
                   help="print this trace id (default: the trace covering "
                        "the most pipeline stages)")
    p.add_argument("--all", action="store_true", help="print every trace")
    p.add_argument("--limit", type=int, default=0,
                   help="with --all: max traces printed (0 = all)")
    p.add_argument("--require-stages", default=None,
                   help="comma-separated stage list (or 'all') that the "
                        "printed trace(s) must cover; exit 1 otherwise")
    p.set_defaults(fn=cmd_spans_waterfall)

    p = events_sub.add_parser(
        "replay",
        help="rebuild aggregator + metrics state from an events.ndjson log",
    )
    p.add_argument("--log", required=True,
                   help="canonical events.ndjson written by `dacce serve`")
    p.add_argument("--cct", default=None,
                   help="write the reconstructed /cct JSON here")
    p.add_argument("--metrics", default=None,
                   help="write the reconstructed /metrics text here")
    p.add_argument("--flame", default=None,
                   help="write the reconstructed folded stacks here")
    p.add_argument("--lenient", action="store_true",
                   help="report validation errors instead of failing")
    p.set_defaults(fn=cmd_events_replay)

    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.WARNING,
        stream=sys.stderr,
        format="%(levelname)s %(name)s: %(message)s",
    )
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
