"""The engine-side event frame: ``dacce.engine.events.v1``.

Every observable action of a producer process — profile sample batches,
re-encoding pass reports, quarantined faults, runtime stat deltas,
heartbeats, run lifecycle — is serialized as one schema-versioned NDJSON
line (a *frame*).  Frames are the producer's entire external contract:
stdout is reserved for frames (human-readable output goes to stderr),
and the ingestion service re-envelopes each frame as the canonical
``dacce.events.v1`` stream (see :mod:`repro.ingest.envelope`).

Frame shape::

    {"schema": "dacce.engine.events.v1",
     "type": "profile.samples",
     "created_at": 1754650000.123,      # producer clock, unix seconds
     "seq": 17,                         # producer-local frame counter
     "trace": {"id": ..., "span": ...}, # optional span propagation
     "payload": {...}}                  # type-specific fields

Versioning rules (``docs/EVENTS.md``): the ``schema`` discriminator
never changes within v1; new frame *types* and new payload *fields* are
added freely (consumers ignore what they do not know); removing or
re-typing a field requires ``dacce.engine.events.v2``.  The ingestion
service accepts unknown types under the v1 schema and marks them
``skipped`` instead of rejecting them, so old services survive new
producers.

Sample batches carry **decoded paths**, not compact ids: the producer
owns the dictionaries and decodes through its memoized
:class:`~repro.core.decoder.DecodeCache`, so the ingestion plane stays
state-free and a persisted run log replays deterministically with no
decoding state on the service side (the same split
``cmd_profile_serve``'s in-process ``deliver`` hook already uses).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

#: Schema discriminator for producer frames.
FRAME_SCHEMA = "dacce.engine.events.v1"

#: Frame types the v1 ingestion service folds into live state.
FRAME_TYPES = frozenset(
    {
        "run.start",
        "run.complete",
        "profile.samples",
        "reencode.pass",
        "fault",
        "stats.delta",
        "heartbeat",
    }
)

#: Longest raw line the service echoes back inside a reject envelope.
MAX_RAW_ECHO = 200


class FrameError(ValueError):
    """A frame failed validation; ``reason`` is a stable slug."""

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


def make_frame(
    type: str,
    payload: Dict[str, Any],
    created_at: float,
    seq: Optional[int] = None,
    trace: Optional[Dict[str, str]] = None,
) -> Dict[str, Any]:
    """Build one frame dict (callers serialize with :func:`frame_line`).

    ``seq`` is the producer's delivery sequence and feeds the service's
    ``(run, origin_seq)`` dedupe.  Frames synthesized outside the
    emitter's sequence space (e.g. a sink's spool-eviction ``fault``
    frame) pass ``None``: the key is omitted and the service never
    dedupes the frame — colliding with a real emitter seq would
    silently swallow it.

    ``trace`` is the additive span-propagation field
    (``{"id": <trace_id>, "span": <span_id>}``, see
    ``docs/OBSERVABILITY.md``): the emitter stamps the flush span's
    identity so the ingestion service can continue the trace.  Omitted
    entirely when span tracing is off, keeping pre-span frame bytes
    unchanged.
    """
    frame: Dict[str, Any] = {
        "schema": FRAME_SCHEMA,
        "type": type,
        "created_at": created_at,
        "payload": payload,
    }
    if seq is not None:
        frame["seq"] = seq
    if trace is not None:
        frame["trace"] = trace
    return frame


def frame_line(frame: Dict[str, Any]) -> str:
    """One NDJSON line (no trailing newline), compact separators."""
    return json.dumps(frame, separators=(",", ":"), sort_keys=True)


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _require(condition: bool, reason: str, message: str) -> None:
    if not condition:
        raise FrameError(reason, message)


def _validate_samples_payload(payload: Dict[str, Any]) -> None:
    samples = payload.get("samples")
    _require(
        isinstance(samples, list),
        "bad-payload",
        "profile.samples payload needs a 'samples' list",
    )
    assert isinstance(samples, list)
    for index, entry in enumerate(samples):
        _require(
            isinstance(entry, dict),
            "bad-payload",
            "sample %d is not an object" % index,
        )
        path = entry.get("path")
        _require(
            isinstance(path, list)
            and all(isinstance(f, int) and not isinstance(f, bool) for f in path),
            "bad-payload",
            "sample %d 'path' must be a list of function ids" % index,
        )
        weight = entry.get("weight", 1.0)
        _require(
            isinstance(weight, (int, float))
            and not isinstance(weight, bool)
            and weight >= 0,
            "bad-payload",
            "sample %d 'weight' must be a non-negative number" % index,
        )
        gts = entry.get("gts", 0)
        _require(
            isinstance(gts, int) and not isinstance(gts, bool) and gts >= 0,
            "bad-payload",
            "sample %d 'gts' must be a non-negative integer" % index,
        )


def _validate_run_start_payload(payload: Dict[str, Any]) -> None:
    names = payload.get("names")
    if names is not None:
        _require(
            isinstance(names, dict),
            "bad-payload",
            "run.start 'names' must map function ids to display names",
        )


_PAYLOAD_VALIDATORS = {
    "profile.samples": _validate_samples_payload,
    "run.start": _validate_run_start_payload,
}


def validate_frame(obj: Any) -> Dict[str, Any]:
    """Validate one parsed frame; returns it (raises :class:`FrameError`).

    Enforces the envelope-level contract strictly — object shape, the
    ``schema`` discriminator, ``type``/``payload``/``created_at`` types —
    and the payload contract for the types the service folds.  Unknown
    types under the right schema pass validation (additive versioning);
    the service counts them as ``skipped``.
    """
    _require(isinstance(obj, dict), "not-an-object", "frame is not a JSON object")
    assert isinstance(obj, dict)
    schema = obj.get("schema")
    _require(
        schema == FRAME_SCHEMA,
        "bad-schema",
        "frame schema %r is not %r" % (schema, FRAME_SCHEMA),
    )
    type_ = obj.get("type")
    _require(
        isinstance(type_, str) and bool(type_),
        "bad-type",
        "frame 'type' must be a non-empty string",
    )
    payload = obj.get("payload")
    _require(
        isinstance(payload, dict),
        "bad-payload",
        "frame 'payload' must be an object",
    )
    created_at = obj.get("created_at")
    _require(
        isinstance(created_at, (int, float)) and not isinstance(created_at, bool),
        "bad-timestamp",
        "frame 'created_at' must be a unix timestamp",
    )
    seq = obj.get("seq")
    if seq is not None:
        _require(
            isinstance(seq, int) and not isinstance(seq, bool) and seq >= 0,
            "bad-seq",
            "frame 'seq' must be a non-negative integer",
        )
    trace = obj.get("trace")
    if trace is not None:
        _require(
            isinstance(trace, dict)
            and isinstance(trace.get("id"), str)
            and isinstance(trace.get("span"), str),
            "bad-trace",
            "frame 'trace' must be an object with string 'id' and 'span'",
        )
    assert isinstance(type_, str) and isinstance(payload, dict)
    validator = _PAYLOAD_VALIDATORS.get(type_)
    if validator is not None:
        validator(payload)
    return obj


def parse_frame(line: str) -> Dict[str, Any]:
    """Parse + validate one NDJSON line."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise FrameError("bad-json", "frame line is not JSON: %s" % error)
    return validate_frame(obj)


def is_known_type(type_: str) -> bool:
    return type_ in FRAME_TYPES


# ----------------------------------------------------------------------
# payload builders (the emitter's vocabulary, importable by tests)
# ----------------------------------------------------------------------
def sample_entry(
    path: Iterable[int],
    weight: float,
    gts: int,
    thread: int = 0,
    partial: bool = False,
    reason: Optional[str] = None,
) -> Dict[str, Any]:
    """One decoded sample inside a ``profile.samples`` payload."""
    entry: Dict[str, Any] = {
        "path": list(path),
        "weight": weight,
        "gts": gts,
        "thread": thread,
    }
    if partial:
        entry["partial"] = True
        if reason is not None:
            entry["reason"] = reason
    return entry


def samples_payload(entries: List[Dict[str, Any]]) -> Dict[str, Any]:
    return {"samples": entries, "count": len(entries)}
