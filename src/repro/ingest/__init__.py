"""Fleet-scale event ingestion plane (``docs/EVENTS.md``).

Producer side: :class:`FrameEmitter` attaches to an engine and turns
every observable action into ``dacce.engine.events.v1`` NDJSON frames
through a pluggable :class:`EventSink`.  Service side:
:class:`IngestService` (+ :class:`IngestServer` for HTTP) validates
frames, stamps canonical ``dacce.events.v1`` envelopes, persists one
append-only ``events.ndjson`` per run, folds into the merged CCT and
metrics registry, and streams live over SSE; :func:`replay_file`
rebuilds that state byte-exactly from a persisted log.
"""

from .emitter import DEFAULT_SAMPLE_BATCH, FrameEmitter
from .envelope import (
    DUPLICATE_TYPE,
    ENVELOPE_SCHEMA,
    Envelope,
    EnvelopeError,
    NOTICE_TYPE,
    REJECT_TYPE,
    envelope_from_dict,
    parse_envelope,
)
from .frames import (
    FRAME_SCHEMA,
    FRAME_TYPES,
    FrameError,
    frame_line,
    is_known_type,
    make_frame,
    parse_frame,
    sample_entry,
    samples_payload,
    validate_frame,
)
from .replay import ReplayError, ReplayReport, replay_file, replay_lines
from .server import IngestServer, serve_ingest
from .service import IngestError, IngestService, new_run_id
from .sinks import (
    EventSink,
    FileFrameSink,
    HTTPFrameSink,
    MemorySink,
    SinkError,
    SpoolingSink,
    StdoutFrameSink,
    read_spool_segment,
    write_spool_segment,
)

__all__ = [
    "DEFAULT_SAMPLE_BATCH",
    "DUPLICATE_TYPE",
    "ENVELOPE_SCHEMA",
    "Envelope",
    "EnvelopeError",
    "EventSink",
    "FRAME_SCHEMA",
    "FRAME_TYPES",
    "FileFrameSink",
    "FrameEmitter",
    "FrameError",
    "HTTPFrameSink",
    "IngestError",
    "IngestServer",
    "IngestService",
    "MemorySink",
    "NOTICE_TYPE",
    "REJECT_TYPE",
    "ReplayError",
    "ReplayReport",
    "SinkError",
    "SpoolingSink",
    "StdoutFrameSink",
    "envelope_from_dict",
    "frame_line",
    "is_known_type",
    "make_frame",
    "new_run_id",
    "parse_envelope",
    "parse_frame",
    "read_spool_segment",
    "replay_file",
    "replay_lines",
    "sample_entry",
    "samples_payload",
    "serve_ingest",
    "validate_frame",
    "write_spool_segment",
]
