"""Replay a canonical run log into fresh service state.

``dacce events replay`` rebuilds an :class:`IngestService` from an
``events.ndjson`` file — no live producers, no clocks — by folding each
persisted envelope in ``sequence`` order through the very same
:meth:`IngestService._fold` the live path uses.  Because every input to
folding is persisted inside the envelope (payload, ordering, ingest
lag, rejects), the reconstructed ``/cct`` and ``/metrics`` documents are
byte-identical to what the live service served at the moment the log
ended — the determinism gate the CI ``ingest-smoke`` job enforces.

Replay also audits the log: a sequence that is not strictly monotonic
per run, a schema mismatch or an unparsable line is a validation error
(the log was tampered with or truncated mid-line), reported in the
:class:`ReplayReport` and fatal by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .envelope import Envelope, EnvelopeError, parse_envelope
from .service import IngestService


class ReplayError(ValueError):
    """The event log failed validation (tampered, truncated, reordered)."""


@dataclass
class ReplayReport:
    """What a replay folded and what it found wrong."""

    events: int = 0
    runs: int = 0
    outcomes: Dict[str, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    #: Truncated echo of a torn (newline-less) final line that was
    #: skipped under ``tolerate_torn_tail``; None when the log ended
    #: cleanly.
    torn_tail: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def to_dict(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "runs": self.runs,
            "outcomes": dict(self.outcomes),
            "errors": list(self.errors),
            "torn_tail": self.torn_tail,
            "ok": self.ok,
        }


def iter_envelopes(
    lines: Iterable[str],
    report: ReplayReport,
) -> Iterable[Tuple[int, Envelope]]:
    """Parse + sequence-check envelope lines, recording errors."""
    last_sequence: Dict[str, int] = {}
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            envelope = parse_envelope(line)
        except EnvelopeError as error:
            report.errors.append(
                "line %d: %s (%s)" % (lineno, error, error.reason)
            )
            continue
        previous = last_sequence.get(envelope.run, 0)
        if envelope.sequence <= previous:
            report.errors.append(
                "line %d: run %r sequence %d is not greater than %d"
                % (lineno, envelope.run, envelope.sequence, previous)
            )
            continue
        last_sequence[envelope.run] = envelope.sequence
        yield lineno, envelope


def replay_lines(
    lines: Iterable[str],
    service: Optional[IngestService] = None,
    strict: bool = True,
) -> Tuple[IngestService, ReplayReport]:
    """Fold canonical envelope lines into a (fresh) service.

    With ``strict`` (the default) any validation error raises
    :class:`ReplayError` after the full scan, so the report still lists
    every problem.
    """
    if service is None:
        service = IngestService(data_dir=None)
    report = ReplayReport()
    for _, envelope in iter_envelopes(lines, report):
        state = service._run_state(envelope.run)
        outcome = service._fold(envelope)
        state.outcomes[outcome] = state.outcomes.get(outcome, 0) + 1
        state.sequence = envelope.sequence
        report.events += 1
        report.outcomes[outcome] = report.outcomes.get(outcome, 0) + 1
    report.runs = len(service.runs())
    if strict and report.errors:
        raise ReplayError(
            "event log failed validation: %s"
            % "; ".join(report.errors[:5])
            + (" …" if len(report.errors) > 5 else "")
        )
    return service, report


def replay_file(
    path: str,
    service: Optional[IngestService] = None,
    strict: bool = True,
    tolerate_torn_tail: bool = False,
) -> Tuple[IngestService, ReplayReport]:
    """Replay one persisted ``events.ndjson`` file.

    With ``tolerate_torn_tail`` a final line that the writing process
    tore mid-append (no trailing newline) is skipped and reported in
    ``report.errors``-free prose via ``torn_tail`` — the same tolerance
    the service's startup crash recovery applies — instead of failing
    strict validation.  Everything before the tear still replays.
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    torn: Optional[str] = None
    if tolerate_torn_tail and raw and not raw.endswith(b"\n"):
        cut = raw.rfind(b"\n") + 1
        torn = raw[cut:].decode("utf-8", errors="replace")
        raw = raw[:cut]
    service, report = replay_lines(
        raw.decode("utf-8", errors="replace").splitlines(),
        service=service,
        strict=strict,
    )
    if torn is not None:
        report.torn_tail = torn[:200]
    return service, report
