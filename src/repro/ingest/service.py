"""The ingestion service: frames in, canonical envelopes out.

:class:`IngestService` is the API side of the engine-frame → API-envelope
split: it accepts ``dacce.engine.events.v1`` NDJSON frames from any
number of producers (HTTP POST bodies, piped stdin, recorded files),
validates each line, stamps the canonical ``dacce.events.v1`` envelope
(``run``, ``event_id``, strictly monotonic per-run ``sequence``,
``received_at``), persists one append-only ``events.ndjson`` per run,
folds the payload into live state — the shared
:class:`~repro.prof.cct.CCTAggregator` for sample frames, the
:class:`~repro.obs.registry.MetricsRegistry` for everything else — and
fans the envelope out to SSE subscribers.

The ingestion plane observes itself: ``ingest_frames_total{kind,outcome}``
counts every offered line (``folded`` / ``skipped`` / ``rejected``) and
``ingest_lag_seconds`` histograms the producer-to-service latency using
the two timestamps persisted in the envelope — which is what makes
``dacce events replay`` byte-exact: every input to folding (payloads,
ordering, lag) lives inside the canonical log, so rebuilding state from
``events.ndjson`` reproduces the live ``/cct`` and ``/metrics`` payloads
identically (the CI replay-determinism gate).
"""

from __future__ import annotations

import logging
import os
import queue
import re
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Tuple,
)

import time

from ..core.context import CallingContext
from ..core.faults import PartialDecode
from ..obs.exporters import to_prometheus_text
from ..obs.registry import MetricsRegistry
from ..prof.cct import CCTAggregator, default_names
from .envelope import ENVELOPE_SCHEMA, REJECT_TYPE, Envelope
from .frames import FrameError, MAX_RAW_ECHO, is_known_type, parse_frame

logger = logging.getLogger(__name__)

#: Ingest-lag histogram bucket bounds, seconds: sub-millisecond local
#: pipes up to slow cross-host batches.
LAG_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0,
)

#: Run ids become directory names; keep them path-safe.
_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

DEFAULT_RUN = "default"
DEFAULT_RECENT_CAPACITY = 1024

#: Validated frame outcomes (the ``outcome`` label values).
OUTCOME_FOLDED = "folded"
OUTCOME_SKIPPED = "skipped"
OUTCOME_REJECTED = "rejected"


class IngestError(ValueError):
    """Invalid ingest request (bad run id, closed service)."""


def new_run_id() -> str:
    return "run-%s" % uuid.uuid4().hex[:8]


def _default_id_factory() -> str:
    return "evt_%s" % uuid.uuid4().hex[:16]


@dataclass
class RunState:
    """Everything the service tracks per run."""

    run: str
    path: Optional[str] = None
    sequence: int = 0
    producer: Optional[str] = None
    started_at: Optional[float] = None
    last_received_at: Optional[float] = None
    outcomes: Dict[str, int] = field(default_factory=dict)
    samples: int = 0
    weight: float = 0.0
    complete: bool = False
    _handle: Optional[IO[str]] = None

    def summary(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "sequence": self.sequence,
            "producer": self.producer,
            "started_at": self.started_at,
            "last_received_at": self.last_received_at,
            "outcomes": dict(self.outcomes),
            "samples": self.samples,
            "weight": self.weight,
            "complete": self.complete,
        }


class IngestService:
    """Validate, envelope, persist, fold and stream producer frames."""

    def __init__(
        self,
        data_dir: Optional[str] = None,
        clock: Callable[[], float] = time.time,
        id_factory: Callable[[], str] = _default_id_factory,
        recent_capacity: int = DEFAULT_RECENT_CAPACITY,
    ):
        self.data_dir = data_dir
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
        self._clock = clock
        self._id_factory = id_factory
        self._lock = threading.RLock()
        self._runs: Dict[str, RunState] = {}
        self._names: Dict[int, str] = {}
        self.aggregator = CCTAggregator(names=self._resolve_name)
        self.registry = MetricsRegistry(enabled=True)
        self.aggregator.bind_metrics(self.registry)
        # Instruments are created eagerly and in a fixed order so a
        # replayed service renders the identical /metrics document.
        self._c_frames = self.registry.counter(
            "ingest_frames_total",
            "Frames offered to the ingestion service, by kind and outcome.",
            labelnames=("kind", "outcome"),
        )
        self._h_lag = self.registry.histogram(
            "ingest_lag_seconds",
            "Producer-to-service latency (received_at - created_at).",
            buckets=LAG_BUCKETS,
        )
        self._g_runs = self.registry.gauge(
            "ingest_runs",
            "Runs known to the ingestion service.",
        )
        self._c_producer_stats = self.registry.counter(
            "ingest_producer_stats_total",
            "Latest cumulative producer counters from stats.delta frames.",
            labelnames=("run", "stat"),
        )
        self._c_producer_faults = self.registry.counter(
            "ingest_producer_faults_total",
            "Producer fault frames ingested, by fault kind.",
            labelnames=("kind",),
        )
        # Live-stream plumbing (not part of replayed state).
        self._recent: Deque[Envelope] = deque(maxlen=recent_capacity)
        self._subscribers: List[Tuple["queue.Queue[Optional[Envelope]]", Optional[str]]] = []
        self.started_at = self._clock()

    # ------------------------------------------------------------------
    # names
    # ------------------------------------------------------------------
    def _resolve_name(self, function: int) -> str:
        name = self._names.get(function)
        return name if name is not None else default_names(function)

    # ------------------------------------------------------------------
    # run registry
    # ------------------------------------------------------------------
    def _run_state(self, run_id: str) -> RunState:
        state = self._runs.get(run_id)
        if state is None:
            path = None
            if self.data_dir is not None:
                run_dir = os.path.join(self.data_dir, run_id)
                os.makedirs(run_dir, exist_ok=True)
                path = os.path.join(run_dir, "events.ndjson")
            state = RunState(run=run_id, path=path)
            self._runs[run_id] = state
            self._g_runs.set(len(self._runs))
        return state

    def runs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                state.summary()
                for _, state in sorted(self._runs.items())
            ]

    def events_path(self, run_id: str) -> Optional[str]:
        with self._lock:
            state = self._runs.get(run_id)
            return state.path if state is not None else None

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest_lines(
        self,
        run_id: str,
        lines: Iterable[str],
        source: str = "engine",
    ) -> Dict[str, Any]:
        """Ingest NDJSON frame lines for one run; returns a summary.

        Every non-blank line is accounted for: validated frames become
        canonical envelopes (``folded`` or, for unknown types,
        ``skipped``); invalid lines become service-sourced
        ``ingest.rejected`` envelopes.  All three are persisted and
        streamed, so the canonical log is a complete record of what the
        service was offered.
        """
        if not _RUN_ID_RE.match(run_id):
            raise IngestError(
                "invalid run id %r (want %s)" % (run_id, _RUN_ID_RE.pattern)
            )
        counts = {OUTCOME_FOLDED: 0, OUTCOME_SKIPPED: 0, OUTCOME_REJECTED: 0}
        last_sequence = 0
        with self._lock:
            state = self._run_state(run_id)
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                envelope = self._envelope_line(state, line, source)
                outcome = self._fold(envelope)
                counts[outcome] += 1
                state.outcomes[outcome] = state.outcomes.get(outcome, 0) + 1
                self._persist(state, envelope)
                self._publish(envelope)
            last_sequence = state.sequence
            if state._handle is not None:
                state._handle.flush()
        return {
            "run": run_id,
            "accepted": counts[OUTCOME_FOLDED] + counts[OUTCOME_SKIPPED],
            "folded": counts[OUTCOME_FOLDED],
            "skipped": counts[OUTCOME_SKIPPED],
            "rejected": counts[OUTCOME_REJECTED],
            "last_sequence": last_sequence,
        }

    def ingest_stream(
        self,
        stream: IO[str],
        run_id: str,
        source: str = "engine",
        batch: int = 256,
    ) -> Dict[str, Any]:
        """Ingest frames from a line stream (piped producer stdout)."""
        totals = {
            "run": run_id, "accepted": 0, "folded": 0, "skipped": 0,
            "rejected": 0, "last_sequence": 0,
        }
        buffer: List[str] = []
        for line in stream:
            buffer.append(line)
            if len(buffer) >= batch:
                self._merge_summary(totals, self.ingest_lines(run_id, buffer, source))
                buffer = []
        if buffer:
            self._merge_summary(totals, self.ingest_lines(run_id, buffer, source))
        return totals

    @staticmethod
    def _merge_summary(totals: Dict[str, Any], part: Dict[str, Any]) -> None:
        for key in ("accepted", "folded", "skipped", "rejected"):
            totals[key] += part[key]
        totals["last_sequence"] = part["last_sequence"]

    def _envelope_line(
        self, state: RunState, line: str, source: str
    ) -> Envelope:
        """Validate one raw line and stamp its canonical envelope."""
        received_at = self._clock()
        state.sequence += 1
        try:
            frame = parse_frame(line)
        except FrameError as error:
            return Envelope(
                type=REJECT_TYPE,
                event_id=self._id_factory(),
                sequence=state.sequence,
                run=state.run,
                source="api",
                created_at=received_at,
                received_at=received_at,
                payload={
                    "reason": error.reason,
                    "error": str(error),
                    "raw": line[:MAX_RAW_ECHO],
                },
            )
        return Envelope(
            type=frame["type"],
            event_id=self._id_factory(),
            sequence=state.sequence,
            run=state.run,
            source=source,
            created_at=float(frame["created_at"]),
            received_at=received_at,
            payload=frame["payload"],
            origin_seq=frame.get("seq"),
        )

    # ------------------------------------------------------------------
    # folding (shared verbatim by live ingest and replay)
    # ------------------------------------------------------------------
    def _fold(self, envelope: Envelope) -> str:
        """Fold one canonical envelope into live state.

        Pure in the envelope: called with identical envelopes in
        identical order it produces identical aggregator and registry
        state — the replay-determinism contract.
        """
        state = self._run_state(envelope.run)
        state.last_received_at = envelope.received_at
        if state.started_at is None:
            state.started_at = envelope.received_at
        if envelope.type == REJECT_TYPE:
            self._c_frames.labels("invalid", OUTCOME_REJECTED).inc()
            return OUTCOME_REJECTED
        if not is_known_type(envelope.type):
            self._c_frames.labels(envelope.type, OUTCOME_SKIPPED).inc()
            return OUTCOME_SKIPPED
        self._c_frames.labels(envelope.type, OUTCOME_FOLDED).inc()
        if envelope.source == "engine":
            self._h_lag.observe(envelope.lag_seconds)
        payload = envelope.payload
        if envelope.type == "profile.samples":
            self._fold_samples(state, payload)
        elif envelope.type == "run.start":
            producer = payload.get("producer")
            if isinstance(producer, str):
                state.producer = producer
            names = payload.get("names")
            if isinstance(names, dict):
                for key, value in names.items():
                    try:
                        self._names[int(key)] = str(value)
                    except (TypeError, ValueError):
                        continue
        elif envelope.type == "run.complete":
            state.complete = True
        elif envelope.type == "stats.delta":
            stats = payload.get("stats")
            if isinstance(stats, dict):
                for stat, value in sorted(stats.items()):
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        self._c_producer_stats.set_total(
                            float(value), envelope.run, str(stat)
                        )
        elif envelope.type == "fault":
            kind = payload.get("kind")
            self._c_producer_faults.labels(
                kind if isinstance(kind, str) else "unknown"
            ).inc()
        # heartbeat: the frames counter above is the fold.
        return OUTCOME_FOLDED

    def _fold_samples(self, state: RunState, payload: Dict[str, Any]) -> None:
        for entry in payload.get("samples", ()):
            path = tuple(entry.get("path", ()))
            weight = float(entry.get("weight", 1.0))
            gts = int(entry.get("gts", 0))
            context = CallingContext.from_functions(path)
            if entry.get("partial"):
                result: Any = PartialDecode(context=context, complete=False)
            else:
                result = context
            self.aggregator.add_decoded(result, weight, timestamp=gts)
            state.samples += 1
            state.weight += weight

    # ------------------------------------------------------------------
    # persistence + streaming
    # ------------------------------------------------------------------
    def _persist(self, state: RunState, envelope: Envelope) -> None:
        if state.path is None:
            return
        if state._handle is None:
            state._handle = open(state.path, "a")
        state._handle.write(envelope.to_json_line() + "\n")

    def _publish(self, envelope: Envelope) -> None:
        self._recent.append(envelope)
        for subscriber, run_filter in list(self._subscribers):
            if run_filter is not None and envelope.run != run_filter:
                continue
            try:
                subscriber.put_nowait(envelope)
            except queue.Full:  # pragma: no cover - unbounded queues
                pass

    def subscribe(
        self,
        run: Optional[str] = None,
        backlog: int = 0,
    ) -> "queue.Queue[Optional[Envelope]]":
        """A live envelope queue; ``backlog`` recent events are pre-seeded."""
        subscriber: "queue.Queue[Optional[Envelope]]" = queue.Queue()
        with self._lock:
            if backlog:
                for envelope in list(self._recent)[-backlog:]:
                    if run is not None and envelope.run != run:
                        continue
                    subscriber.put_nowait(envelope)
            self._subscribers.append((subscriber, run))
        return subscriber

    def unsubscribe(self, subscriber: "queue.Queue[Optional[Envelope]]") -> None:
        with self._lock:
            self._subscribers = [
                (q, f) for q, f in self._subscribers if q is not subscriber
            ]

    def close(self) -> None:
        with self._lock:
            for state in self._runs.values():
                if state._handle is not None:
                    state._handle.close()
                    state._handle = None
            for subscriber, _ in self._subscribers:
                subscriber.put_nowait(None)
            self._subscribers = []

    # ------------------------------------------------------------------
    # read-side documents (the server's and replay-diff's shared source)
    # ------------------------------------------------------------------
    def cct_json(self) -> str:
        import json as _json

        return _json.dumps(self.aggregator.to_dict(), indent=2) + "\n"

    def metrics_text(self) -> str:
        return to_prometheus_text(self.registry.snapshot())

    def flame_text(self) -> str:
        from ..prof.export import to_folded

        return to_folded(self.aggregator) + "\n"

    def top_rows(self, n: int = 10, by: str = "self") -> List[Dict[str, Any]]:
        from ..prof.export import top_contexts

        return top_contexts(self.aggregator, n=n, by=by)

    def healthz(self) -> Dict[str, Any]:
        stats = self.aggregator.stats()
        with self._lock:
            return {
                "runs": len(self._runs),
                "subscribers": len(self._subscribers),
                "samples": stats["samples"],
                "weight": stats["weight"],
                "uptime_seconds": self._clock() - self.started_at,
                "schema": ENVELOPE_SCHEMA,
            }
