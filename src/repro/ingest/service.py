"""The ingestion service: frames in, canonical envelopes out.

:class:`IngestService` is the API side of the engine-frame → API-envelope
split: it accepts ``dacce.engine.events.v1`` NDJSON frames from any
number of producers (HTTP POST bodies, piped stdin, recorded files),
validates each line, stamps the canonical ``dacce.events.v1`` envelope
(``run``, ``event_id``, strictly monotonic per-run ``sequence``,
``received_at``), persists one append-only ``events.ndjson`` per run,
folds the payload into live state — the shared
:class:`~repro.prof.cct.CCTAggregator` for sample frames, the
:class:`~repro.obs.registry.MetricsRegistry` for everything else — and
fans the envelope out to SSE subscribers.

The ingestion plane observes itself: ``ingest_frames_total{kind,outcome}``
counts every offered line (``folded`` / ``skipped`` / ``rejected``) and
``ingest_lag_seconds`` histograms the producer-to-service latency using
the two timestamps persisted in the envelope — which is what makes
``dacce events replay`` byte-exact: every input to folding (payloads,
ordering, lag) lives inside the canonical log, so rebuilding state from
``events.ndjson`` reproduces the live ``/cct`` and ``/metrics`` payloads
identically (the CI replay-determinism gate).

Resilience (PR 7): the service additionally

* **recovers from its own log on startup** — a service constructed over
  an existing ``data_dir`` rescans every per-run ``events.ndjson``
  through the same ``_fold`` path, restoring sequence watermarks, run
  summaries and the merged CCT byte-exactly without re-ingesting; a
  torn final line (the previous process died mid-append) is truncated
  away and reported, and the producer's at-least-once retry plus dedupe
  re-covers the lost event;
* **folds exactly once** — engine frames carry the producer's ``seq``;
  a ``(run, origin_seq)`` already folded (spool replay, a retried POST
  whose first attempt was applied but timed out on the wire) becomes a
  persisted ``ingest.duplicate`` envelope instead of double-counting,
  so replay reproduces the dedupe decision deterministically;
* **sheds load explicitly** — :meth:`IngestService.admit` bounds the
  bytes of in-flight POST work (the transport answers ``429`` +
  ``Retry-After``), and SSE subscriber queues are bounded with
  per-subscriber drop accounting pushed as an ``ingest.notice`` event
  once the consumer catches up.
"""

from __future__ import annotations

import logging
import os
import queue
import re
import threading
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

import time

from ..core.context import CallingContext
from ..core.faults import PartialDecode
from ..obs.exporters import to_prometheus_text
from ..obs.registry import DEFAULT_DURATION_BUCKETS, MetricsRegistry
from ..obs.spans import NULL_SPANS, SpanContext, SpanRecorder
from ..prof.cct import CCTAggregator, default_names
from .envelope import (
    DUPLICATE_TYPE,
    ENVELOPE_SCHEMA,
    NOTICE_TYPE,
    REJECT_TYPE,
    Envelope,
    EnvelopeError,
    parse_envelope,
)
from .frames import FrameError, MAX_RAW_ECHO, is_known_type, parse_frame

logger = logging.getLogger(__name__)

#: Ingest-lag histogram bucket bounds, seconds: sub-millisecond local
#: pipes up to slow cross-host batches.
LAG_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 15.0, 60.0,
)

#: Run ids become directory names; keep them path-safe.
_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

DEFAULT_RUN = "default"
DEFAULT_RECENT_CAPACITY = 1024

#: Bound on one SSE subscriber's undelivered-envelope queue.
DEFAULT_SUBSCRIBER_QUEUE = 1024

#: Bound on bytes of admitted-but-unprocessed POST work (back-pressure).
DEFAULT_MAX_PENDING_BYTES = 16 << 20

#: Validated frame outcomes (the ``outcome`` label values).
OUTCOME_FOLDED = "folded"
OUTCOME_SKIPPED = "skipped"
OUTCOME_REJECTED = "rejected"
OUTCOME_DUPLICATE = "duplicate"


class IngestError(ValueError):
    """Invalid ingest request (bad run id, closed service)."""


def new_run_id() -> str:
    return "run-%s" % uuid.uuid4().hex[:8]


def _default_id_factory() -> str:
    return "evt_%s" % uuid.uuid4().hex[:16]


@dataclass
class RunState:
    """Everything the service tracks per run."""

    run: str
    path: Optional[str] = None
    sequence: int = 0
    producer: Optional[str] = None
    started_at: Optional[float] = None
    last_received_at: Optional[float] = None
    outcomes: Dict[str, int] = field(default_factory=dict)
    samples: int = 0
    weight: float = 0.0
    complete: bool = False
    #: Highest producer ``seq`` below which every frame was folded.
    origin_watermark: int = -1
    #: Folded producer seqs above the watermark (out-of-order arrivals),
    #: compacted into the watermark as the gap below them fills.
    origin_pending: Set[int] = field(default_factory=set)
    _handle: Optional[IO[str]] = None

    def origin_seen(self, seq: int) -> bool:
        """Was producer frame ``seq`` already folded for this run?"""
        return seq <= self.origin_watermark or seq in self.origin_pending

    def mark_origin(self, seq: int) -> None:
        """Record producer frame ``seq`` as folded (watermark + sparse set)."""
        if self.origin_seen(seq):
            return
        self.origin_pending.add(seq)
        while self.origin_watermark + 1 in self.origin_pending:
            self.origin_watermark += 1
            self.origin_pending.discard(self.origin_watermark)

    def summary(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "sequence": self.sequence,
            "producer": self.producer,
            "started_at": self.started_at,
            "last_received_at": self.last_received_at,
            "outcomes": dict(self.outcomes),
            "samples": self.samples,
            "weight": self.weight,
            "complete": self.complete,
            "origin_watermark": self.origin_watermark,
        }


@dataclass
class _Subscriber:
    """One SSE consumer: a bounded queue plus its drop ledger."""

    queue: "queue.Queue[Optional[Envelope]]"
    run: Optional[str] = None
    dropped_total: int = 0
    #: Drops not yet reported to the consumer; flushed as one
    #: ``ingest.notice`` the next time its queue has room.
    dropped_pending: int = 0


class IngestService:
    """Validate, envelope, persist, fold and stream producer frames."""

    def __init__(
        self,
        data_dir: Optional[str] = None,
        clock: Callable[[], float] = time.time,
        id_factory: Callable[[], str] = _default_id_factory,
        recent_capacity: int = DEFAULT_RECENT_CAPACITY,
        max_pending_bytes: int = DEFAULT_MAX_PENDING_BYTES,
        spans: Optional[SpanRecorder] = None,
    ):
        self.data_dir = data_dir
        if data_dir is not None:
            os.makedirs(data_dir, exist_ok=True)
        self._clock = clock
        self._id_factory = id_factory
        self._lock = threading.RLock()
        self._runs: Dict[str, RunState] = {}
        self._names: Dict[int, str] = {}
        self.aggregator = CCTAggregator(names=self._resolve_name)
        self.registry = MetricsRegistry(enabled=True)
        self.aggregator.bind_metrics(self.registry)
        # Instruments are created eagerly and in a fixed order so a
        # replayed service renders the identical /metrics document.
        self._c_frames = self.registry.counter(
            "ingest_frames_total",
            "Frames offered to the ingestion service, by kind and outcome.",
            labelnames=("kind", "outcome"),
        )
        self._h_lag = self.registry.histogram(
            "ingest_lag_seconds",
            "Producer-to-service latency (received_at - created_at).",
            buckets=LAG_BUCKETS,
        )
        # Envelope.lag_seconds clamps negative lag (skewed producer
        # clocks) to zero; this counter makes the clamp visible.  It is
        # replay-deterministic — both timestamps are persisted in the
        # envelope — so it belongs in the folded registry.
        self._c_skew = self.registry.counter(
            "ingest_clock_skew_total",
            "Engine frames whose created_at was ahead of the service "
            "clock (negative lag clamped to zero).",
        )
        self._g_runs = self.registry.gauge(
            "ingest_runs",
            "Runs known to the ingestion service.",
        )
        self._c_producer_stats = self.registry.counter(
            "ingest_producer_stats_total",
            "Latest cumulative producer counters from stats.delta frames.",
            labelnames=("run", "stat"),
        )
        self._c_producer_faults = self.registry.counter(
            "ingest_producer_faults_total",
            "Producer fault frames ingested, by fault kind.",
            labelnames=("kind",),
        )
        # Span tracing (docs/OBSERVABILITY.md): continues the trace a
        # producer propagated in the frame's ``trace`` field.  The
        # per-stage timing registry lives BESIDE the folded registry on
        # purpose: wall-clock stage durations cannot replay
        # deterministically, and /metrics is byte-diffed live-vs-replay
        # in CI, so timing is served by /spans instead.
        self.spans = spans if spans is not None else NULL_SPANS
        self.timing = MetricsRegistry(enabled=True)
        self._h_stage = self.timing.histogram(
            "ingest_stage_seconds",
            "Per-stage ingest latency (admit/validate/fold/publish), "
            "with span-id exemplars when tracing.",
            labelnames=("stage",),
            buckets=DEFAULT_DURATION_BUCKETS,
        )
        # Live-stream plumbing (not part of replayed state).
        self._recent: Deque[Envelope] = deque(maxlen=recent_capacity)
        self._subscribers: List[_Subscriber] = []
        self.subscriber_drops = 0
        # Back-pressure accounting: its own lock, so admission control
        # answers immediately even while a fold holds the main lock.
        self._pending_lock = threading.Lock()
        self._pending_bytes = 0
        self.max_pending_bytes = max_pending_bytes
        self.overload_rejections = 0
        self.started_at = self._clock()
        # Crash recovery: adopt whatever a previous process persisted.
        self.recovery = self.recover_from_disk()

    # ------------------------------------------------------------------
    # names
    # ------------------------------------------------------------------
    def _resolve_name(self, function: int) -> str:
        name = self._names.get(function)
        return name if name is not None else default_names(function)

    # ------------------------------------------------------------------
    # run registry
    # ------------------------------------------------------------------
    def _run_state(self, run_id: str) -> RunState:
        state = self._runs.get(run_id)
        if state is None:
            path = None
            if self.data_dir is not None:
                run_dir = os.path.join(self.data_dir, run_id)
                os.makedirs(run_dir, exist_ok=True)
                path = os.path.join(run_dir, "events.ndjson")
            state = RunState(run=run_id, path=path)
            self._runs[run_id] = state
            self._g_runs.set(len(self._runs))
        return state

    def runs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                state.summary()
                for _, state in sorted(self._runs.items())
            ]

    def events_path(self, run_id: str) -> Optional[str]:
        with self._lock:
            state = self._runs.get(run_id)
            return state.path if state is not None else None

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest_lines(
        self,
        run_id: str,
        lines: Iterable[str],
        source: str = "engine",
        admit_seconds: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Ingest NDJSON frame lines for one run; returns a summary.

        Every non-blank line is accounted for: validated frames become
        canonical envelopes (``folded`` or, for unknown types,
        ``skipped``); invalid lines become service-sourced
        ``ingest.rejected`` envelopes.  All three are persisted and
        streamed, so the canonical log is a complete record of what the
        service was offered.

        ``admit_seconds`` is the transport's already-measured admission
        + body-read duration (the HTTP handler times it before any
        frame is parsed); with tracing on it is recorded as an
        ``ingest.admit`` span parented to the first propagated trace in
        the batch.
        """
        if not _RUN_ID_RE.match(run_id):
            raise IngestError(
                "invalid run id %r (want %s)" % (run_id, _RUN_ID_RE.pattern)
            )
        counts = {
            OUTCOME_FOLDED: 0,
            OUTCOME_SKIPPED: 0,
            OUTCOME_REJECTED: 0,
            OUTCOME_DUPLICATE: 0,
        }
        last_sequence = 0
        tracing = self.spans.enabled
        admit_pending = admit_seconds if tracing else None
        with self._lock:
            state = self._run_state(run_id)
            if not tracing:
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    envelope = self._envelope_line(state, line, source)
                    outcome = self._fold(envelope)
                    counts[outcome] += 1
                    state.outcomes[outcome] = (
                        state.outcomes.get(outcome, 0) + 1
                    )
                    self._persist(state, envelope)
                    self._publish(envelope)
            else:
                for line in lines:
                    line = line.strip()
                    if not line:
                        continue
                    t0 = time.perf_counter()
                    envelope = self._envelope_line(state, line, source)
                    validate_dur = time.perf_counter() - t0
                    parent = SpanContext.from_frame_field(envelope.trace)
                    if parent is not None and admit_pending is not None:
                        self._stage_span(
                            "admit", "ingest.admit", admit_pending, parent
                        )
                        admit_pending = None
                    self._stage_span(
                        "validate", "ingest.validate", validate_dur, parent
                    )
                    t1 = time.perf_counter()
                    outcome = self._fold(envelope)
                    fold_dur = time.perf_counter() - t1
                    self._stage_span(
                        "fold", "ingest.fold", fold_dur, parent,
                        outcome=outcome,
                    )
                    counts[outcome] += 1
                    state.outcomes[outcome] = (
                        state.outcomes.get(outcome, 0) + 1
                    )
                    t2 = time.perf_counter()
                    self._persist(state, envelope)
                    self._publish(envelope)
                    publish_dur = time.perf_counter() - t2
                    self._stage_span(
                        "publish", "ingest.publish", publish_dur, parent
                    )
            last_sequence = state.sequence
            if state._handle is not None:
                state._handle.flush()
        return {
            "run": run_id,
            "accepted": counts[OUTCOME_FOLDED] + counts[OUTCOME_SKIPPED],
            "folded": counts[OUTCOME_FOLDED],
            "skipped": counts[OUTCOME_SKIPPED],
            "rejected": counts[OUTCOME_REJECTED],
            "duplicates": counts[OUTCOME_DUPLICATE],
            "last_sequence": last_sequence,
        }

    def ingest_stream(
        self,
        stream: IO[str],
        run_id: str,
        source: str = "engine",
        batch: int = 256,
    ) -> Dict[str, Any]:
        """Ingest frames from a line stream (piped producer stdout)."""
        totals = {
            "run": run_id, "accepted": 0, "folded": 0, "skipped": 0,
            "rejected": 0, "duplicates": 0, "last_sequence": 0,
        }
        buffer: List[str] = []
        for line in stream:
            buffer.append(line)
            if len(buffer) >= batch:
                self._merge_summary(totals, self.ingest_lines(run_id, buffer, source))
                buffer = []
        if buffer:
            self._merge_summary(totals, self.ingest_lines(run_id, buffer, source))
        return totals

    @staticmethod
    def _merge_summary(totals: Dict[str, Any], part: Dict[str, Any]) -> None:
        for key in ("accepted", "folded", "skipped", "rejected", "duplicates"):
            totals[key] += part[key]
        totals["last_sequence"] = part["last_sequence"]

    def _stage_span(
        self,
        stage: str,
        name: str,
        duration: float,
        parent: Optional[SpanContext],
        **attrs: Any,
    ) -> None:
        """Record one service-side pipeline stage (tracing only).

        Emits a child span continuing the producer's propagated context
        (skipped for pre-span producers — nothing to parent to) and an
        ``ingest_stage_seconds`` observation whose exemplar links the
        histogram series back to the exact trace that produced it.
        """
        exemplar = None
        if parent is not None:
            record = self.spans.record(
                name,
                # ``validate`` rides the admit stage in the waterfall's
                # six-stage taxonomy; the histogram keeps it separate.
                stage="admit" if stage == "validate" else stage,
                duration=duration,
                parent=parent,
                **attrs,
            )
            exemplar = {"trace": record["trace"], "span": record["span"]}
        self._h_stage.labels(stage).observe(duration, exemplar)

    def _envelope_line(
        self, state: RunState, line: str, source: str
    ) -> Envelope:
        """Validate one raw line and stamp its canonical envelope."""
        received_at = self._clock()
        state.sequence += 1
        try:
            frame = parse_frame(line)
        except FrameError as error:
            return Envelope(
                type=REJECT_TYPE,
                event_id=self._id_factory(),
                sequence=state.sequence,
                run=state.run,
                source="api",
                created_at=received_at,
                received_at=received_at,
                payload={
                    "reason": error.reason,
                    "error": str(error),
                    "raw": line[:MAX_RAW_ECHO],
                },
            )
        origin = frame.get("seq")
        if (
            source == "engine"
            and isinstance(origin, int)
            and state.origin_seen(origin)
        ):
            # At-least-once transport (spool replay, a retried POST
            # whose first attempt was applied) resent a frame we
            # already folded.  Persist the dedupe decision so replay
            # reproduces it; the sequence slot is still consumed.
            return Envelope(
                type=DUPLICATE_TYPE,
                event_id=self._id_factory(),
                sequence=state.sequence,
                run=state.run,
                source="api",
                created_at=received_at,
                received_at=received_at,
                payload={"of": frame["type"], "origin_seq": origin},
                # The resend keeps its propagated trace: a retried POST
                # or spool replay stays attributable to the flush that
                # originally produced the frame.
                trace=frame.get("trace"),
            )
        return Envelope(
            type=frame["type"],
            event_id=self._id_factory(),
            sequence=state.sequence,
            run=state.run,
            source=source,
            created_at=float(frame["created_at"]),
            received_at=received_at,
            payload=frame["payload"],
            origin_seq=frame.get("seq"),
            trace=frame.get("trace"),
        )

    # ------------------------------------------------------------------
    # folding (shared verbatim by live ingest and replay)
    # ------------------------------------------------------------------
    def _fold(self, envelope: Envelope) -> str:
        """Fold one canonical envelope into live state.

        Pure in the envelope: called with identical envelopes in
        identical order it produces identical aggregator and registry
        state — the replay-determinism contract.
        """
        state = self._run_state(envelope.run)
        state.last_received_at = envelope.received_at
        if state.started_at is None:
            state.started_at = envelope.received_at
        if envelope.type == REJECT_TYPE:
            self._c_frames.labels("invalid", OUTCOME_REJECTED).inc()
            return OUTCOME_REJECTED
        if envelope.type == DUPLICATE_TYPE:
            of = envelope.payload.get("of")
            self._c_frames.labels(
                of if isinstance(of, str) else "unknown", OUTCOME_DUPLICATE
            ).inc()
            return OUTCOME_DUPLICATE
        if envelope.source == "engine" and envelope.origin_seq is not None:
            # Folded (or skipped-but-accounted) engine frames enter the
            # dedupe ledger here — shared by live ingest, replay and
            # crash recovery, so all three agree on what counts as seen.
            state.mark_origin(envelope.origin_seq)
        if not is_known_type(envelope.type):
            self._c_frames.labels(envelope.type, OUTCOME_SKIPPED).inc()
            return OUTCOME_SKIPPED
        self._c_frames.labels(envelope.type, OUTCOME_FOLDED).inc()
        if envelope.source == "engine":
            if envelope.received_at < envelope.created_at:
                self._c_skew.inc()
            self._h_lag.observe(envelope.lag_seconds)
        payload = envelope.payload
        if envelope.type == "profile.samples":
            self._fold_samples(state, payload)
        elif envelope.type == "run.start":
            producer = payload.get("producer")
            if isinstance(producer, str):
                state.producer = producer
            names = payload.get("names")
            if isinstance(names, dict):
                for key, value in names.items():
                    try:
                        self._names[int(key)] = str(value)
                    except (TypeError, ValueError):
                        continue
        elif envelope.type == "run.complete":
            state.complete = True
        elif envelope.type == "stats.delta":
            stats = payload.get("stats")
            if isinstance(stats, dict):
                for stat, value in sorted(stats.items()):
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        self._c_producer_stats.set_total(
                            float(value), envelope.run, str(stat)
                        )
        elif envelope.type == "fault":
            kind = payload.get("kind")
            self._c_producer_faults.labels(
                kind if isinstance(kind, str) else "unknown"
            ).inc()
        # heartbeat: the frames counter above is the fold.
        return OUTCOME_FOLDED

    def _fold_samples(self, state: RunState, payload: Dict[str, Any]) -> None:
        for entry in payload.get("samples", ()):
            path = tuple(entry.get("path", ()))
            weight = float(entry.get("weight", 1.0))
            gts = int(entry.get("gts", 0))
            context = CallingContext.from_functions(path)
            if entry.get("partial"):
                result: Any = PartialDecode(context=context, complete=False)
            else:
                result = context
            self.aggregator.add_decoded(result, weight, timestamp=gts)
            state.samples += 1
            state.weight += weight

    # ------------------------------------------------------------------
    # persistence + streaming
    # ------------------------------------------------------------------
    def _persist(self, state: RunState, envelope: Envelope) -> None:
        if state.path is None:
            return
        if state._handle is None:
            state._handle = open(state.path, "a")
        state._handle.write(envelope.to_json_line() + "\n")

    def _publish(self, envelope: Envelope) -> None:
        self._recent.append(envelope)
        for sub in list(self._subscribers):
            if sub.run is not None and envelope.run != sub.run:
                continue
            self._offer(sub, envelope)

    def _offer(self, sub: _Subscriber, envelope: Envelope) -> None:
        """Deliver to one bounded subscriber queue, accounting drops.

        A full queue (slow consumer) drops the envelope and counts it;
        once the consumer drains some room, the accumulated drop count
        is pushed as a single ``ingest.notice`` event ahead of the next
        delivery, so the consumer knows its view has a gap.
        """
        if sub.dropped_pending:
            notice = Envelope(
                type=NOTICE_TYPE,
                event_id=self._id_factory(),
                sequence=envelope.sequence,
                run=envelope.run,
                source="api",
                created_at=envelope.received_at,
                received_at=envelope.received_at,
                payload={
                    "kind": "subscriber.dropped",
                    "dropped": sub.dropped_pending,
                    "dropped_total": sub.dropped_total,
                },
            )
            try:
                sub.queue.put_nowait(notice)
            except queue.Full:
                pass
            else:
                sub.dropped_pending = 0
        try:
            sub.queue.put_nowait(envelope)
        except queue.Full:
            sub.dropped_pending += 1
            sub.dropped_total += 1
            self.subscriber_drops += 1

    def subscribe(
        self,
        run: Optional[str] = None,
        backlog: int = 0,
        maxsize: int = DEFAULT_SUBSCRIBER_QUEUE,
    ) -> "queue.Queue[Optional[Envelope]]":
        """A live envelope queue; ``backlog`` recent events are pre-seeded.

        The queue is bounded (``maxsize``): a consumer that cannot keep
        up loses envelopes with per-subscriber accounting instead of
        growing the server's memory without limit; the loss is reported
        to that consumer as an ``ingest.notice`` event.
        """
        sub = _Subscriber(queue=queue.Queue(maxsize=maxsize), run=run)
        with self._lock:
            if backlog:
                for envelope in list(self._recent)[-backlog:]:
                    if run is not None and envelope.run != run:
                        continue
                    try:
                        sub.queue.put_nowait(envelope)
                    except queue.Full:
                        break
            self._subscribers.append(sub)
        return sub.queue

    def unsubscribe(self, subscriber: "queue.Queue[Optional[Envelope]]") -> None:
        with self._lock:
            self._subscribers = [
                s for s in self._subscribers if s.queue is not subscriber
            ]

    def subscriber_summary(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                {
                    "run": s.run,
                    "queued": s.queue.qsize(),
                    "dropped_total": s.dropped_total,
                }
                for s in self._subscribers
            ]

    # ------------------------------------------------------------------
    # back-pressure (transport admission control)
    # ------------------------------------------------------------------
    def admit(self, nbytes: int) -> Tuple[bool, Optional[float]]:
        """Admission gate for ``nbytes`` of transport work.

        Returns ``(True, None)`` and reserves the bytes (pair with
        :meth:`release` when the work is done), or ``(False,
        retry_after_seconds)`` when the pending backlog would exceed
        ``max_pending_bytes`` — the transport layer turns that into
        ``429`` + ``Retry-After`` without reading the request body.
        """
        with self._pending_lock:
            if self._pending_bytes + nbytes > self.max_pending_bytes:
                self.overload_rejections += 1
                backlog = self._pending_bytes + nbytes
                retry_after = min(
                    30.0, max(1.0, backlog / float(max(1, self.max_pending_bytes)))
                )
                return False, retry_after
            self._pending_bytes += nbytes
            return True, None

    def release(self, nbytes: int) -> None:
        with self._pending_lock:
            self._pending_bytes = max(0, self._pending_bytes - nbytes)

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def recover_from_disk(self) -> Dict[str, Any]:
        """Rebuild live state from persisted per-run event logs.

        Every ``<data_dir>/<run>/events.ndjson`` is rescanned through
        the same :meth:`_fold` path live ingest uses, restoring
        sequence watermarks, origin-dedupe ledgers, run summaries and
        the merged CCT byte-exactly — without re-ingesting anything
        (recovered envelopes are neither re-persisted nor published).
        A torn final line is truncated off the file (and reported) so
        later appends cannot concatenate into garbage; unparseable
        lines are skipped and counted, recover-never-raises style.
        """
        report = {"runs": 0, "events": 0, "torn_lines": 0, "bad_lines": 0}
        if self.data_dir is None or not os.path.isdir(self.data_dir):
            return report
        with self._lock:
            for run_id in sorted(os.listdir(self.data_dir)):
                if not _RUN_ID_RE.match(run_id):
                    continue
                path = os.path.join(self.data_dir, run_id, "events.ndjson")
                if not os.path.isfile(path):
                    continue
                report["runs"] += 1
                report["events"] += self._recover_run(run_id, path, report)
        if report["events"] or report["torn_lines"]:
            logger.info(
                "recovered %d event(s) across %d run(s) "
                "(%d torn line(s) truncated, %d bad line(s) skipped)",
                report["events"], report["runs"],
                report["torn_lines"], report["bad_lines"],
            )
        return report

    def _recover_run(
        self, run_id: str, path: str, report: Dict[str, Any]
    ) -> int:
        with open(path, "rb") as handle:
            raw = handle.read()
        if raw and not raw.endswith(b"\n"):
            # The previous process died mid-append.  Drop the torn tail
            # on disk too: a later append would otherwise concatenate
            # with it into one garbage line.  The producer's
            # at-least-once retry + (run, origin_seq) dedupe re-covers
            # the lost event without double-counting the rest.
            cut = raw.rfind(b"\n") + 1
            os.truncate(path, cut)
            raw = raw[:cut]
            report["torn_lines"] += 1
        state = self._run_state(run_id)
        events = 0
        for line in raw.decode("utf-8", errors="replace").splitlines():
            if not line.strip():
                continue
            try:
                envelope = parse_envelope(line)
            except EnvelopeError:
                report["bad_lines"] += 1
                continue
            if envelope.sequence <= state.sequence:
                report["bad_lines"] += 1
                continue
            state.sequence = envelope.sequence
            outcome = self._fold(envelope)
            state.outcomes[outcome] = state.outcomes.get(outcome, 0) + 1
            events += 1
        return events

    def close(self) -> None:
        with self._lock:
            for state in self._runs.values():
                if state._handle is not None:
                    state._handle.close()
                    state._handle = None
            for sub in self._subscribers:
                try:
                    sub.queue.put_nowait(None)
                except queue.Full:
                    # Make room for the shutdown sentinel: the consumer
                    # is gone or stalled, one more dropped envelope is
                    # already accounted-for behaviour.
                    try:
                        sub.queue.get_nowait()
                        sub.queue.put_nowait(None)
                    except (queue.Empty, queue.Full):
                        pass
            self._subscribers = []

    # ------------------------------------------------------------------
    # read-side documents (the server's and replay-diff's shared source)
    # ------------------------------------------------------------------
    def cct_json(self) -> str:
        import json as _json

        return _json.dumps(self.aggregator.to_dict(), indent=2) + "\n"

    def metrics_text(self) -> str:
        return to_prometheus_text(self.registry.snapshot())

    def spans_json(self, limit: int = 512) -> str:
        """The ``/spans`` document: recent service spans + stage timing.

        Timing histograms (with their span-id exemplars) are served
        here and never via ``/metrics``: wall-clock stage durations are
        not replay-deterministic and would break the live-vs-replay
        byte diff CI runs over the folded registry.
        """
        import json as _json

        spans = self.spans.spans()
        document = {
            "enabled": bool(self.spans.enabled),
            "service": getattr(self.spans, "service", ""),
            "emitted": self.spans.emitted,
            "dropped": self.spans.dropped,
            "spans": spans[-max(0, limit):],
            "stages": self.timing.snapshot(),
        }
        return _json.dumps(document, indent=2, sort_keys=True) + "\n"

    def flame_text(self) -> str:
        from ..prof.export import to_folded

        return to_folded(self.aggregator) + "\n"

    def top_rows(self, n: int = 10, by: str = "self") -> List[Dict[str, Any]]:
        from ..prof.export import top_contexts

        return top_contexts(self.aggregator, n=n, by=by)

    def healthz(self) -> Dict[str, Any]:
        stats = self.aggregator.stats()
        with self._pending_lock:
            pending_bytes = self._pending_bytes
            overload_rejections = self.overload_rejections
        with self._lock:
            return {
                "runs": len(self._runs),
                "subscribers": len(self._subscribers),
                "subscriber_drops": self.subscriber_drops,
                "pending_bytes": pending_bytes,
                "max_pending_bytes": self.max_pending_bytes,
                "overload_rejections": overload_rejections,
                "clock_skew_total": int(self._c_skew.value()),
                "recovery": dict(self.recovery),
                "samples": stats["samples"],
                "weight": stats["weight"],
                "uptime_seconds": self._clock() - self.started_at,
                "schema": ENVELOPE_SCHEMA,
            }
