"""The canonical API envelope: ``dacce.events.v1``.

The ingestion service re-envelopes every accepted engine frame into the
canonical event stream — the shape that is persisted (one
``events.ndjson`` per run), streamed to clients (SSE / NDJSON download)
and replayed.  The envelope adds what only the service knows::

    {"schema": "dacce.events.v1",
     "type": "profile.samples",          # frame type, preserved
     "event_id": "evt_6f1c...",          # stamped by the service
     "sequence": 42,                     # strictly monotonic per run
     "run": "run-1a2b",                  # the run this event belongs to
     "source": "engine",                 # or "api" for service events
     "created_at": 1754650000.123,       # producer clock (from frame)
     "received_at": 1754650000.321,      # service clock at ingest
     "origin_seq": 17,                   # producer frame seq, if present
     "payload": {...}}                   # validated frame payload

Determinism contract: everything folding needs — the payload, the
ordering (``sequence``) and the ingest lag (``received_at -
created_at``) — is persisted *inside* the envelope, so replaying an
``events.ndjson`` byte-exactly reproduces the live aggregator and
metrics state (the ``dacce events replay`` gate in CI).

Service-sourced events use the same envelope with ``source: "api"``;
the v1 service emits:

* ``ingest.rejected`` for frames that failed validation (payload
  carries the reason and a truncated echo of the raw line), so the
  canonical log accounts for every line it was offered;
* ``ingest.duplicate`` for frames whose ``(run, origin_seq)`` was
  already folded — the at-least-once transport (spool replay, retried
  POSTs) may resend, and the duplicate envelope is *persisted* so
  replay reproduces the dedupe decision deterministically (payload
  carries ``of``, the original frame type, and ``origin_seq``);
* ``ingest.notice`` for service conditions pushed to live SSE
  subscribers only (e.g. slow-consumer drop accounting).  Notices are
  *not* persisted and *not* folded: they describe this server
  process's delivery to one subscriber, not run state, so they must
  stay out of the replay-determinism surface.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Schema discriminator for canonical envelopes.
ENVELOPE_SCHEMA = "dacce.events.v1"

#: ``type`` of the service-sourced reject event.
REJECT_TYPE = "ingest.rejected"

#: ``type`` of the service-sourced duplicate-suppression event
#: (persisted: the dedupe decision replays deterministically).
DUPLICATE_TYPE = "ingest.duplicate"

#: ``type`` of service-sourced live notices (SSE only, never persisted).
NOTICE_TYPE = "ingest.notice"


class EnvelopeError(ValueError):
    """An envelope line failed validation; ``reason`` is a stable slug."""

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class Envelope:
    """One canonical event."""

    type: str
    event_id: str
    sequence: int
    run: str
    source: str
    created_at: float
    received_at: float
    payload: Dict[str, Any]
    origin_seq: Optional[int] = None
    #: Producer span propagation, preserved from the frame's additive
    #: ``trace`` field (``{"id": ..., "span": ...}``).  ``None`` for
    #: pre-span producers, keeping their envelope bytes unchanged.
    trace: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "schema": ENVELOPE_SCHEMA,
            "type": self.type,
            "event_id": self.event_id,
            "sequence": self.sequence,
            "run": self.run,
            "source": self.source,
            "created_at": self.created_at,
            "received_at": self.received_at,
            "payload": self.payload,
        }
        if self.origin_seq is not None:
            data["origin_seq"] = self.origin_seq
        if self.trace is not None:
            data["trace"] = self.trace
        return data

    def to_json_line(self) -> str:
        """One NDJSON line (no trailing newline), key-sorted."""
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @property
    def lag_seconds(self) -> float:
        """Ingest lag as persisted; clamped at zero for skewed clocks."""
        return max(0.0, self.received_at - self.created_at)


def _require(condition: bool, reason: str, message: str) -> None:
    if not condition:
        raise EnvelopeError(reason, message)


def envelope_from_dict(obj: Any) -> Envelope:
    """Validate one parsed canonical event; raises :class:`EnvelopeError`."""
    _require(isinstance(obj, dict), "not-an-object", "event is not a JSON object")
    assert isinstance(obj, dict)
    schema = obj.get("schema")
    _require(
        schema == ENVELOPE_SCHEMA,
        "bad-schema",
        "event schema %r is not %r" % (schema, ENVELOPE_SCHEMA),
    )
    for key, kinds in (
        ("type", str),
        ("event_id", str),
        ("run", str),
        ("source", str),
        ("payload", dict),
    ):
        _require(
            isinstance(obj.get(key), kinds),
            "bad-field",
            "event %r must be %s" % (key, kinds.__name__),
        )
    sequence = obj.get("sequence")
    _require(
        isinstance(sequence, int) and not isinstance(sequence, bool)
        and sequence >= 1,
        "bad-sequence",
        "event 'sequence' must be a positive integer",
    )
    for key in ("created_at", "received_at"):
        value = obj.get(key)
        _require(
            isinstance(value, (int, float)) and not isinstance(value, bool),
            "bad-timestamp",
            "event %r must be a unix timestamp" % key,
        )
    origin_seq = obj.get("origin_seq")
    if origin_seq is not None:
        _require(
            isinstance(origin_seq, int) and not isinstance(origin_seq, bool),
            "bad-field",
            "event 'origin_seq' must be an integer",
        )
    trace = obj.get("trace")
    if trace is not None:
        _require(
            isinstance(trace, dict)
            and isinstance(trace.get("id"), str)
            and isinstance(trace.get("span"), str),
            "bad-field",
            "event 'trace' must be an object with string 'id' and 'span'",
        )
    assert isinstance(sequence, int)
    return Envelope(
        type=obj["type"],
        event_id=obj["event_id"],
        sequence=sequence,
        run=obj["run"],
        source=obj["source"],
        created_at=float(obj["created_at"]),
        received_at=float(obj["received_at"]),
        payload=obj["payload"],
        origin_seq=origin_seq,
        trace=trace,
    )


def parse_envelope(line: str) -> Envelope:
    """Parse + validate one canonical NDJSON line."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        raise EnvelopeError("bad-json", "event line is not JSON: %s" % error)
    return envelope_from_dict(obj)
