"""HTTP front-end for the ingestion service: POST frames, stream events.

Stdlib-only (``http.server``), mirroring the profile server's shape: a
transport-free :class:`IngestService` does all the work and the handler
just maps routes.  Endpoints:

* ``POST /ingest?run=<id>`` — NDJSON frame lines in the body; responds
  with the per-batch ingest summary as JSON.
* ``GET /events`` — live canonical envelopes as Server-Sent Events
  (``Content-Type: text/event-stream``); ``?run=<id>`` filters to one
  run, ``?backlog=N`` pre-seeds up to N recent events, ``?limit=N``
  closes the stream after N events (what tests and the CI smoke job use
  to make SSE finite).
* ``GET /runs`` — run registry summaries.
* ``GET /runs/<id>/events`` — the canonical ``events.ndjson`` log as an
  NDJSON download.
* ``GET /cct`` / ``/flame`` / ``/top`` / ``/metrics`` / ``/healthz`` —
  the merged many-producer view, same documents the profile server
  serves for a single in-process engine.
* ``GET /spans`` — recent service-side spans plus per-stage timing
  histograms (span-id exemplars included); see docs/OBSERVABILITY.md.

Every response carries an explicit ``Content-Type`` and
``Cache-Control: no-store``; unknown routes return a structured JSON
404.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .envelope import Envelope
from .service import IngestError, IngestService

#: Seconds between SSE keep-alive comments when no events arrive.
SSE_KEEPALIVE_SECONDS = 15.0


def _json_body(obj: Any) -> Tuple[str, str]:
    return "application/json", json.dumps(obj, indent=2) + "\n"


def _not_found(path: str) -> Tuple[int, str, str]:
    content_type, body = _json_body(
        {
            "error": "not-found",
            "path": path,
            "routes": [
                "/", "/ingest", "/events", "/runs", "/runs/<id>/events",
                "/cct", "/flame", "/top", "/metrics", "/spans", "/healthz",
            ],
        }
    )
    return 404, content_type, body


class _IngestHandler(BaseHTTPRequestHandler):
    """Routes bound to a service via ``type(...)`` subclassing."""

    service: IngestService
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # requests are observable via /metrics, not stderr noise

    def _send(
        self,
        status: int,
        content_type: str,
        body: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Cache-Control", "no-store")
        self.send_header("Content-Length", str(len(payload)))
        if extra_headers:
            for name, value in extra_headers.items():
                self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    # -- ingestion -----------------------------------------------------
    def do_POST(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path != "/ingest":
            self._send(*_not_found(parsed.path))
            return
        query = parse_qs(parsed.query)
        run_id = query.get("run", ["default"])[0]
        length = int(self.headers.get("Content-Length", "0"))
        admitted, retry_after = self.service.admit(length)
        if not admitted:
            # Overload: shed the request before reading its body.  The
            # producer's spool honours Retry-After, so the backlog
            # drains at the pace the service asks for.
            self._send(
                429,
                *_json_body(
                    {
                        "error": "overloaded",
                        "detail": "ingest backlog over %d bytes"
                        % self.service.max_pending_bytes,
                        "retry_after": retry_after,
                    }
                ),
                extra_headers={
                    "Retry-After": "%g" % (retry_after or 1.0),
                    "Connection": "close",
                },
            )
            return
        try:
            # Admission + body read are timed here — before any frame
            # is parsed — and handed to the service, which attributes
            # them to the batch's propagated trace when tracing is on.
            admit_started = time.perf_counter()
            body = self.rfile.read(length).decode("utf-8", errors="replace")
            admit_seconds = time.perf_counter() - admit_started
            try:
                summary = self.service.ingest_lines(
                    run_id,
                    body.splitlines(),
                    source="engine",
                    admit_seconds=admit_seconds,
                )
            except IngestError as error:
                self._send(
                    400,
                    *_json_body({"error": "bad-request", "detail": str(error)}),
                )
                return
            self._send(200, *_json_body(summary))
        finally:
            self.service.release(length)

    # -- reads ---------------------------------------------------------
    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        query = parse_qs(parsed.query)
        path = parsed.path
        if path == "/events":
            self._stream_events(query)
            return
        if path.startswith("/runs/") and path.endswith("/events"):
            self._download_run(path[len("/runs/"):-len("/events")])
            return
        status, content_type, body = self._document(path, query)
        self._send(status, content_type, body)

    def _document(
        self, path: str, query: Dict[str, Any]
    ) -> Tuple[int, str, str]:
        service = self.service
        if path == "/":
            return (
                200,
                *_json_body(
                    {
                        "service": "dacce-ingest",
                        "endpoints": [
                            "/ingest (POST)", "/events", "/runs",
                            "/runs/<id>/events", "/cct", "/flame", "/top",
                            "/metrics", "/spans", "/healthz",
                        ],
                    }
                ),
            )
        if path == "/cct":
            return 200, "application/json", service.cct_json()
        if path == "/flame":
            return 200, "text/plain; charset=utf-8", service.flame_text()
        if path == "/top":
            n = int(query.get("n", ["10"])[0])
            by = query.get("by", ["self"])[0]
            try:
                rows = service.top_rows(n=n, by=by)
            except ValueError as error:
                return 400, *_json_body(
                    {"error": "bad-request", "detail": str(error)}
                )
            return 200, *_json_body(rows)
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                service.metrics_text(),
            )
        if path == "/spans":
            limit = int(query.get("limit", ["512"])[0])
            return 200, "application/json", service.spans_json(limit=limit)
        if path == "/runs":
            return 200, *_json_body(service.runs())
        if path == "/healthz":
            return 200, *_json_body(service.healthz())
        return _not_found(path)

    def _download_run(self, run_id: str) -> None:
        events_path = self.service.events_path(run_id)
        if events_path is None:
            self._send(
                404,
                *_json_body(
                    {"error": "not-found", "detail": "unknown run %r" % run_id}
                ),
            )
            return
        try:
            with open(events_path) as handle:
                body = handle.read()
        except OSError:
            body = ""
        self._send(200, "application/x-ndjson", body)

    def _stream_events(self, query: Dict[str, Any]) -> None:
        run = query.get("run", [None])[0]
        limit = int(query.get("limit", ["0"])[0])
        backlog = int(query.get("backlog", ["0"])[0])
        subscriber = self.service.subscribe(run=run, backlog=backlog)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        try:
            while True:
                try:
                    envelope = subscriber.get(timeout=SSE_KEEPALIVE_SECONDS)
                except queue.Empty:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                if envelope is None:  # service shutdown sentinel
                    break
                self.wfile.write(self._sse_event(envelope))
                self.wfile.flush()
                sent += 1
                if limit and sent >= limit:
                    break
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            self.service.unsubscribe(subscriber)

    @staticmethod
    def _sse_event(envelope: Envelope) -> bytes:
        return (
            "id: %d\nevent: %s\ndata: %s\n\n"
            % (envelope.sequence, envelope.type, envelope.to_json_line())
        ).encode("utf-8")


class IngestServer:
    """Threaded ingestion HTTP server around one :class:`IngestService`."""

    def __init__(
        self,
        service: IngestService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        handler = type("BoundIngestHandler", (_IngestHandler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return str(self._httpd.server_address[0])

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "IngestServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="dacce-ingest-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self.service.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def abort(self) -> None:
        """Kill the HTTP listener *without* closing the service.

        Simulates a crash for the chaos harness: file handles stay
        unflushed-as-they-were and no shutdown sentinel reaches
        subscribers, exactly as if the process died.  A fresh service
        pointed at the same data dir must then recover from disk.
        """
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve_ingest(
    service: Optional[IngestService] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    data_dir: Optional[str] = None,
) -> IngestServer:
    """Start a background ingestion server (tests + CLI convenience)."""
    if service is None:
        service = IngestService(data_dir=data_dir)
    return IngestServer(service, host=host, port=port).start()
