"""The producer side of the ingestion plane: engine state → frames.

:class:`FrameEmitter` attaches to a :class:`~repro.core.engine.DacceEngine`
and turns every observable action into ``dacce.engine.events.v1`` frames
through a pluggable :class:`~repro.ingest.sinks.EventSink`:

* **Sample batches** — rides the engine's continuous-profiling hook;
  samples are buffered raw on the hot path (one list append) and decoded
  lazily at flush time through the engine's shared memoized
  :class:`~repro.core.decoder.DecodeCache`, then emitted as one
  ``profile.samples`` frame carrying decoded paths.
* **Re-encoding passes** — via ``engine.reencode_listeners``; one
  ``reencode.pass`` frame per committed pass.
* **Faults** — via ``engine.faults.subscribe``; one ``fault`` frame per
  quarantined event (``recover`` policy).
* **Stat deltas** — at each flush, a ``stats.delta`` frame with the
  cheap cumulative counters (calls, fast-path hits, decode-cache hits …)
  plus the delta since the previous frame — the fleet dashboard's
  throughput feed.
* **Heartbeats / lifecycle** — ``heartbeat`` on request or every
  ``heartbeat_every`` seconds (checked at flush points), ``run.start``
  on attach and ``run.complete`` on :meth:`complete`.

Everything user-visible is re-entrancy guarded: if emitting a frame
somehow re-enters the emitter (a traced producer tracing its own
telemetry writes), the inner emission is dropped and counted, mirroring
the buffered tracer's ``_in_engine`` discipline.
"""

from __future__ import annotations

import json
import logging
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.context import CollectedSample
from ..core.decoder import Decoder
from ..obs.spans import NULL_SPANS, SpanRecorder
from .frames import FRAME_SCHEMA, frame_line, make_frame, sample_entry
from .sinks import EventSink, SinkError

logger = logging.getLogger(__name__)

DEFAULT_SAMPLE_BATCH = 256

#: Bound on the memoized serialized-entry cache (cleared wholesale when
#: full — the hot-context working set is far smaller in practice).
ENTRY_CACHE_CAPACITY = 8192


class FrameEmitter:
    """Emit schema-versioned event frames for one engine run."""

    def __init__(
        self,
        sink: EventSink,
        run: Optional[str] = None,
        producer: Optional[str] = None,
        sample_batch: int = DEFAULT_SAMPLE_BATCH,
        heartbeat_every: float = 0.0,
        clock: Callable[[], float] = time.time,
        spans: Optional[SpanRecorder] = None,
    ):
        if sample_batch <= 0:
            raise ValueError("sample_batch must be positive")
        self.sink = sink
        # Span tracing: one root span per flush, its identity stamped
        # into every frame emitted during the flush (the additive
        # ``trace`` field) and shared with the sink so transport spans
        # nest under it.  Strictly no-op when disabled.
        self.spans = spans if spans is not None else NULL_SPANS
        if self.spans.enabled:
            sink.set_spans(self.spans)
        self.run = run
        self.producer = producer
        self.sample_batch = sample_batch
        self.heartbeat_every = heartbeat_every
        self._clock = clock
        self._seq = 0
        self._in_emit = False
        self._engine = None
        self._buffer: List[Tuple[CollectedSample, float]] = []
        self._decoder: Optional[Decoder] = None
        self._decoder_pin: Optional[Tuple[int, int, int]] = None
        self._entry_cache: Dict[Tuple[CollectedSample, float], str] = {}
        self._last_stats: Dict[str, float] = {}
        self._last_heartbeat = 0.0
        #: Trace identity of the currently open flush span, stamped
        #: into frames; ``None`` outside a flush or with spans off.
        self._flush_trace: Optional[Dict[str, str]] = None
        #: Wall-clock duration of the most recent :meth:`flush`
        #: (heartbeat delivery-health field).
        self.last_flush_seconds = 0.0
        self._fault_listener: Optional[Callable[..., None]] = None
        self._reencode_listener: Optional[Callable[..., None]] = None
        #: Frames emitted / dropped (sink failures and re-entrant calls).
        self.frames_emitted = 0
        self.frames_dropped = 0
        self.samples_emitted = 0
        self.sink_errors = 0

    # ------------------------------------------------------------------
    # frame plumbing
    # ------------------------------------------------------------------
    def emit(self, type: str, payload: Dict[str, Any]) -> bool:
        """Serialize + deliver one frame; False when dropped/re-entrant."""
        if self._in_emit:
            self.frames_dropped += 1
            return False
        frame = make_frame(
            type, payload, self._clock(), self._seq, trace=self._flush_trace
        )
        return self._deliver(frame_line(frame))

    def _deliver(self, line: str) -> bool:
        """Hand one already-serialized frame line (built against the
        current ``seq``) to the sink; the sequence number is consumed
        only when the guard admits the call."""
        if self._in_emit:
            self.frames_dropped += 1
            return False
        self._in_emit = True
        try:
            self._seq += 1
            if self.sink.emit(line):
                self.frames_emitted += 1
                return True
            self.frames_dropped += 1
            return False
        finally:
            self._in_emit = False

    def _flush_sink(self) -> None:
        try:
            self.sink.flush()
        except SinkError:
            self.sink_errors += 1
            logger.warning("frame sink flush failed", exc_info=True)

    # ------------------------------------------------------------------
    # engine attachment
    # ------------------------------------------------------------------
    def attach(
        self,
        engine,
        every: int = 64,
        weigher: Optional[Callable[[], float]] = None,
        names: Optional[Dict[int, str]] = None,
    ) -> "FrameEmitter":
        """Hook into ``engine``; emits the ``run.start`` frame.

        Installs the engine's continuous-profiling hook (one per
        engine), subscribes to the fault log and the re-encoding
        listener list.  :meth:`detach` (or :meth:`complete`) undoes all
        three.
        """
        if self._engine is not None:
            raise RuntimeError("emitter already attached to an engine")
        self._engine = engine
        engine.install_sample_hook(every, self._on_sample, weigher=weigher)
        self._fault_listener = engine.faults.subscribe(self._on_fault)
        self._reencode_listener = self._on_reencode
        engine.reencode_listeners.append(self._reencode_listener)
        start_payload: Dict[str, Any] = {
            "producer": self.producer,
            "sample_every": every,
            "root": engine.graph.root,
        }
        if self.run is not None:
            start_payload["run"] = self.run
        if names:
            start_payload["names"] = {str(k): v for k, v in names.items()}
        self.emit("run.start", start_payload)
        return self

    def detach(self) -> None:
        engine = self._engine
        if engine is None:
            return
        self.flush()
        engine.remove_sample_hook()
        if self._fault_listener is not None:
            engine.faults.unsubscribe(self._fault_listener)
            self._fault_listener = None
        if self._reencode_listener is not None:
            try:
                engine.reencode_listeners.remove(self._reencode_listener)
            except ValueError:
                pass
            self._reencode_listener = None
        self._engine = None
        self._decoder = None
        self._decoder_pin = None
        self._entry_cache.clear()

    def complete(self) -> None:
        """Flush, emit ``run.complete``, flush the sink, detach."""
        engine = self._engine
        self.flush()
        payload: Dict[str, Any] = {}
        if engine is not None:
            payload = {
                "calls": engine.stats.calls,
                "returns": engine.stats.returns,
                "profile_samples": engine.stats.profile_samples,
                "reencodings": engine.stats.reencodings,
                "faults": engine.faults.total,
            }
        payload["frames_emitted"] = self.frames_emitted
        payload["samples_emitted"] = self.samples_emitted
        self.emit("run.complete", payload)
        self._flush_sink()
        self.detach()

    # ------------------------------------------------------------------
    # hot-path hooks
    # ------------------------------------------------------------------
    def _on_sample(self, sample: CollectedSample, weight: float) -> None:
        # One append per sample; decoding and serialization happen at
        # flush time so the producer hot path stays within budget
        # (benchmarks/bench_ingest_overhead.py).
        buffer = self._buffer
        buffer.append((sample, weight))
        if len(buffer) >= self.sample_batch:
            self.flush()

    def _on_fault(self, record) -> None:
        self.emit("fault", record.to_dict())

    def _on_reencode(self, record) -> None:
        self.flush_samples()  # samples of the old epoch ship before the pass
        self.emit(
            "reencode.pass",
            {
                "gts": record.timestamp,
                "at_call": record.at_call,
                "nodes": record.nodes,
                "edges": record.edges,
                "max_id": record.max_id,
                "reasons": list(record.reasons),
                "cost_cycles": record.cost_cycles,
            },
        )

    # ------------------------------------------------------------------
    # flush points
    # ------------------------------------------------------------------
    def _current_decoder(self) -> Decoder:
        """The engine's decoder, rebuilt only when its inputs moved.

        ``engine.decoder()`` walks every graph edge to build the
        callsite-owner map; pinning on (gTimeStamp, thread-parents,
        edge-count) amortizes that walk across sample batches while the
        shared :class:`DecodeCache` memoizes the decodes themselves.
        """
        engine = self._engine
        assert engine is not None
        pin = (
            engine.stats.reencodings,
            len(engine.thread_parents),
            engine.graph.num_edges,
        )
        if self._decoder is None or pin != self._decoder_pin:
            self._decoder = engine.decoder()
            self._decoder_pin = pin
        return self._decoder

    def flush_samples(self) -> int:
        """Decode + emit buffered samples as one ``profile.samples`` frame.

        Entries are memoized as serialized JSON fragments keyed by
        ``(sample, weight)``: steady-state workloads revisit the same
        hot contexts, so a flush is mostly dictionary lookups plus one
        join instead of per-sample decode + serialization (this is what
        keeps ``bench_ingest_overhead.py`` within budget).  Only
        complete decodes are cached — a partial decode can become
        complete after the next re-encoding pass — mirroring the
        DecodeCache's failed-decodes-are-not-cached policy.
        """
        if not self._buffer or self._engine is None:
            return 0
        buffer, self._buffer = self._buffer, []
        decoder: Optional[Decoder] = None
        cache = self._entry_cache
        fragments = []
        append = fragments.append
        for key in buffer:
            fragment = cache.get(key)
            if fragment is None:
                sample, weight = key
                if decoder is None:
                    decoder = self._current_decoder()
                result = decoder.decode_best_effort(sample)
                entry = sample_entry(
                    result.context.functions(),
                    weight,
                    sample.timestamp,
                    thread=sample.thread,
                    partial=not result.complete,
                    reason=(
                        result.fault.reason
                        if result.fault is not None
                        else None
                    ),
                )
                fragment = json.dumps(
                    entry, sort_keys=True, separators=(",", ":")
                )
                if result.complete:
                    if len(cache) >= ENTRY_CACHE_CAPACITY:
                        cache.clear()
                    cache[key] = fragment
            append(fragment)
        # Hand-assembled for speed, byte-identical to what
        # frame_line(make_frame(...)) produces (sorted keys, compact
        # separators) — tests/ingest/test_emitter.py pins this.  The
        # optional ``trace`` key sorts between ``seq`` and ``type``.
        trace = self._flush_trace
        trace_fragment = (
            '"trace":{"id":"%s","span":"%s"},' % (trace["id"], trace["span"])
            if trace is not None
            else ""
        )
        line = (
            '{"created_at":%s,"payload":{"count":%d,"samples":[%s]},'
            '"schema":"%s","seq":%d,%s"type":"profile.samples"}'
            % (
                json.dumps(self._clock()),
                len(fragments),
                ",".join(fragments),
                FRAME_SCHEMA,
                self._seq,
                trace_fragment,
            )
        )
        self._deliver(line)
        self.samples_emitted += len(fragments)
        return len(fragments)

    def _stats_cumulative(self) -> Dict[str, float]:
        engine = self._engine
        assert engine is not None
        stats = engine.stats
        cache = engine._decode_cache
        cumulative: Dict[str, float] = {
            "calls": stats.calls,
            "returns": stats.returns,
            "handler_invocations": stats.handler_invocations,
            "reencodings": stats.reencodings,
            "profile_samples": stats.profile_samples,
            "fastpath_hits": engine.fastpath.hits,
            "fastpath_misses": engine.fastpath.misses,
            "decode_cache_hits": cache.hits,
            "decode_cache_misses": cache.misses,
            "faults": engine.faults.total,
        }
        # Delivery-resilience counters (spool/replay/drop accounting)
        # ride the same stats.delta surface, so the service's
        # ingest_producer_stats_total mirror exposes transport loss.
        # Sinks only report failure counters here — a counter that
        # moved on every emitted frame would make stats.delta dirty
        # itself forever.
        cumulative.update(self.sink.stats())
        return cumulative

    def flush_stats(self) -> bool:
        """Emit a ``stats.delta`` frame when any counter moved."""
        if self._engine is None:
            return False
        cumulative = self._stats_cumulative()
        if cumulative == self._last_stats:
            return False
        delta = {
            name: value - self._last_stats.get(name, 0)
            for name, value in cumulative.items()
        }
        self._last_stats = cumulative
        return self.emit(
            "stats.delta", {"stats": cumulative, "delta": delta}
        )

    def heartbeat(self) -> bool:
        """Emit one ``heartbeat`` frame (liveness + emission counters).

        The ``delivery`` block carries the sink's backlog gauges
        (:meth:`EventSink.delivery_health`) plus the last flush's
        wall-clock duration, so a stalled producer — spool growing,
        flushes slowing — is diagnosable from the service side alone.
        These are gauges that move on every frame, which is exactly why
        they ride heartbeats and not the ``stats.delta`` dirty-check.
        """
        self._last_heartbeat = self._clock()
        payload: Dict[str, Any] = {
            "frames_emitted": self.frames_emitted,
            "samples_emitted": self.samples_emitted,
            "buffered": len(self._buffer),
        }
        if self._engine is not None:
            payload["calls"] = self._engine.stats.calls
        delivery: Dict[str, float] = {
            "last_flush_seconds": self.last_flush_seconds,
        }
        delivery.update(self.sink.delivery_health())
        payload["delivery"] = delivery
        return self.emit("heartbeat", payload)

    def flush(self) -> None:
        """Ship samples + stat deltas (and a due heartbeat); flush sink.

        With span tracing on, each flush opens a fresh root trace
        (``emit.flush``) whose identity is stamped into every frame
        emitted during the flush; sink spans (send/spool/replay) nest
        under it via the recorder's implicit parenting.
        """
        started = time.perf_counter()
        if self.spans.enabled:
            with self.spans.span(
                "emit.flush", stage="emit", new_trace=True
            ) as flush_span:
                self._flush_trace = flush_span.context.to_frame_field()
                try:
                    self._flush_once()
                finally:
                    self._flush_trace = None
                flush_span.set(
                    frames=self.frames_emitted, buffered=len(self._buffer)
                )
        else:
            self._flush_once()
        self.last_flush_seconds = time.perf_counter() - started

    def _flush_once(self) -> None:
        self.flush_samples()
        self.flush_stats()
        if (
            self.heartbeat_every > 0
            and self._clock() - self._last_heartbeat >= self.heartbeat_every
        ):
            self.heartbeat()
        self._flush_sink()
