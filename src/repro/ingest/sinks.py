"""Pluggable frame sinks: where a producer's NDJSON frames go.

A sink transports already-serialized frame lines; it never inspects
them.  All sinks share the re-entrancy discipline of the buffered
pytrace tracer (its ``_in_engine`` guard): a write that re-enters the
sink — possible when the producer itself runs under instrumentation and
the write syscall is traced — is dropped and counted instead of
recursing.  Sinks therefore never raise into the engine hot path; the
only raising method is :meth:`EventSink.flush`, which the emitter calls
from safe points and wraps.

* :class:`StdoutFrameSink` — the default producer contract: stdout is
  reserved for frames, one per line, flushed per frame so a piped
  consumer stays live.
* :class:`FileFrameSink` — frames to a file (tests, ``dacce events
  record``, offline hand-off to ``dacce serve --from``).
* :class:`MemorySink` — frames to a list (tests).
* :class:`HTTPFrameSink` — frames POSTed in batches to an
  :class:`~repro.ingest.server.IngestServer`'s ``/ingest`` endpoint.
"""

from __future__ import annotations

import logging
import sys
import urllib.error
import urllib.request
from typing import IO, List, Optional

logger = logging.getLogger(__name__)


class SinkError(OSError):
    """A sink failed to deliver buffered frames (flush-time only)."""


class EventSink:
    """Base sink: re-entrancy guard + drop accounting around ``_write``."""

    def __init__(self) -> None:
        self.emitted = 0
        self.dropped = 0
        self._in_write = False

    # -- subclass surface ----------------------------------------------
    def _write(self, line: str) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Deliver anything buffered; may raise :class:`SinkError`."""

    def close(self) -> None:
        self.flush()

    # -- the emitter-facing call ---------------------------------------
    def emit(self, line: str) -> bool:
        """Write one frame line; returns False when dropped."""
        if self._in_write:
            self.dropped += 1
            return False
        self._in_write = True
        try:
            self._write(line)
        except Exception:
            self.dropped += 1
            logger.warning("frame sink %r write failed", self, exc_info=True)
            return False
        finally:
            self._in_write = False
        self.emitted += 1
        return True


class StdoutFrameSink(EventSink):
    """Frames to stdout, one NDJSON line per frame, flushed per line.

    Producers running under this sink must keep stdout clean: frames are
    the process's machine-readable contract, human output belongs on
    stderr (the CLI's ``dacce events record --frames -`` honours this).
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        super().__init__()
        self.stream = stream if stream is not None else sys.stdout

    def _write(self, line: str) -> None:
        self.stream.write(line + "\n")
        self.stream.flush()


class FileFrameSink(EventSink):
    """Frames appended to a file path (or an open text stream)."""

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "a")

    def _write(self, line: str) -> None:
        if self._handle is None:
            raise ValueError("file frame sink is closed")
        self._handle.write(line + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MemorySink(EventSink):
    """Frames retained in memory (tests and the emitter's unit surface)."""

    def __init__(self) -> None:
        super().__init__()
        self.lines: List[str] = []

    def _write(self, line: str) -> None:
        self.lines.append(line)


class HTTPFrameSink(EventSink):
    """Frames POSTed in NDJSON batches to an ingestion service.

    ``emit`` only buffers (hot-path safe); :meth:`flush` performs the
    POST and raises :class:`SinkError` on transport failure, leaving the
    batch buffered so a later flush retries it.  The emitter flushes at
    sample-batch boundaries, so one POST carries many frames.
    """

    def __init__(self, url: str, run: str, batch_bytes: int = 1 << 20,
                 timeout: float = 10.0):
        super().__init__()
        self.url = url.rstrip("/")
        self.run = run
        self.batch_bytes = batch_bytes
        self.timeout = timeout
        self.posts = 0
        self._buffer: List[str] = []
        self._buffered_bytes = 0

    def _write(self, line: str) -> None:
        self._buffer.append(line)
        self._buffered_bytes += len(line) + 1

    def emit(self, line: str) -> bool:
        ok = super().emit(line)
        if ok and self._buffered_bytes >= self.batch_bytes:
            # Opportunistic flush; a transport failure keeps the batch
            # buffered (retried at the next flush point) rather than
            # raising into the caller's hot path.
            try:
                self.flush()
            except SinkError:
                logger.warning("ingest POST failed; batch retained",
                               exc_info=True)
        return ok

    def flush(self) -> None:
        if not self._buffer:
            return
        body = ("\n".join(self._buffer) + "\n").encode("utf-8")
        request = urllib.request.Request(
            "%s/ingest?run=%s" % (self.url, self.run),
            data=body,
            headers={"Content-Type": "application/x-ndjson"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                resp.read()
        except (urllib.error.URLError, OSError) as error:
            raise SinkError(
                "ingest POST to %s failed: %s" % (self.url, error)
            ) from error
        self.posts += 1
        self._buffer = []
        self._buffered_bytes = 0
