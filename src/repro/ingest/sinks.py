"""Pluggable frame sinks: where a producer's NDJSON frames go.

A sink transports already-serialized frame lines; it never inspects
them.  All sinks share the re-entrancy discipline of the buffered
pytrace tracer (its ``_in_engine`` guard): a write that re-enters the
sink — possible when the producer itself runs under instrumentation and
the write syscall is traced — is dropped and counted instead of
recursing.  Sinks therefore never raise into the engine hot path; the
only raising methods are :meth:`EventSink.flush` and
:meth:`EventSink.send`, which the emitter calls from safe points and
wraps.

* :class:`StdoutFrameSink` — the default producer contract: stdout is
  reserved for frames, one per line, flushed per frame so a piped
  consumer stays live.
* :class:`FileFrameSink` — frames to a file (tests, ``dacce events
  record``, offline hand-off to ``dacce serve --from``).
* :class:`MemorySink` — frames to a list (tests).
* :class:`HTTPFrameSink` — frames POSTed in batches to an
  :class:`~repro.ingest.server.IngestServer`'s ``/ingest`` endpoint.
  The batch buffer is byte-bounded: a producer facing a long outage
  degrades by dropping its *oldest* buffered frames with accounting
  instead of growing without bound.
* :class:`SpoolingSink` — a resilience decorator around any sink.  A
  failed flush spills the undelivered batch into CRC-framed on-disk
  spool segments (the ``DCL2`` framing discipline of
  :mod:`repro.core.samplelog`: varint length + payload + checksum
  byte); delivery retries with capped exponential backoff plus
  deterministic jitter and honours a server ``Retry-After``.  Spool
  bytes are bounded by oldest-segment eviction, and every dropped
  frame is accounted: counters (``frames_spooled`` /
  ``frames_replayed`` / ``frames_dropped``) ride ``stats.delta``
  frames via :meth:`EventSink.stats`, and each eviction emits an
  explicit ``fault`` frame into the stream itself.  Segments left on
  disk by a crashed producer are picked up on construction, so
  delivery is durable across producer restarts (at-least-once; the
  service's ``(run, origin_seq)`` dedupe makes the fold exactly-once).
"""

from __future__ import annotations

import logging
import os
import re
import sys
import time
import urllib.error
import urllib.request
from collections import deque
from typing import Callable, Deque, Dict, IO, List, Optional, Tuple

from ..core.samplelog import SampleLogError, _record_checksum, read_varint, write_varint
from ..obs.spans import NULL_SPANS
from .frames import frame_line, make_frame

logger = logging.getLogger(__name__)

#: Default byte bound on the HTTP sink's in-memory batch buffer.
DEFAULT_MAX_BUFFER_BYTES = 32 << 20

#: Default byte bound on a spool directory (oldest segments evicted).
DEFAULT_MAX_SPOOL_BYTES = 64 << 20

#: Spool segment magic (the framing inside mirrors ``DCL2``).
SPOOL_MAGIC = b"DSP1"

_SEGMENT_RE = re.compile(r"^spool-(\d{8})-(\d+)\.seg$")


class SinkError(OSError):
    """A sink failed to deliver frames (flush/send-time only).

    ``retry_after`` carries the server's ``Retry-After`` hint in
    seconds when the rejection was an HTTP 429/503; ``status`` the HTTP
    status code when one was received.  Both are ``None`` for plain
    transport failures (connection refused, timeout).
    """

    def __init__(
        self,
        message: str,
        retry_after: Optional[float] = None,
        status: Optional[int] = None,
    ):
        super().__init__(message)
        self.retry_after = retry_after
        self.status = status


class EventSink:
    """Base sink: re-entrancy guard + drop accounting around ``_write``."""

    def __init__(self) -> None:
        self.emitted = 0
        self.dropped = 0
        self._in_write = False
        # Span tracing (docs/OBSERVABILITY.md): the shared no-op
        # recorder unless the emitter propagates a live one via
        # :meth:`set_spans`; guarded by one boolean at each site.
        self.spans = NULL_SPANS

    def set_spans(self, spans) -> None:
        """Install a span recorder (decorators propagate to the inner sink)."""
        self.spans = spans

    # -- subclass surface ----------------------------------------------
    def _write(self, line: str) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Deliver anything buffered; may raise :class:`SinkError`."""

    def close(self) -> None:
        self.flush()

    def send(self, lines: List[str]) -> None:
        """Deliver ``lines`` immediately, bypassing batching.

        Used by :class:`SpoolingSink` to replay spooled segments without
        mixing them into the live batch buffer.  Raises
        :class:`SinkError` when delivery fails (the caller keeps the
        segment).
        """
        for line in lines:
            if not self.emit(line):
                raise SinkError("sink dropped a replayed frame")
        self.flush()

    def take_pending(self) -> List[str]:
        """Remove and return frames buffered but not yet delivered."""
        return []

    def pending(self) -> int:
        """Frames buffered but not yet delivered."""
        return 0

    def stats(self) -> Dict[str, float]:
        """Delivery-resilience counters, merged into ``stats.delta``.

        Only counters that move on *failures* belong here (spool,
        replay and drop accounting).  Per-frame counters such as
        ``emitted`` must stay out: every ``stats.delta`` emission would
        dirty the next comparison and the emitter would emit stats
        frames forever.
        """
        return {}

    def delivery_health(self) -> Dict[str, float]:
        """Point-in-time backlog gauges for ``heartbeat`` enrichment.

        Unlike :meth:`stats` these are *gauges* (buffered bytes, spool
        backlog) that move on every frame, so they must not ride the
        ``stats.delta`` dirty-check — heartbeats carry them instead,
        making a stalled producer diagnosable from the service side.
        """
        return {}

    # -- the emitter-facing call ---------------------------------------
    def emit(self, line: str) -> bool:
        """Write one frame line; returns False when dropped."""
        if self._in_write:
            self.dropped += 1
            return False
        self._in_write = True
        try:
            self._write(line)
        except Exception:
            self.dropped += 1
            logger.warning("frame sink %r write failed", self, exc_info=True)
            return False
        finally:
            self._in_write = False
        self.emitted += 1
        return True


class StdoutFrameSink(EventSink):
    """Frames to stdout, one NDJSON line per frame, flushed per line.

    Producers running under this sink must keep stdout clean: frames are
    the process's machine-readable contract, human output belongs on
    stderr (the CLI's ``dacce events record --frames -`` honours this).
    """

    def __init__(self, stream: Optional[IO[str]] = None):
        super().__init__()
        self.stream = stream if stream is not None else sys.stdout

    def _write(self, line: str) -> None:
        self.stream.write(line + "\n")
        self.stream.flush()


class FileFrameSink(EventSink):
    """Frames appended to a file path (or an open text stream)."""

    def __init__(self, path: str):
        super().__init__()
        self.path = path
        self._handle: Optional[IO[str]] = open(path, "a")

    def _write(self, line: str) -> None:
        if self._handle is None:
            raise ValueError("file frame sink is closed")
        self._handle.write(line + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class MemorySink(EventSink):
    """Frames retained in memory (tests and the emitter's unit surface)."""

    def __init__(self) -> None:
        super().__init__()
        self.lines: List[str] = []

    def _write(self, line: str) -> None:
        self.lines.append(line)


def _parse_retry_after(value: Optional[str]) -> Optional[float]:
    """Numeric ``Retry-After`` header seconds (HTTP-dates unsupported)."""
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except ValueError:
        return None
    return max(0.0, seconds)


class HTTPFrameSink(EventSink):
    """Frames POSTed in NDJSON batches to an ingestion service.

    ``emit`` only buffers (hot-path safe); :meth:`flush` performs the
    POST and raises :class:`SinkError` on transport failure, leaving the
    batch buffered so a later flush retries it.  The emitter flushes at
    sample-batch boundaries, so one POST carries many frames.

    The buffer is bounded by ``max_buffer_bytes`` independently of any
    spool: when a producer without spooling cannot deliver, the oldest
    buffered frames are dropped with accounting (``buffer_evicted``,
    surfaced as ``frames_dropped`` through :meth:`stats`) instead of
    growing until the process OOMs.  A 429/503 response's
    ``Retry-After`` is surfaced on the raised :class:`SinkError` so a
    wrapping :class:`SpoolingSink` can honour the server's pacing.
    """

    def __init__(
        self,
        url: str,
        run: str,
        batch_bytes: int = 1 << 20,
        timeout: float = 10.0,
        max_buffer_bytes: int = DEFAULT_MAX_BUFFER_BYTES,
    ):
        super().__init__()
        self.url = url.rstrip("/")
        self.run = run
        self.batch_bytes = batch_bytes
        self.timeout = timeout
        self.max_buffer_bytes = max_buffer_bytes
        self.posts = 0
        self.buffer_evicted = 0
        self._buffer: Deque[str] = deque()
        self._buffered_bytes = 0

    def _write(self, line: str) -> None:
        self._buffer.append(line)
        self._buffered_bytes += len(line) + 1
        # Byte bound: degrade by shedding the oldest frames (accounted)
        # rather than buffering without limit while the service is down.
        while self._buffered_bytes > self.max_buffer_bytes and len(self._buffer) > 1:
            oldest = self._buffer.popleft()
            self._buffered_bytes -= len(oldest) + 1
            self.buffer_evicted += 1

    def emit(self, line: str) -> bool:
        ok = super().emit(line)
        if ok and self._buffered_bytes >= self.batch_bytes:
            # Opportunistic flush; a transport failure keeps the batch
            # buffered (retried at the next flush point) rather than
            # raising into the caller's hot path.
            try:
                self.flush()
            except SinkError:
                logger.warning("ingest POST failed; batch retained",
                               exc_info=True)
        return ok

    def take_pending(self) -> List[str]:
        lines = list(self._buffer)
        self._buffer.clear()
        self._buffered_bytes = 0
        return lines

    def pending(self) -> int:
        return len(self._buffer)

    def stats(self) -> Dict[str, float]:
        return {"frames_dropped": float(self.buffer_evicted)}

    def delivery_health(self) -> Dict[str, float]:
        return {
            "buffered_bytes": float(self._buffered_bytes),
            "buffered_frames": float(len(self._buffer)),
        }

    def send(self, lines: List[str]) -> None:
        if not lines:
            return
        self._post(lines)
        self.posts += 1

    def flush(self) -> None:
        if not self._buffer:
            return
        self._post(list(self._buffer))
        self.posts += 1
        self._buffer.clear()
        self._buffered_bytes = 0

    def _post(self, lines: List[str]) -> None:
        body = ("\n".join(lines) + "\n").encode("utf-8")
        request = urllib.request.Request(
            "%s/ingest?run=%s" % (self.url, self.run),
            data=body,
            headers={"Content-Type": "application/x-ndjson"},
            method="POST",
        )
        span = (
            self.spans.span(
                "sink.send", stage="send", frames=len(lines), bytes=len(body)
            )
            if self.spans.enabled
            else None
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                resp.read()
        except urllib.error.HTTPError as error:
            if span is not None:
                span.set(error="http", status=error.code)
            raise SinkError(
                "ingest POST to %s failed: HTTP %d %s"
                % (self.url, error.code, error.reason),
                retry_after=_parse_retry_after(error.headers.get("Retry-After")),
                status=error.code,
            ) from error
        except (urllib.error.URLError, OSError) as error:
            if span is not None:
                span.set(error="transport")
            raise SinkError(
                "ingest POST to %s failed: %s" % (self.url, error)
            ) from error
        finally:
            if span is not None:
                span.__exit__(None, None, None)


# ----------------------------------------------------------------------
# durable spool
# ----------------------------------------------------------------------
def write_spool_segment(path: str, lines: List[str]) -> int:
    """Write one CRC-framed spool segment atomically; returns its size.

    Framing mirrors ``DCL2`` (:mod:`repro.core.samplelog`): per record,
    ``varint(payload_length) | payload | checksum_byte``.  The segment
    is published with an ``os.replace`` of a fully-fsynced temp file, so
    a producer crash mid-spill never leaves a half-written segment
    visible under the canonical name.
    """
    buffer = bytearray(SPOOL_MAGIC)
    for line in lines:
        payload = line.encode("utf-8")
        write_varint(buffer, len(payload))
        buffer += payload
        buffer.append(_record_checksum(bytes(payload)))
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(buffer)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return len(buffer)


def read_spool_segment(path: str) -> Tuple[List[str], int]:
    """Best-effort read of one spool segment.

    Returns ``(recovered_lines, damaged_records)``: a record whose
    checksum fails is skipped (the framing resynchronises on the next
    length prefix); a truncated tail ends the scan.  Externally damaged
    segments therefore cost only the damaged records, mirroring the
    ``DCL2`` skip-and-report discipline.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if data[: len(SPOOL_MAGIC)] != SPOOL_MAGIC:
        return [], 1
    lines: List[str] = []
    damaged = 0
    offset = len(SPOOL_MAGIC)
    while offset < len(data):
        try:
            length, offset = read_varint(data, offset)
        except SampleLogError:
            damaged += 1
            break
        if length < 0 or offset + length + 1 > len(data):
            damaged += 1
            break
        payload = bytes(data[offset : offset + length])
        stored = data[offset + length]
        offset += length + 1
        if _record_checksum(payload) != stored:
            damaged += 1
            continue
        lines.append(payload.decode("utf-8", errors="replace"))
    return lines, damaged


def _jitter_fraction(attempt: int) -> float:
    """Deterministic jitter in [0, 1): same attempt, same jitter."""
    return ((attempt * 2654435761) & 0xFFFF) / 65535.0


class SpoolingSink(EventSink):
    """Durable-delivery decorator: spill to disk, retry with backoff.

    Wraps any :class:`EventSink` (in practice :class:`HTTPFrameSink`).
    ``emit`` delegates straight to the inner sink — the hot path is
    unchanged; all resilience work happens at flush points:

    * a failed inner flush moves the undelivered batch into an on-disk
      spool segment (``frames_spooled``) and schedules a retry with
      capped exponential backoff + deterministic jitter, honouring the
      server's ``Retry-After`` when one was sent;
    * a due retry replays the oldest segments first (``frames_replayed``)
      so frame order is preserved, then ships the live batch;
    * spool bytes are bounded: spilling past ``max_spool_bytes`` evicts
      the oldest segment, counts its frames in ``frames_dropped`` and
      emits an accounted ``fault`` frame (kind ``spool.evicted``) into
      the stream itself, so the service's weight-conservation ledger
      sees every loss;
    * segments found in ``spool_dir`` at construction (a previous
      producer crashed or exited while the service was down) are
      replayed on the first flush — durable at-least-once delivery,
      made exactly-once by the service's ``(run, origin_seq)`` dedupe.

    ``flush`` never raises for transport failures (the batch is durable
    on disk); only spool I/O errors propagate.
    """

    def __init__(
        self,
        inner: EventSink,
        spool_dir: str,
        max_spool_bytes: int = DEFAULT_MAX_SPOOL_BYTES,
        base_delay: float = 0.5,
        max_delay: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ):
        super().__init__()
        self.inner = inner
        self.spool_dir = spool_dir
        self.max_spool_bytes = max_spool_bytes
        self.base_delay = base_delay
        self.max_delay = max_delay
        self._clock = clock
        self._sleep = sleep
        self.frames_spooled = 0
        self.frames_replayed = 0
        self.frames_dropped = 0
        self.retries = 0
        self.attempts = 0  # consecutive failed delivery attempts
        self.next_retry = 0.0  # clock() time before which we stay quiet
        #: (path, frame count, byte size), oldest first.
        self._segments: List[Tuple[str, int, int]] = []
        self._next_index = 1
        os.makedirs(spool_dir, exist_ok=True)
        self._rescan()

    # -- introspection -------------------------------------------------
    @property
    def spool_bytes(self) -> int:
        return sum(size for _, _, size in self._segments)

    @property
    def pending_frames(self) -> int:
        """Frames sitting in spool segments awaiting delivery."""
        return sum(count for _, count, _ in self._segments)

    def segments(self) -> List[str]:
        return [path for path, _, _ in self._segments]

    def pending(self) -> int:
        return self.pending_frames + self.inner.pending()

    def stats(self) -> Dict[str, float]:
        stats = dict(self.inner.stats())
        stats["frames_dropped"] = (
            stats.get("frames_dropped", 0.0) + float(self.frames_dropped)
        )
        stats["frames_spooled"] = float(self.frames_spooled)
        stats["frames_replayed"] = float(self.frames_replayed)
        stats["delivery_retries"] = float(self.retries)
        return stats

    def delivery_health(self) -> Dict[str, float]:
        health = dict(self.inner.delivery_health())
        health["spool_bytes"] = float(self.spool_bytes)
        health["spool_segments"] = float(len(self._segments))
        health["spool_frames"] = float(self.pending_frames)
        return health

    def set_spans(self, spans) -> None:
        self.spans = spans
        self.inner.set_spans(spans)

    # -- hot path ------------------------------------------------------
    def emit(self, line: str) -> bool:
        return self.inner.emit(line)

    # -- flush points --------------------------------------------------
    def flush(self) -> None:
        now = self._clock()
        if self._segments and now < self.next_retry:
            # Still backing off: make the live batch durable too (it
            # must not overtake the spooled backlog, and the inner
            # buffer must not shed it) and come back later.
            self._spill(self.inner.take_pending())
            return
        if self._segments and not self._replay_segments():
            self._spill(self.inner.take_pending())
            return
        try:
            self.inner.flush()
        except SinkError as error:
            self._spill(self.inner.take_pending())
            self._schedule_retry(error)
            return
        self.attempts = 0
        self.next_retry = 0.0

    def drain(self, timeout: float = 30.0) -> bool:
        """Retry (sleeping through backoff) until everything delivered.

        Returns True when both the spool and the inner buffer are
        empty; False when the timeout expired first (the backlog stays
        durable on disk for a later drain or the next producer run).
        """
        deadline = self._clock() + timeout
        while True:
            self.flush()
            if not self._segments and self.inner.pending() == 0:
                return True
            now = self._clock()
            if now >= deadline:
                return False
            wait = max(0.05, min(self.next_retry, deadline) - now)
            if self.spans.enabled:
                with self.spans.span(
                    "sink.backoff_wait",
                    stage="spool",
                    attempt=self.attempts,
                    wait=wait,
                ):
                    self._sleep(wait)
            else:
                self._sleep(wait)

    def close(self) -> None:
        self.flush()
        try:
            self.inner.close()
        except SinkError as error:
            self._spill(self.inner.take_pending())
            self._schedule_retry(error)

    # -- internals -----------------------------------------------------
    def _rescan(self) -> None:
        """Adopt segments a previous producer left behind."""
        for name in sorted(os.listdir(self.spool_dir)):
            match = _SEGMENT_RE.match(name)
            if match is None:
                continue
            path = os.path.join(self.spool_dir, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            self._segments.append((path, int(match.group(2)), size))
            self._next_index = max(self._next_index, int(match.group(1)) + 1)
        if self._segments:
            logger.info(
                "spool %s: adopted %d segment(s), %d frame(s) pending",
                self.spool_dir, len(self._segments), self.pending_frames,
            )

    def _replay_segments(self) -> bool:
        """Deliver spooled segments oldest-first; False while still down."""
        while self._segments:
            path, count, _size = self._segments[0]
            try:
                lines, damaged = read_spool_segment(path)
            except OSError:
                lines, damaged = [], count
            if damaged:
                self._account_drop(
                    max(damaged, count - len(lines)), "spool.corrupt", path
                )
            if lines:
                replay_span = (
                    self.spans.span(
                        "sink.spool_replay",
                        stage="spool",
                        frames=len(lines),
                        segment=os.path.basename(path),
                    )
                    if self.spans.enabled
                    else None
                )
                try:
                    self.inner.send(lines)
                except SinkError as error:
                    if replay_span is not None:
                        replay_span.set(error="send")
                        replay_span.__exit__(None, None, None)
                    self._schedule_retry(error)
                    return False
                if replay_span is not None:
                    replay_span.__exit__(None, None, None)
                self.frames_replayed += len(lines)
            self._segments.pop(0)
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - already gone
                pass
        self.attempts = 0
        self.next_retry = 0.0
        return True

    def _spill(self, lines: List[str]) -> None:
        if not lines:
            return
        estimated = len(SPOOL_MAGIC) + sum(len(line) + 6 for line in lines)
        if estimated > self.max_spool_bytes:
            self._account_drop(len(lines), "spool.overflow", None)
            return
        while self._segments and self.spool_bytes + estimated > self.max_spool_bytes:
            oldest, count, size = self._segments.pop(0)
            try:
                os.remove(oldest)
            except OSError:  # pragma: no cover - already gone
                pass
            self._account_drop(count, "spool.evicted", oldest)
        path = os.path.join(
            self.spool_dir,
            "spool-%08d-%d.seg" % (self._next_index, len(lines)),
        )
        self._next_index += 1
        if self.spans.enabled:
            with self.spans.span(
                "sink.spool_write", stage="spool", frames=len(lines)
            ) as spill_span:
                size = write_spool_segment(path, lines)
                spill_span.set(bytes=size)
        else:
            size = write_spool_segment(path, lines)
        self._segments.append((path, len(lines), size))
        self.frames_spooled += len(lines)

    def _account_drop(self, count: int, kind: str, detail: Optional[str]) -> None:
        """Count a loss and put an explicit fault frame on the wire.

        The fault frame carries the drop so the service's conservation
        ledger balances: folded weight + accounted drops == produced
        weight.  It enters through the inner sink's buffer, so it is
        itself spooled/retried like any other frame.
        """
        if count <= 0:
            return
        self.frames_dropped += count
        payload: Dict[str, object] = {
            "kind": kind,
            "frames": count,
            "frames_dropped": self.frames_dropped,
            "spool_bytes": self.spool_bytes,
        }
        if detail is not None:
            payload["segment"] = os.path.basename(detail)
        self.inner.emit(frame_line(make_frame("fault", payload, time.time())))
        logger.warning(
            "spool %s: dropped %d frame(s) (%s)", self.spool_dir, count, kind
        )

    def _schedule_retry(self, error: SinkError) -> None:
        self.attempts += 1
        self.retries += 1
        if error.retry_after is not None:
            delay = error.retry_after
        else:
            delay = min(
                self.max_delay, self.base_delay * (2 ** (self.attempts - 1))
            )
            delay *= 1.0 + 0.25 * _jitter_fraction(self.attempts)
        self.next_retry = self._clock() + delay
        logger.warning(
            "frame delivery failed (attempt %d): %s; retry in %.2fs",
            self.attempts, error, delay,
        )
