"""DACCE — Dynamic and Adaptive Calling Context Encoding (CGO 2014).

A complete reproduction of Li, Wang, Wu, Hsu and Xu's runtime
calling-context encoding system, including the PCCE / stack-walking /
CCT / probabilistic-calling-context baselines, a synthetic program
substrate standing in for SPEC CPU2006 + Parsec 2.1 binaries, a
``sys.setprofile``-based frontend for real Python programs, and the
benchmark harness regenerating the paper's Table 1 and Figures 8-10.

Quickstart::

    from repro import DacceEngine, GeneratorConfig, WorkloadSpec
    from repro import generate_program, TraceExecutor

    program = generate_program(GeneratorConfig(seed=7))
    engine = DacceEngine(root=program.main)
    for event in TraceExecutor(program, WorkloadSpec(calls=20_000)).events():
        engine.on_event(event)
    decoder = engine.decoder()
    contexts = [decoder.decode(sample) for sample in engine.samples[:3]]
"""

from .core import (
    CallGraph,
    CallingContext,
    CcStackEntry,
    CollectedSample,
    CompressionMode,
    ContextStep,
    DacceConfig,
    DacceEngine,
    DacceError,
    Decoder,
    DictionaryStore,
    Encoder,
    EncodingDictionary,
    encode_graph,
)
from .baselines import CctEngine, PccEngine, PcceEngine, StackWalkEngine
from .obs import MetricsRegistry, Telemetry, TelemetryConfig
from .program import (
    GeneratorConfig,
    Program,
    TraceExecutor,
    WorkloadSpec,
    generate_program,
)
from .analysis import validate_run

__version__ = "1.0.0"

__all__ = [
    "CallGraph",
    "CallingContext",
    "CcStackEntry",
    "CctEngine",
    "CollectedSample",
    "CompressionMode",
    "ContextStep",
    "DacceConfig",
    "DacceEngine",
    "DacceError",
    "Decoder",
    "DictionaryStore",
    "Encoder",
    "EncodingDictionary",
    "GeneratorConfig",
    "MetricsRegistry",
    "PccEngine",
    "PcceEngine",
    "Program",
    "StackWalkEngine",
    "Telemetry",
    "TelemetryConfig",
    "TraceExecutor",
    "WorkloadSpec",
    "encode_graph",
    "generate_program",
    "validate_run",
    "__version__",
]
