"""Compact access logging for data-race reporting (the §1 flagship).

Dynamic race detectors record the calling context of every monitored
memory access; a race report then needs the *pair* of contexts involved.
:class:`RaceLogger` is the library version of
``examples/race_context_logging.py``: log accesses at a few words each,
detect conflicting pairs (same location, different threads, at least one
write), and decode only the contexts that end up in reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.context import CallingContext, CollectedSample
from ..core.engine import DacceEngine
from ..core.events import SampleEvent, ThreadId


@dataclass(frozen=True)
class AccessRecord:
    """One logged memory access: a few words, no decoded path."""

    location: Hashable
    thread: ThreadId
    is_write: bool
    sample: CollectedSample


@dataclass
class RaceReport:
    """A conflicting pair with both contexts decoded."""

    location: Hashable
    first: AccessRecord
    second: AccessRecord
    first_context: CallingContext
    second_context: CallingContext


class RaceLogger:
    """Happens-before-free demo detector: last access per location."""

    def __init__(self, engine: DacceEngine):
        self.engine = engine
        self.accesses: List[AccessRecord] = []
        self._last: Dict[Hashable, AccessRecord] = {}
        self._conflicts: List[Tuple[AccessRecord, AccessRecord]] = []

    # ------------------------------------------------------------------
    def access(
        self,
        location: Hashable,
        thread: ThreadId = 0,
        is_write: bool = False,
    ) -> None:
        """Log one monitored access at the thread's current context."""
        sample = self.engine.on_sample(SampleEvent(thread=thread))
        record = AccessRecord(
            location=location, thread=thread, is_write=is_write, sample=sample
        )
        self.accesses.append(record)
        previous = self._last.get(location)
        if (
            previous is not None
            and previous.thread != thread
            and (previous.is_write or is_write)
        ):
            self._conflicts.append((previous, record))
        self._last[location] = record

    # ------------------------------------------------------------------
    @property
    def conflict_count(self) -> int:
        return len(self._conflicts)

    def reports(self, limit: Optional[int] = None) -> List[RaceReport]:
        """Decode the conflicting pairs (and only those)."""
        decoder = self.engine.decoder()
        out: List[RaceReport] = []
        for first, second in self._conflicts[:limit]:
            out.append(
                RaceReport(
                    location=first.location,
                    first=first,
                    second=second,
                    first_context=decoder.decode(first.sample),
                    second_context=decoder.decode(second.sample),
                )
            )
        return out

    @property
    def decode_fraction(self) -> float:
        """Share of logged accesses that ever needed decoding."""
        if not self.accesses:
            return 0.0
        return 2 * len(self._conflicts) / len(self.accesses)
