"""Context-tagged event logging with redundancy elimination.

The paper cites Zhang et al. [21]: tagging logged events with their
calling context lets a replay system drop *redundant* events — repeated
occurrences of the same event from the same context add no information
for replaying or triaging — which shrinks the log and speeds up replay.

:class:`ContextEventLog` implements that policy on top of the engine:
every ``record`` captures the compact context; an event whose
``(kind, context signature)`` pair was already logged is counted but not
stored.  The reduction ratio is the paper's motivating metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..core.context import CollectedSample
from ..core.engine import DacceEngine
from ..core.events import SampleEvent, ThreadId


@dataclass(frozen=True)
class EventRecord:
    """One retained (non-redundant) event."""

    kind: Hashable
    sample: CollectedSample
    sequence: int
    payload: Optional[Hashable] = None


@dataclass
class ReductionStats:
    """How much the context-keyed deduplication saved."""

    observed: int = 0
    retained: int = 0

    @property
    def suppressed(self) -> int:
        return self.observed - self.retained

    @property
    def reduction(self) -> float:
        """Fraction of events eliminated (0 = nothing, 1 = everything)."""
        if not self.observed:
            return 0.0
        return self.suppressed / self.observed


class ContextEventLog:
    """Deduplicating, context-tagged event log over a live engine.

    The context *signature* used for deduplication is the raw compact
    record ``(gTimeStamp, id, ccStack)`` — no decoding happens on the
    recording path (that is the whole point); retained events are
    decoded lazily via :meth:`decode`.
    """

    def __init__(self, engine: DacceEngine):
        self.engine = engine
        self.records: List[EventRecord] = []
        self.stats = ReductionStats()
        self._seen: Dict[Tuple, int] = {}
        self._sequence = 0

    # ------------------------------------------------------------------
    def record(
        self,
        kind: Hashable,
        thread: ThreadId = 0,
        payload: Optional[Hashable] = None,
    ) -> Optional[EventRecord]:
        """Log one event at the thread's current context.

        Returns the retained record, or ``None`` when the event was
        redundant (same kind from the same context already logged).
        """
        self._sequence += 1
        self.stats.observed += 1
        sample = self.engine.on_sample(SampleEvent(thread=thread))
        signature = (
            kind,
            sample.timestamp,
            sample.context_id,
            sample.function,
            sample.ccstack,
        )
        if signature in self._seen:
            self._seen[signature] += 1
            return None
        self._seen[signature] = 1
        record = EventRecord(
            kind=kind, sample=sample, sequence=self._sequence, payload=payload
        )
        self.records.append(record)
        self.stats.retained += 1
        return record

    def occurrences(self, record: EventRecord) -> int:
        """How many times this record's (kind, context) pair occurred."""
        signature = (
            record.kind,
            record.sample.timestamp,
            record.sample.context_id,
            record.sample.function,
            record.sample.ccstack,
        )
        return self._seen.get(signature, 0)

    # ------------------------------------------------------------------
    def decode(self, record: EventRecord):
        """Expand a retained record's context to the full call path."""
        return self.engine.decoder().decode(record.sample)

    def by_kind(self, kind: Hashable) -> List[EventRecord]:
        return [r for r in self.records if r.kind == kind]

    def __len__(self) -> int:
        return len(self.records)
