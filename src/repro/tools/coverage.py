"""Context-sensitive coverage — the testing application (Section 1).

Statement/function coverage treats every call to ``f`` the same; tools
like DART [11] care about the *situations* code runs in, and the calling
context is the natural situation key.  :class:`ContextCoverage` tracks,
per function, how many distinct calling contexts have reached it, and
can diff two runs ("which contexts did the new test exercise that the
old suite never did?").

Recording cost is the compact context signature — decoding only happens
when a report is rendered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from ..core.engine import DacceEngine
from ..core.events import FunctionId, SampleEvent, ThreadId


Signature = Tuple  # (gTS, id, function, ccstack)


@dataclass
class CoverageReport:
    """Summary of one coverage collection."""

    functions: int
    contexts: int
    per_function: Dict[FunctionId, int]

    def contexts_of(self, function: FunctionId) -> int:
        return self.per_function.get(function, 0)

    def hotspots(self, limit: int = 10) -> List[Tuple[FunctionId, int]]:
        """Functions reachable through the most distinct contexts."""
        ranked = sorted(
            self.per_function.items(), key=lambda item: -item[1]
        )
        return ranked[:limit]


class ContextCoverage:
    """Distinct-calling-context tracking over a live engine."""

    def __init__(self, engine: DacceEngine):
        self.engine = engine
        self._signatures: Set[Signature] = set()
        self._per_function: Dict[FunctionId, Set[Signature]] = {}

    # ------------------------------------------------------------------
    def touch(self, thread: ThreadId = 0) -> bool:
        """Record the current context; True if it was new coverage."""
        sample = self.engine.on_sample(SampleEvent(thread=thread))
        signature = (
            sample.timestamp,
            sample.context_id,
            sample.function,
            sample.ccstack,
        )
        fresh = signature not in self._signatures
        if fresh:
            self._signatures.add(signature)
            self._per_function.setdefault(sample.function, set()).add(
                signature
            )
        return fresh

    # ------------------------------------------------------------------
    @property
    def distinct_contexts(self) -> int:
        return len(self._signatures)

    def report(self) -> CoverageReport:
        return CoverageReport(
            functions=len(self._per_function),
            contexts=len(self._signatures),
            per_function={
                fn: len(signatures)
                for fn, signatures in self._per_function.items()
            },
        )

    def new_versus(self, baseline: "ContextCoverage") -> int:
        """Contexts this run covered that the baseline never did.

        Note: signatures are only comparable between runs that share the
        engine's encoding history (same program, same discovery order) —
        the regression-suite use case.
        """
        return len(self._signatures - baseline._signatures)
