"""Downstream tools built on the DACCE public API.

The paper's introduction motivates calling-context encoding with a set
of client tools; this package implements library-grade versions of
them:

* :mod:`repro.tools.eventlog` — context-tagged event logging with
  redundancy elimination (the replay-log reduction of [21] in the
  paper's related work),
* :mod:`repro.tools.coverage` — context-sensitive coverage for testing
  (DART-style "new context = new test situation"),
* :mod:`repro.tools.racelog` — compact access logging for data-race
  reporting across threads.
"""

from .coverage import ContextCoverage, CoverageReport
from .eventlog import ContextEventLog, EventRecord, ReductionStats
from .racelog import AccessRecord, RaceLogger, RaceReport

__all__ = [
    "AccessRecord",
    "ContextCoverage",
    "ContextEventLog",
    "CoverageReport",
    "EventRecord",
    "RaceLogger",
    "RaceReport",
    "ReductionStats",
]
