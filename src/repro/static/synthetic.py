"""Exact static extraction from the synthetic ``repro.program`` model.

The synthetic substrate *is* its own source code: every function, call
site and target list is explicit in the :class:`~repro.program.model.
Program`.  The extractor therefore emits function ids and call-site ids
that coincide with the ones the trace executor uses at runtime — which
is what lets warm-start seeding eliminate the runtime handler for
statically known edges on the benchmark suite, and lets the lint
cross-check match dynamic edges exactly.

Confidence mirrors what a real static analysis of the modeled binary
could honestly claim:

* direct (``NORMAL``/``TAIL``) sites and ``PLT`` sites into eagerly
  loaded libraries — ``HIGH``;
* dynamically realised targets of ``INDIRECT`` sites — ``MEDIUM``
  (a points-to analysis *might* find them, with luck);
* points-to-only false-positive targets — ``LOW`` (PCCE's Issue 1);
* anything involving a lazily loaded (``dlopen``) library — ``LOW``
  and flagged unresolved, because the library is simply not in the
  static image (the paper's Issue 2).
"""

from __future__ import annotations

from typing import Set

from ..core.events import CallKind, FunctionId
from ..program.model import Program
from .graph import (
    Confidence,
    StaticCallGraph,
    StaticEdge,
    StaticFunction,
    UnresolvedSite,
)


def lazy_functions(program: Program) -> Set[FunctionId]:
    """Functions that only exist after a lazy library load."""
    hidden: Set[FunctionId] = set()
    for library in program.libraries.values():
        if library.load_lazily:
            hidden.update(library.functions)
    return hidden


def extract_program(
    program: Program, include_pointsto: bool = True
) -> StaticCallGraph:
    """The static call graph of a synthetic program.

    ``include_pointsto`` adds the ``LOW``-confidence points-to-only
    targets of indirect sites; warm-start filters them out by default,
    but the lint pass can use them to explain dynamic indirect edges.
    """
    graph = StaticCallGraph(root=program.main)
    hidden = lazy_functions(program)

    for function in program.functions():
        graph.add_function(
            StaticFunction(
                id=function.id,
                qualname=function.name,
                module=function.library or program.name,
                lineno=0,
                firstlineno=0,
            )
        )

    for function, site in program.all_callsites():
        if function.id in hidden:
            graph.flag_unresolved(
                UnresolvedSite(
                    module=program.name,
                    function=function.id,
                    lineno=0,
                    reason="lazy-library-caller",
                    detail="call site %d lives in a dlopen-ed library"
                    % site.id,
                )
            )
            continue
        if site.kind is CallKind.INDIRECT:
            targets = list(site.targets)
            extras = [t for t in site.static_targets if t not in site.targets]
        else:
            targets = list(site.targets)
            extras = []
        for target in targets:
            if target in hidden:
                graph.flag_unresolved(
                    UnresolvedSite(
                        module=program.name,
                        function=function.id,
                        lineno=0,
                        reason="lazy-library-target",
                        detail="site %d -> %d is behind dlopen"
                        % (site.id, target),
                    )
                )
                continue
            graph.add_edge(
                StaticEdge(
                    caller=function.id,
                    callee=target,
                    callsite=site.id,
                    kind=site.kind,
                    confidence=_direct_confidence(site.kind),
                    reason=_direct_reason(site.kind),
                )
            )
        if include_pointsto:
            for target in extras:
                if target in hidden:
                    continue
                graph.add_edge(
                    StaticEdge(
                        caller=function.id,
                        callee=target,
                        callsite=site.id,
                        kind=site.kind,
                        confidence=Confidence.LOW,
                        reason="points-to",
                    )
                )
    return graph


def _direct_confidence(kind: CallKind) -> Confidence:
    if kind is CallKind.INDIRECT:
        return Confidence.MEDIUM
    return Confidence.HIGH


def _direct_reason(kind: CallKind) -> str:
    if kind is CallKind.INDIRECT:
        return "indirect-observed"
    if kind is CallKind.TAIL:
        return "tail-call"
    if kind is CallKind.PLT:
        return "plt-stub"
    return "direct-call"
