"""Lower a sink-reachability result into a runtime ``TargetedPlan``.

:mod:`repro.static.reachability` answers the offline question — *which
functions can reach a sink, and what would encoding only those cost?* —
and this module packages the answer for the two runtime consumers:

* :class:`~repro.core.engine.DacceEngine` accepts ``targeted=plan`` and
  restricts encoding to the plan's function set.  Calls that leave the
  set take a cheap uninstrumented path (a shadow frame, no ccStack or
  id-register work); the tracked→untracked and untracked→tracked
  boundary crossings are recorded as ``<untracked>`` pseudo-entries so
  weight conservation and Algorithm 1 decoding still hold.
* :class:`~repro.pytrace.tracer.PythonDacceTracer` skips per-code-object
  callback work entirely for functions outside the plan and emits only
  boundary-crossing events.

The plan embeds a :class:`~repro.static.warmstart.WarmStartPlan` built
over the *whole* targeted subgraph at ``min_confidence=LOW``: every edge
that survived reachability is seeded at gTimeStamp 0, so within the
targeted region no dynamic discovery runs at all — the id space the
proof report promised is exactly the id space the engine starts with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence

from ..core.events import FunctionId
from .graph import Confidence, StaticCallGraph
from .reachability import (
    ReachabilityResult,
    SinkDeclaration,
    compute_reachability,
)
from .warmstart import WarmStartPlan, build_warmstart


@dataclass
class TargetedPlan:
    """Everything the engine and tracer need for targeted encoding."""

    #: Functions inside the targeted (sink-reaching) subgraph.  The
    #: engine additionally force-tracks its root and thread entries.
    functions: FrozenSet[FunctionId]
    #: Resolved sink function ids.
    sinks: FrozenSet[FunctionId]
    #: Seed encoding covering every targeted edge at gTimeStamp 0.
    warm_start: WarmStartPlan
    #: The reaching subgraph the plan was lowered from.
    static_graph: StaticCallGraph
    #: The full reachability result (blind spots, proof report, ...).
    report: ReachabilityResult

    @property
    def instrumented_fraction(self) -> float:
        """Targeted functions over all functions the analysis saw."""
        return self.report.coverage_fraction

    def summary(self) -> Dict[str, object]:
        data = self.report.summary()
        data["seeded_edges"] = self.warm_start.seeded_edges
        return data


def build_targeted(
    graph: StaticCallGraph,
    sinks: Sequence[SinkDeclaration],
    *,
    min_confidence: Confidence = Confidence.LOW,
    id_bits: int = 64,
    root: Optional[FunctionId] = None,
) -> TargetedPlan:
    """Compute reachability over ``graph`` and lower it into a plan.

    ``root`` overrides the static graph's root — the tracer passes its
    synthetic root id 0, which has no static definition; runtime calls
    out of the root are boundary crossings or (for targeted entry
    functions) dynamically discovered root edges.
    """
    result = compute_reachability(
        graph,
        sinks,
        root=root,
        min_confidence=min_confidence,
        id_bits=id_bits,
    )
    subgraph = result.subgraph()
    warm = build_warmstart(
        subgraph,
        root=result.root,
        # The reachability pass already applied its confidence gate;
        # seed everything it kept so the targeted region never pays
        # dynamic discovery.
        min_confidence=Confidence.LOW,
        id_bits=id_bits,
    )
    return TargetedPlan(
        functions=frozenset(result.functions),
        sinks=frozenset(result.sinks),
        warm_start=warm,
        static_graph=subgraph,
        report=result,
    )
