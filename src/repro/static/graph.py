"""The static call graph — common output of every static extractor.

DACCE (Section 3) deliberately starts from a call graph containing only
``main`` and discovers every edge at runtime, paying one runtime-handler
invocation plus unencoded-edge ccStack saves per edge.  Static analysis
inverts the trade: it enumerates edges *before* execution, imprecisely.
This module is the meeting point — a :class:`StaticCallGraph` carries

* the functions the analysis found, with their source locations,
* the call edges it could resolve, each tagged with a
  :class:`Confidence` describing how trustworthy the resolution is,
* the call sites it could *not* resolve (:class:`UnresolvedSite`) —
  indirect dispatch, ``getattr`` tricks, lazily loaded plugins — which
  is exactly the set of edges DACCE's dynamic discovery still owns.

Two extractors emit this structure: :mod:`repro.static.pyextract`
(AST-based, for real Python source) and :mod:`repro.static.synthetic`
(exact, for the ``repro.program`` model).  Consumers are
:mod:`repro.static.warmstart` (pre-seeded encodings) and
:mod:`repro.static.lint` (offline verification).
"""

from __future__ import annotations

import enum
import json
import logging
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core.errors import DacceError
from ..core.events import CallKind, CallSiteId, FunctionId

logger = logging.getLogger(__name__)


class StaticAnalysisError(DacceError):
    """Invalid static-analysis input or malformed persisted graph."""


class Confidence(enum.Enum):
    """How trustworthy a statically derived edge is.

    * ``HIGH`` — the edge is certain to be a real call-graph edge if the
      site ever executes (direct call to a known definition).
    * ``MEDIUM`` — probably real, but dispatch may go elsewhere
      (``self.method()`` ignoring inheritance overrides, class
      instantiation, module-attribute calls).
    * ``LOW`` — speculative (points-to supersets of indirect sites,
      functions behind lazily loaded libraries).
    """

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"

    @property
    def rank(self) -> int:
        return _CONFIDENCE_RANK[self]

    def at_least(self, other: "Confidence") -> bool:
        return self.rank >= other.rank


_CONFIDENCE_RANK: Dict[Confidence, int] = {
    Confidence.LOW: 0,
    Confidence.MEDIUM: 1,
    Confidence.HIGH: 2,
}


@dataclass(frozen=True)
class StaticFunction:
    """A function definition the extractor found.

    ``lineno`` is the line of the ``def`` statement; ``firstlineno`` is
    the line a live code object reports (``co_firstlineno``), which for
    decorated functions is the first decorator line — keeping both makes
    the code-object mapping in :mod:`repro.pytrace.tracer` exact.
    """

    id: FunctionId
    qualname: str
    module: str
    lineno: int = 0
    firstlineno: int = 0

    @property
    def location(self) -> str:
        return "%s:%d:%s" % (self.module, self.lineno, self.qualname)


@dataclass(frozen=True)
class StaticEdge:
    """One statically derived call edge with its resolution confidence."""

    caller: FunctionId
    callee: FunctionId
    callsite: CallSiteId
    kind: CallKind = CallKind.NORMAL
    confidence: Confidence = Confidence.HIGH
    #: Source line of the call expression (0 when unknown).
    lineno: int = 0
    #: Why the extractor assigned this confidence (``direct-call``,
    #: ``self-method``, ``points-to``, ...).
    reason: str = "direct-call"

    def key(self) -> Tuple[CallSiteId, FunctionId]:
        return (self.callsite, self.callee)


@dataclass(frozen=True)
class UnresolvedSite:
    """A call site the extractor explicitly gave up on.

    These are *flagged*, not silently dropped: the lint cross-check
    excuses dynamic edges only where static analysis admitted blindness.
    """

    module: str
    function: Optional[FunctionId]
    lineno: int
    reason: str
    detail: str = ""

    @property
    def location(self) -> str:
        return "%s:%d" % (self.module, self.lineno)


class StaticCallGraph:
    """Functions, resolved edges and admitted blind spots of one analysis."""

    def __init__(self, root: Optional[FunctionId] = None) -> None:
        self.root = root
        self._functions: Dict[FunctionId, StaticFunction] = {}
        self._edges: Dict[Tuple[CallSiteId, FunctionId], StaticEdge] = {}
        self._pairs: Set[Tuple[FunctionId, FunctionId]] = set()
        self.unresolved: List[UnresolvedSite] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_function(self, function: StaticFunction) -> StaticFunction:
        existing = self._functions.get(function.id)
        if existing is not None and existing != function:
            raise StaticAnalysisError(
                "function id %d defined twice: %s and %s"
                % (function.id, existing.location, function.location)
            )
        self._functions[function.id] = function
        return function

    def add_edge(self, edge: StaticEdge) -> StaticEdge:
        if edge.caller not in self._functions:
            raise StaticAnalysisError(
                "edge %r references unknown caller %d" % (edge, edge.caller)
            )
        if edge.callee not in self._functions:
            raise StaticAnalysisError(
                "edge %r references unknown callee %d" % (edge, edge.callee)
            )
        existing = self._edges.get(edge.key())
        if existing is not None:
            # Keep the more confident resolution of a duplicate.
            if edge.confidence.rank > existing.confidence.rank:
                self._edges[edge.key()] = edge
            return self._edges[edge.key()]
        self._edges[edge.key()] = edge
        self._pairs.add((edge.caller, edge.callee))
        return edge

    def flag_unresolved(self, site: UnresolvedSite) -> None:
        self.unresolved.append(site)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def functions(self) -> Iterator[StaticFunction]:
        return iter(self._functions.values())

    def function(self, function_id: FunctionId) -> StaticFunction:
        try:
            return self._functions[function_id]
        except KeyError:
            raise StaticAnalysisError(
                "unknown static function %d" % function_id
            ) from None

    def find_function(self, function_id: FunctionId) -> Optional[StaticFunction]:
        return self._functions.get(function_id)

    def edges(self) -> Iterator[StaticEdge]:
        return iter(self._edges.values())

    def edges_at_least(self, confidence: Confidence) -> List[StaticEdge]:
        """Edges whose confidence is ``confidence`` or better."""
        return [
            edge
            for edge in self._edges.values()
            if edge.confidence.at_least(confidence)
        ]

    def has_pair(self, caller: FunctionId, callee: FunctionId) -> bool:
        """Whether *any* static edge connects ``caller`` to ``callee``."""
        return (caller, callee) in self._pairs

    def pairs(self) -> Set[Tuple[FunctionId, FunctionId]]:
        return set(self._pairs)

    @property
    def num_functions(self) -> int:
        return len(self._functions)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def confidence_histogram(self) -> Dict[str, int]:
        histogram = {c.value: 0 for c in Confidence}
        for edge in self._edges.values():
            histogram[edge.confidence.value] += 1
        return histogram

    def __repr__(self) -> str:
        return "StaticCallGraph(functions=%d, edges=%d, unresolved=%d)" % (
            self.num_functions,
            self.num_edges,
            len(self.unresolved),
        )

    # ------------------------------------------------------------------
    # persistence (feeds ``dacce lint --static``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "format": FORMAT_VERSION,
            "root": self.root,
            "functions": [
                {
                    "id": fn.id,
                    "qualname": fn.qualname,
                    "module": fn.module,
                    "lineno": fn.lineno,
                    "firstlineno": fn.firstlineno,
                }
                for fn in sorted(self._functions.values(), key=lambda f: f.id)
            ],
            "edges": [
                {
                    "caller": edge.caller,
                    "callee": edge.callee,
                    "callsite": edge.callsite,
                    "kind": edge.kind.value,
                    "confidence": edge.confidence.value,
                    "lineno": edge.lineno,
                    "reason": edge.reason,
                }
                for edge in sorted(
                    self._edges.values(), key=lambda e: (e.callsite, e.callee)
                )
            ],
            "unresolved": [
                {
                    "module": site.module,
                    "function": site.function,
                    "lineno": site.lineno,
                    "reason": site.reason,
                    "detail": site.detail,
                }
                for site in self.unresolved
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StaticCallGraph":
        if not isinstance(data, dict):
            raise StaticAnalysisError(
                "static graph document must be an object, got %s"
                % type(data).__name__
            )
        major, minor = parse_format_version(data.get("format"))
        if minor > _FORMAT_MINOR:
            # Same major → additive fields only; load what we know and
            # leave a trace so silent downgrades are diagnosable.
            logger.warning(
                "static graph was written by a newer minor format %d.%d "
                "(this reader knows %s); unknown fields will be ignored",
                major,
                minor,
                FORMAT_VERSION,
            )
        graph = cls(root=data.get("root"))  # type: ignore[arg-type]
        try:
            for entry in data["functions"]:  # type: ignore[index, union-attr]
                graph.add_function(
                    StaticFunction(
                        id=entry["id"],
                        qualname=entry["qualname"],
                        module=entry["module"],
                        lineno=entry.get("lineno", 0),
                        firstlineno=entry.get("firstlineno", 0),
                    )
                )
            for entry in data["edges"]:  # type: ignore[index, union-attr]
                graph.add_edge(
                    StaticEdge(
                        caller=entry["caller"],
                        callee=entry["callee"],
                        callsite=entry["callsite"],
                        kind=CallKind(entry.get("kind", "normal")),
                        confidence=Confidence(entry.get("confidence", "high")),
                        lineno=entry.get("lineno", 0),
                        reason=entry.get("reason", ""),
                    )
                )
            for entry in data.get("unresolved", ()):  # type: ignore[union-attr]
                graph.flag_unresolved(
                    UnresolvedSite(
                        module=entry["module"],
                        function=entry.get("function"),
                        lineno=entry.get("lineno", 0),
                        reason=entry.get("reason", "unknown"),
                        detail=entry.get("detail", ""),
                    )
                )
        except (KeyError, TypeError, ValueError) as error:
            raise StaticAnalysisError(
                "malformed static-graph data: %s" % error
            ) from error
        return graph

    def save(self, path: str) -> str:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
        return path

    @classmethod
    def load(cls, path: str) -> "StaticCallGraph":
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise StaticAnalysisError(
                    "not a static-graph file: %s" % error
                ) from error
        return cls.from_dict(data)


#: Persisted static-graph format version, ``"major.minor"``.  The major
#: number changes when existing fields are reshaped (readers must
#: refuse); the minor number changes when fields are *added* (readers
#: may load, ignoring what they do not know).  The original releases
#: wrote the bare integer ``1``, which parses as ``1.0``.
FORMAT_VERSION = "1.0"

_FORMAT_MAJOR = 1
_FORMAT_MINOR = 0


def parse_format_version(value: object) -> Tuple[int, int]:
    """Parse a persisted ``format`` field into ``(major, minor)``.

    Accepts the current ``"major.minor"`` string scheme and the legacy
    bare integer ``1``.  Raises :class:`StaticAnalysisError` for
    anything unparseable (``reason="malformed-version"``) or for a
    major version this reader does not understand
    (``reason="unsupported-major"``).
    """
    if isinstance(value, bool):
        # bool is an int subclass; a True "format" is corruption.
        raise StaticAnalysisError(
            "unsupported static-graph format %r" % (value,),
            reason="malformed-version",
        )
    if isinstance(value, int):
        major, minor = value, 0
    elif isinstance(value, str):
        head, _, tail = value.partition(".")
        try:
            major = int(head)
            minor = int(tail) if tail else 0
        except ValueError:
            raise StaticAnalysisError(
                "unsupported static-graph format %r" % (value,),
                reason="malformed-version",
            ) from None
    else:
        raise StaticAnalysisError(
            "unsupported static-graph format %r" % (value,),
            reason="malformed-version",
        )
    if minor < 0:
        raise StaticAnalysisError(
            "unsupported static-graph format %r" % (value,),
            reason="malformed-version",
        )
    if major != _FORMAT_MAJOR:
        raise StaticAnalysisError(
            "static graph uses format %d.%d; this reader only "
            "understands major version %d" % (major, minor, _FORMAT_MAJOR),
            reason="unsupported-major",
        )
    return major, minor
