"""Static call-graph analysis for DACCE: extraction, seeding, lint.

Three layers, consumed independently:

* **extraction** — :mod:`~repro.static.pyextract` builds a
  :class:`StaticCallGraph` from real Python source by AST analysis
  (with :class:`IncrementalAnalyzer` for hash-gated re-analysis), and
  :mod:`~repro.static.synthetic` builds an *exact* one from the
  synthetic ``repro.program`` model;
* **warm-start** — :func:`build_warmstart` turns the high-confidence
  subgraph into a pre-validated gTimeStamp-0 encoding that
  :class:`~repro.core.engine.DacceEngine` accepts at construction;
* **lint** — :func:`lint_state` verifies persisted decoding state and
  cross-checks the dynamic graph against the static one.
"""

from .graph import (
    Confidence,
    StaticAnalysisError,
    StaticCallGraph,
    StaticEdge,
    StaticFunction,
    UnresolvedSite,
)
from .incremental import IncrementalAnalyzer, RefreshStats
from .lint import (
    DEFAULT_MARGIN_BITS,
    LintFinding,
    Severity,
    has_errors,
    lint_engine,
    lint_state,
)
from .pyextract import (
    FunctionIndex,
    ModuleSummary,
    extract_package,
    link_summaries,
    module_name_for,
    summarize_file,
    summarize_source,
)
from .synthetic import extract_program, lazy_functions
from .warmstart import WarmStartError, WarmStartPlan, build_warmstart

__all__ = [
    "Confidence",
    "StaticAnalysisError",
    "StaticCallGraph",
    "StaticEdge",
    "StaticFunction",
    "UnresolvedSite",
    "IncrementalAnalyzer",
    "RefreshStats",
    "DEFAULT_MARGIN_BITS",
    "LintFinding",
    "Severity",
    "has_errors",
    "lint_engine",
    "lint_state",
    "FunctionIndex",
    "ModuleSummary",
    "extract_package",
    "link_summaries",
    "module_name_for",
    "summarize_file",
    "summarize_source",
    "extract_program",
    "lazy_functions",
    "WarmStartError",
    "WarmStartPlan",
    "build_warmstart",
]
