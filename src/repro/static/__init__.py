"""Static call-graph analysis for DACCE: extraction, seeding, lint.

Three layers, consumed independently:

* **extraction** — :mod:`~repro.static.pyextract` builds a
  :class:`StaticCallGraph` from real Python source by AST analysis
  (with :class:`IncrementalAnalyzer` for hash-gated re-analysis), and
  :mod:`~repro.static.synthetic` builds an *exact* one from the
  synthetic ``repro.program`` model;
* **warm-start** — :func:`build_warmstart` turns the high-confidence
  subgraph into a pre-validated gTimeStamp-0 encoding that
  :class:`~repro.core.engine.DacceEngine` accepts at construction;
* **lint** — :func:`lint_state` verifies persisted decoding state and
  cross-checks the dynamic graph against the static one;
* **targeting** — :func:`compute_reachability` finds the
  sink-reaching subgraph and :func:`build_targeted` lowers it into a
  :class:`TargetedPlan` for selective instrumentation
  (``DacceEngine(targeted=...)``).
"""

from .graph import (
    Confidence,
    StaticAnalysisError,
    StaticCallGraph,
    StaticEdge,
    StaticFunction,
    UnresolvedSite,
)
from .incremental import IncrementalAnalyzer, RefreshStats
from .lint import (
    DEFAULT_MARGIN_BITS,
    LintFinding,
    Severity,
    has_errors,
    lint_engine,
    lint_state,
    lint_targets,
)
from .pyextract import (
    FunctionIndex,
    ModuleSummary,
    extract_package,
    link_summaries,
    module_name_for,
    summarize_file,
    summarize_source,
)
from .reachability import (
    BlindSpot,
    ProofReport,
    ReachabilityResult,
    SinkSpec,
    UncoverableSink,
    compute_reachability,
    load_targets,
    parse_targets,
    resolve_sinks,
)
from .synthetic import extract_program, lazy_functions
from .targeted import TargetedPlan, build_targeted
from .warmstart import WarmStartError, WarmStartPlan, build_warmstart

__all__ = [
    "Confidence",
    "StaticAnalysisError",
    "StaticCallGraph",
    "StaticEdge",
    "StaticFunction",
    "UnresolvedSite",
    "IncrementalAnalyzer",
    "RefreshStats",
    "DEFAULT_MARGIN_BITS",
    "LintFinding",
    "Severity",
    "has_errors",
    "lint_engine",
    "lint_state",
    "FunctionIndex",
    "ModuleSummary",
    "extract_package",
    "link_summaries",
    "module_name_for",
    "summarize_file",
    "summarize_source",
    "extract_program",
    "lazy_functions",
    "WarmStartError",
    "WarmStartPlan",
    "build_warmstart",
    "lint_targets",
    "BlindSpot",
    "ProofReport",
    "ReachabilityResult",
    "SinkSpec",
    "UncoverableSink",
    "compute_reachability",
    "load_targets",
    "parse_targets",
    "resolve_sinks",
    "TargetedPlan",
    "build_targeted",
]
