"""Static sink-reachability analysis for targeted context encoding.

Targeted calling-context encoding (Zeng et al., arXiv 1812.04191) turns
the paper's whole-program trade-off on its head: when only the contexts
that reach a handful of *sink* functions matter — a vulnerable
allocator, a privileged syscall wrapper, an audit point — the encoding
does not need to cover the rest of the program at all.  This module
computes, entirely offline, the part of a :class:`StaticCallGraph` that
can reach a declared sink set:

* **sink resolution** — sinks are declared by bare function name,
  ``module:qualname`` pattern (``fnmatch``-style wildcards allowed), or
  a ``targets.json`` manifest; every declaration that matches nothing is
  reported, never silently dropped;
* **backward reachability** — the set of functions from which some sink
  is reachable over static edges, with per-node confidence propagation:
  a node's confidence is the best chain ``min(edge, successor)`` over
  its sink-ward out-edges, so a caller two ``HIGH`` hops from a sink is
  ``HIGH`` while one routed through a points-to guess is ``LOW``;
* **blind-spot reporting** — every :class:`UnresolvedSite` is a place
  static analysis admitted defeat, and an unresolved call can reach a
  sink invisibly.  Sites are split into ``in-subgraph`` (the containing
  function is itself sink-reaching, so the targeted instrumentation
  covers the caller but not this edge) and ``out-of-subgraph`` (a sink
  could be entered from untracked code; at runtime such entries surface
  as ``<untracked>`` boundary crossings);
* **a static proof report** — the reaching subgraph is pushed through
  the *same* :class:`~repro.core.encoder.Encoder` and
  :func:`~repro.core.invariants.check_dictionary` gate the engine uses,
  so the report's id-space bound and collision-freedom claim are
  checked, not estimated; sinks that cannot be covered (no match, or
  unreachable from the root) are listed with the reason.

The result feeds :mod:`repro.static.targeted`, which lowers it into the
:class:`~repro.static.targeted.TargetedPlan` the engine and tracer
consume.
"""

from __future__ import annotations

import fnmatch
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..core.events import FunctionId
from .graph import (
    Confidence,
    StaticAnalysisError,
    StaticCallGraph,
    StaticEdge,
    StaticFunction,
    UnresolvedSite,
)

#: Manifest format version for ``targets.json`` sink declarations.
TARGETS_FORMAT_VERSION = 1


@dataclass(frozen=True)
class SinkSpec:
    """One declared sink.

    ``pattern`` is either a bare function name (matched against the
    final qualname component of every function) or ``module:qualname``
    with ``fnmatch`` wildcards in both halves.  ``label`` is a free-form
    tag carried through to guard policies and reports.
    """

    pattern: str
    label: str = ""

    def matches(self, function: StaticFunction) -> bool:
        if ":" in self.pattern:
            module_pat, _, qual_pat = self.pattern.partition(":")
            return fnmatch.fnmatchcase(
                function.module, module_pat
            ) and fnmatch.fnmatchcase(function.qualname, qual_pat)
        tail = function.qualname.rsplit(".", 1)[-1]
        return fnmatch.fnmatchcase(
            tail, self.pattern
        ) or fnmatch.fnmatchcase(function.qualname, self.pattern)


def parse_targets(data: object) -> List[SinkSpec]:
    """Parse a ``targets.json`` manifest document into sink specs.

    Accepted shapes::

        {"format": 1, "sinks": ["free", {"pattern": "db:*.execute",
                                         "label": "sql"}]}
        ["free", "app:handle_*"]          # bare list shorthand

    Malformed documents raise :class:`StaticAnalysisError` with a
    structured message — the CLI turns that into a ``FAULT:`` exit.
    """
    if isinstance(data, dict):
        version = data.get("format", TARGETS_FORMAT_VERSION)
        if version != TARGETS_FORMAT_VERSION:
            raise StaticAnalysisError(
                "unsupported targets-manifest format %r" % (version,)
            )
        entries = data.get("sinks")
    else:
        entries = data
    if not isinstance(entries, list) or not entries:
        raise StaticAnalysisError(
            "targets manifest must declare a non-empty 'sinks' list"
        )
    specs: List[SinkSpec] = []
    for entry in entries:
        if isinstance(entry, str):
            if not entry:
                raise StaticAnalysisError("empty sink pattern in manifest")
            specs.append(SinkSpec(pattern=entry))
        elif isinstance(entry, dict):
            pattern = entry.get("pattern")
            if not isinstance(pattern, str) or not pattern:
                raise StaticAnalysisError(
                    "sink entry %r has no 'pattern'" % (entry,)
                )
            specs.append(
                SinkSpec(pattern=pattern, label=str(entry.get("label", "")))
            )
        else:
            raise StaticAnalysisError(
                "sink entry must be a string or object, got %r" % (entry,)
            )
    return specs


def load_targets(path: str) -> List[SinkSpec]:
    """Load and parse a ``targets.json`` manifest file."""
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise StaticAnalysisError(
                "not a targets manifest: %s" % error
            ) from error
    return parse_targets(data)


#: Sink declarations accepted by :func:`compute_reachability`: specs,
#: bare pattern strings, or resolved static function ids.
SinkDeclaration = Union[SinkSpec, str, int]


@dataclass(frozen=True)
class BlindSpot:
    """An unresolved call site that could reach a sink invisibly."""

    site: UnresolvedSite
    #: ``in-subgraph`` — the containing function is sink-reaching, so
    #: one of its calls escapes the targeted encoding; or
    #: ``out-of-subgraph`` — untracked code that may enter a sink.
    scope: str

    def render(self) -> str:
        return "%s blind spot at %s (%s)" % (
            self.scope,
            self.site.location,
            self.site.reason,
        )


@dataclass(frozen=True)
class UncoverableSink:
    """A declared sink the targeted encoding cannot prove coverage of."""

    pattern: str
    reason: str  # ``no-match`` | ``unreachable-from-root``
    function: Optional[FunctionId] = None

    def render(self) -> str:
        if self.function is not None:
            return "sink %r (function %d): %s" % (
                self.pattern,
                self.function,
                self.reason,
            )
        return "sink %r: %s" % (self.pattern, self.reason)


@dataclass
class ProofReport:
    """The checked static claim about the targeted id space.

    Produced by encoding the reaching subgraph with the engine's own
    :class:`~repro.core.encoder.Encoder` and running the full
    :func:`~repro.core.invariants.check_dictionary` suite — the bound is
    a measurement of a real dictionary, not a combinatorial estimate.
    """

    functions: int
    edges: int
    max_id: int
    #: Bits an id register needs so the flag range ``[0, 2*maxID+1]``
    #: (the ``maxID + 1`` sub-path mark included) cannot overflow.
    id_bits_required: int
    collision_free: bool
    violations: List[str] = field(default_factory=list)
    uncoverable: List[UncoverableSink] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "functions": self.functions,
            "edges": self.edges,
            "max_id": self.max_id,
            "id_bits_required": self.id_bits_required,
            "collision_free": self.collision_free,
            "violations": list(self.violations),
            "uncoverable_sinks": [
                {
                    "pattern": sink.pattern,
                    "reason": sink.reason,
                    "function": sink.function,
                }
                for sink in self.uncoverable
            ],
        }


@dataclass
class ReachabilityResult:
    """The sink-reaching subgraph plus everything honesty requires."""

    graph: StaticCallGraph
    root: FunctionId
    #: Resolved sink function ids, and the spec each one matched.
    sinks: Dict[FunctionId, SinkSpec]
    #: Per-node confidence of the best sink-reaching chain.
    node_confidence: Dict[FunctionId, Confidence]
    #: Edges on some sink-reaching path (caller and callee both reach).
    edges: List[StaticEdge]
    blind_spots: List[BlindSpot]
    unmatched: List[SinkSpec]
    proof: ProofReport

    @property
    def functions(self) -> Set[FunctionId]:
        return set(self.node_confidence)

    @property
    def coverage_fraction(self) -> float:
        """Reaching functions as a fraction of the whole graph."""
        total = self.graph.num_functions
        if not total:
            return 0.0
        return len(self.node_confidence) / total

    def subgraph(self) -> StaticCallGraph:
        """The reaching subgraph as a standalone static call graph."""
        sub = StaticCallGraph(root=self.root)
        for function_id in self.node_confidence:
            sub.add_function(self.graph.function(function_id))
        root_fn = self.graph.find_function(self.root)
        if root_fn is not None and self.root not in self.node_confidence:
            sub.add_function(root_fn)
        for edge in self.edges:
            sub.add_edge(edge)
        for spot in self.blind_spots:
            if spot.scope == "in-subgraph":
                sub.flag_unresolved(spot.site)
        return sub

    def summary(self) -> Dict[str, object]:
        return {
            "root": self.root,
            "sinks": sorted(self.sinks),
            "functions": len(self.node_confidence),
            "total_functions": self.graph.num_functions,
            "coverage_fraction": round(self.coverage_fraction, 4),
            "edges": len(self.edges),
            "blind_spots": {
                "in_subgraph": sum(
                    1 for s in self.blind_spots if s.scope == "in-subgraph"
                ),
                "out_of_subgraph": sum(
                    1
                    for s in self.blind_spots
                    if s.scope == "out-of-subgraph"
                ),
            },
            "unmatched_sinks": [spec.pattern for spec in self.unmatched],
            "proof": self.proof.to_dict(),
        }


def resolve_sinks(
    graph: StaticCallGraph, declarations: Sequence[SinkDeclaration]
) -> Tuple[Dict[FunctionId, SinkSpec], List[SinkSpec]]:
    """Match sink declarations against the graph's function set.

    Returns ``(matched, unmatched)``: every matched function id with the
    spec that claimed it, plus the specs that matched nothing (reported,
    never dropped).  Integer declarations must name existing functions.
    """
    specs: List[SinkSpec] = []
    matched: Dict[FunctionId, SinkSpec] = {}
    for declaration in declarations:
        if isinstance(declaration, SinkSpec):
            specs.append(declaration)
        elif isinstance(declaration, str):
            specs.append(SinkSpec(pattern=declaration))
        elif isinstance(declaration, bool):
            raise StaticAnalysisError(
                "sink declaration %r is not a function id" % (declaration,)
            )
        elif isinstance(declaration, int):
            function = graph.function(declaration)  # raises when unknown
            matched[function.id] = SinkSpec(
                pattern="%s:%s" % (function.module, function.qualname)
            )
        else:
            raise StaticAnalysisError(
                "unsupported sink declaration %r" % (declaration,)
            )
    if not specs and not matched:
        raise StaticAnalysisError("no sinks declared")
    unmatched: List[SinkSpec] = []
    functions = list(graph.functions())
    for spec in specs:
        hit = False
        for function in functions:
            if spec.matches(function):
                matched.setdefault(function.id, spec)
                hit = True
        if not hit:
            unmatched.append(spec)
    return matched, unmatched


def _confidence_fixpoint(
    sinks: Iterable[FunctionId],
    in_edges: Dict[FunctionId, List[StaticEdge]],
) -> Dict[FunctionId, Confidence]:
    """Backward reachability with max-min confidence propagation.

    A sink is ``HIGH`` by definition (it *is* the target).  For any
    other node the confidence of one chain is the weakest link —
    ``min(edge, successor)`` — and the node takes its best chain.  The
    lattice is finite (three ranks) and updates are monotone, so the
    worklist pass terminates.
    """
    by_rank = sorted(Confidence, key=lambda c: c.rank)
    confidence: Dict[FunctionId, Confidence] = {}
    worklist: List[FunctionId] = []
    for sink in sinks:
        confidence[sink] = Confidence.HIGH
        worklist.append(sink)
    while worklist:
        node = worklist.pop()
        node_conf = confidence[node]
        for edge in in_edges.get(node, ()):
            chain = by_rank[
                min(edge.confidence.rank, node_conf.rank)
            ]
            current = confidence.get(edge.caller)
            if current is None or chain.rank > current.rank:
                confidence[edge.caller] = chain
                worklist.append(edge.caller)
    return confidence


def compute_reachability(
    graph: StaticCallGraph,
    sinks: Sequence[SinkDeclaration],
    root: Optional[FunctionId] = None,
    min_confidence: Confidence = Confidence.LOW,
    id_bits: int = 64,
) -> ReachabilityResult:
    """The backward sink-reaching subgraph of ``graph``, with its proof.

    ``min_confidence`` gates which static edges may carry reachability:
    the default (``LOW``) keeps every edge the extractor emitted, which
    maximises coverage at the price of speculative points-to edges
    pulling extra functions into the subgraph.  ``root`` defaults to the
    graph's root; sinks the root cannot reach are reported as
    uncoverable (their ids still count as sinks — a guard may care about
    a sink only some other entry point reaches).
    """
    if root is None:
        root = graph.root
    if root is None:
        raise StaticAnalysisError(
            "static graph has no root; pass one explicitly"
        )
    matched, unmatched = resolve_sinks(graph, sinks)
    if not matched:
        raise StaticAnalysisError(
            "no declared sink matched any function: %s"
            % ", ".join(sorted(spec.pattern for spec in unmatched))
        )

    considered = [
        edge
        for edge in graph.edges()
        if edge.confidence.at_least(min_confidence)
    ]
    in_edges: Dict[FunctionId, List[StaticEdge]] = {}
    for edge in considered:
        in_edges.setdefault(edge.callee, []).append(edge)

    node_confidence = _confidence_fixpoint(matched, in_edges)
    reaching = set(node_confidence)
    kept = [
        edge
        for edge in considered
        if edge.caller in reaching and edge.callee in reaching
    ]

    blind_spots: List[BlindSpot] = []
    for site in graph.unresolved:
        scope = (
            "in-subgraph"
            if site.function is not None and site.function in reaching
            else "out-of-subgraph"
        )
        blind_spots.append(BlindSpot(site=site, scope=scope))

    uncoverable: List[UncoverableSink] = [
        UncoverableSink(pattern=spec.pattern, reason="no-match")
        for spec in unmatched
    ]
    root_reaches = root in reaching
    for function_id, spec in sorted(matched.items()):
        if not root_reaches or not _root_reaches_sink(
            root, function_id, kept
        ):
            uncoverable.append(
                UncoverableSink(
                    pattern=spec.pattern,
                    reason="unreachable-from-root",
                    function=function_id,
                )
            )

    result = ReachabilityResult(
        graph=graph,
        root=root,
        sinks=matched,
        node_confidence=node_confidence,
        edges=sorted(kept, key=lambda e: (e.callsite, e.callee)),
        blind_spots=blind_spots,
        unmatched=unmatched,
        proof=ProofReport(
            functions=0,
            edges=0,
            max_id=0,
            id_bits_required=0,
            collision_free=False,
        ),
    )
    result.proof = _prove(result, id_bits=id_bits, uncoverable=uncoverable)
    return result


def _root_reaches_sink(
    root: FunctionId, sink: FunctionId, edges: Sequence[StaticEdge]
) -> bool:
    """Forward check: does a kept-edge path lead from root to sink?"""
    if root == sink:
        return True
    out: Dict[FunctionId, List[FunctionId]] = {}
    for edge in edges:
        out.setdefault(edge.caller, []).append(edge.callee)
    seen = {root}
    frontier = [root]
    while frontier:
        node = frontier.pop()
        for callee in out.get(node, ()):
            if callee == sink:
                return True
            if callee not in seen:
                seen.add(callee)
                frontier.append(callee)
    return False


def _prove(
    result: ReachabilityResult,
    id_bits: int,
    uncoverable: List[UncoverableSink],
) -> ProofReport:
    """Encode the subgraph for real and measure the id space it needs."""
    from .warmstart import WarmStartError, build_warmstart

    subgraph = result.subgraph()
    try:
        plan = build_warmstart(
            subgraph,
            root=result.root,
            min_confidence=Confidence.LOW,
            id_bits=id_bits,
        )
    except WarmStartError as error:
        return ProofReport(
            functions=subgraph.num_functions,
            edges=subgraph.num_edges,
            max_id=0,
            id_bits_required=0,
            collision_free=False,
            violations=list(getattr(error, "violations", []) or [str(error)]),
            uncoverable=uncoverable,
        )
    max_id = plan.dictionary.max_id
    return ProofReport(
        functions=subgraph.num_functions,
        edges=subgraph.num_edges,
        max_id=max_id,
        # The runtime uses ids up to 2*maxID + 1: a discovery push marks
        # the live id with ``maxID + 1`` on top of a value <= maxID.
        id_bits_required=max(1, (2 * max_id + 1).bit_length()),
        collision_free=True,
        uncoverable=uncoverable,
    )
