"""``dacce lint`` — offline verification of persisted encoding state.

The decoder trusts its inputs: a corrupted dictionary that still parses
will send Algorithm 1 down a wrong interval and produce a *plausible but
false* calling context.  The lint pass is the line of defense in front
of that — it loads a persisted state file (``dacce record`` /
:func:`~repro.core.serialize.export_decoding_state`) and runs every
check that does not need the original process:

========================  ========  ====================================
rule                      severity  meaning
========================  ========  ====================================
``state-format``          error     unknown decoding-state version
``checksum``              error     stored dictionary CRC does not match
``invariants``            error     ``check_dictionary`` violation —
                                    acyclicity, numCC sums, interval
                                    partition, maxID (DESIGN.md §2)
``dynamic-unexplained``   error     a dynamically discovered direct edge
                                    that static analysis should have
                                    seen — a static-extractor bug,
                                    reported with the caller's source
                                    location
``id-space``              warning   ``numCC`` peak is close enough to
                                    the ``maxID+1`` flag range that the
                                    id width is at risk (error once the
                                    encoding actually overflowed)
``dead-encoded-edge``     info      encoded edges never invoked —
                                    expected for warm-start seeds, worth
                                    auditing for over-approximation
``sink-uncovered``        error     a declared sink the recording's
                                    targeted plan did not instrument —
                                    its contexts are not in the state
                                    (``--targets`` only)
``dead-targeted-id``      info      a targeted function that never
                                    appeared on a dynamic edge — paid-for
                                    instrumentation that observed nothing
                                    (``--targets`` only)
========================  ========  ====================================

``dynamic-unexplained`` only fires when a static graph is supplied, and
only for edge kinds static analysis claims to resolve: a dynamic edge of
``INDIRECT``/``TAIL``/``PLT`` kind (or a ccStack-handled back edge) is
excused — missing those is the documented contract, not a bug.  Edges
whose endpoints are outside the analyzed function set are likewise out
of scope.

Findings are data (:class:`LintFinding`); rendering and exit codes are
the CLI's job.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..core.events import CallKind
from ..core.invariants import check_dictionary
from ..core.serialize import (
    SerializationError,
    _SUPPORTED_VERSIONS,
    dictionary_from_dict,
    verify_dictionary_entry,
)
from .graph import StaticCallGraph

#: Default distance (in bits) from the id width at which the flag-range
#: headroom warning fires.  The runtime needs ids up to ``2*maxID + 1``;
#: 8 bits of slack means another ~256x growth in numCC still fits.
DEFAULT_MARGIN_BITS = 8


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


@dataclass(frozen=True)
class LintFinding:
    """One lint result: a rule, a severity, and where it fired."""

    rule: str
    severity: Severity
    message: str
    gts: Optional[int] = None
    location: Optional[str] = None

    def render(self) -> str:
        prefix = "%s [%s]" % (self.rule, self.severity.value)
        where = ""
        if self.gts is not None:
            where += " ts=%d" % self.gts
        if self.location:
            where += " at %s" % self.location
        return "%s%s: %s" % (prefix, where, self.message)


def has_errors(findings: List[LintFinding]) -> bool:
    return any(f.severity is Severity.ERROR for f in findings)


def lint_state(
    data: Dict[str, Any],
    static_graph: Optional[StaticCallGraph] = None,
    margin_bits: int = DEFAULT_MARGIN_BITS,
) -> List[LintFinding]:
    """Run every lint rule over one parsed decoding-state document."""
    if static_graph is not None and not isinstance(
        static_graph, StaticCallGraph
    ):
        # A runtime CallGraph here would "work" until the cross-check
        # dereferences StaticFunction fields; fail at the boundary.
        raise TypeError(
            "static_graph must be a StaticCallGraph, got %s"
            % type(static_graph).__name__
        )
    findings: List[LintFinding] = []
    version = data.get("format")
    if version not in _SUPPORTED_VERSIONS:
        findings.append(
            LintFinding(
                rule="state-format",
                severity=Severity.ERROR,
                message="unsupported decoding-state format %r" % (version,),
            )
        )
        return findings

    id_bits = int(data.get("config", {}).get("id_bits", 64))
    dictionaries = []
    for entry in data.get("dictionaries", []):
        ts = entry.get("timestamp")
        if version >= 2:
            try:
                verify_dictionary_entry(entry)
            except SerializationError as error:
                findings.append(
                    LintFinding(
                        rule="checksum",
                        severity=Severity.ERROR,
                        message=str(error),
                        gts=ts,
                    )
                )
                continue
        try:
            dictionary = dictionary_from_dict(entry)
        except SerializationError as error:
            findings.append(
                LintFinding(
                    rule="invariants",
                    severity=Severity.ERROR,
                    message="dictionary does not parse: %s" % error,
                    gts=ts,
                )
            )
            continue
        dictionaries.append(dictionary)
        for violation in check_dictionary(dictionary):
            findings.append(
                LintFinding(
                    rule="invariants",
                    severity=Severity.ERROR,
                    message=violation,
                    gts=dictionary.timestamp,
                )
            )
        findings.extend(_check_id_space(dictionary, id_bits, margin_bits))

    edge_stats = data.get("edge_stats")
    if edge_stats is not None and dictionaries:
        latest = max(dictionaries, key=lambda d: d.timestamp)
        findings.extend(_check_dead_edges(latest, edge_stats))
    if edge_stats is not None and static_graph is not None:
        findings.extend(_cross_check_static(edge_stats, static_graph))
    return findings


def _check_id_space(
    dictionary: Any, id_bits: int, margin_bits: int
) -> List[LintFinding]:
    """Flag-range headroom: ids must reach ``2*maxID + 1`` (encoder)."""
    findings: List[LintFinding] = []
    needed = max(1, 2 * dictionary.max_id + 1).bit_length()
    if dictionary.overflowed or needed > id_bits:
        findings.append(
            LintFinding(
                rule="id-space",
                severity=Severity.ERROR,
                message="encoding needs %d bits but ids are %d bits wide; "
                "ids at or above maxID+1 are ambiguous"
                % (needed, id_bits),
                gts=dictionary.timestamp,
            )
        )
    elif needed > id_bits - margin_bits:
        findings.append(
            LintFinding(
                rule="id-space",
                severity=Severity.WARNING,
                message="numCC peak %d puts the maxID+1 flag range within "
                "%d bits of the %d-bit id width"
                % (dictionary.max_id + 1, id_bits - needed, id_bits),
                gts=dictionary.timestamp,
            )
        )
    return findings


def _check_dead_edges(
    latest: Any, edge_stats: List[Dict[str, Any]]
) -> List[LintFinding]:
    invocations = {
        (entry["callsite"], entry["callee"]): entry.get("invocations", 0)
        for entry in edge_stats
    }
    dead = []
    for info in latest.edges():
        if info.encoding is None:
            continue
        if invocations.get((info.callsite, info.callee), 0) == 0:
            dead.append(info)
    if dead:
        return [
            LintFinding(
                rule="dead-encoded-edge",
                severity=Severity.INFO,
                message="%d encoded edge(s) never invoked (e.g. callsite "
                "%d -> fn%d); warm-start seeds that never ran, or "
                "static over-approximation"
                % (len(dead), dead[0].callsite, dead[0].callee),
                gts=latest.timestamp,
            )
        ]
    return []


#: Dynamic edge kinds whose absence from the static graph is excused.
_EXCUSED_KINDS = (CallKind.INDIRECT, CallKind.TAIL, CallKind.PLT)


def _cross_check_static(
    edge_stats: List[Dict[str, Any]], static_graph: StaticCallGraph
) -> List[LintFinding]:
    """Every missed dynamic direct edge is a static-extractor bug."""
    findings: List[LintFinding] = []
    analyzed = {fn.id for fn in static_graph.functions()}
    for entry in edge_stats:
        if entry.get("invocations", 0) <= 0:
            continue
        kind = CallKind(entry.get("kind", "normal"))
        if kind in _EXCUSED_KINDS or entry.get("is_back"):
            continue
        caller = entry["caller"]
        callee = entry["callee"]
        if caller not in analyzed or callee not in analyzed:
            continue  # outside the analysis universe (stdlib, 3rd party)
        if static_graph.has_pair(caller, callee):
            continue
        caller_fn = static_graph.function(caller)
        callee_fn = static_graph.function(callee)
        findings.append(
            LintFinding(
                rule="dynamic-unexplained",
                severity=Severity.ERROR,
                message="dynamic %s edge %s -> %s (callsite %d, %d calls) "
                "was not predicted by static analysis"
                % (
                    kind.value,
                    caller_fn.qualname,
                    callee_fn.qualname,
                    entry["callsite"],
                    entry.get("invocations", 0),
                ),
                location=caller_fn.location,
            )
        )
    return findings


def lint_targets(
    data: Dict[str, Any],
    declarations: List[Any],
    static_graph: StaticCallGraph,
) -> List[LintFinding]:
    """Check a targeted recording's state against a sink manifest.

    ``declarations`` are sink declarations (specs, patterns, or ids —
    see :func:`repro.static.reachability.resolve_sinks`) and
    ``static_graph`` the graph of the recorded program, which resolves
    the patterns to function ids.  Two rules:

    * ``sink-uncovered`` (error): a declared sink the state's targeted
      plan does not list — either the recording was not targeted at
      all, or it was built from a different manifest.  Contexts for
      that sink are simply absent from the state; a guard fed this
      recording would silently miss it.
    * ``dead-targeted-id`` (info): targeted functions that never showed
      up on any invoked dynamic edge — instrumentation that cost id
      space without observing anything, usually static
      over-approximation pulling unreachable callers into the subgraph.
    """
    from .reachability import resolve_sinks

    findings: List[LintFinding] = []
    matched, unmatched = resolve_sinks(static_graph, declarations)
    for spec in unmatched:
        findings.append(
            LintFinding(
                rule="sink-uncovered",
                severity=Severity.ERROR,
                message="sink %r matches no function in the static graph"
                % spec.pattern,
            )
        )
    targeted = data.get("targeted")
    if targeted is None:
        findings.append(
            LintFinding(
                rule="sink-uncovered",
                severity=Severity.ERROR,
                message="state was not recorded in targeted mode; none of "
                "the %d declared sink(s) are covered" % len(matched),
            )
        )
        return findings
    recorded_sinks = set(targeted.get("sinks", []))
    targeted_fns = set(targeted.get("functions", []))
    for function_id, spec in sorted(matched.items()):
        if function_id not in recorded_sinks:
            findings.append(
                LintFinding(
                    rule="sink-uncovered",
                    severity=Severity.ERROR,
                    message="sink %r (fn%d) is not in the recording's "
                    "targeted plan" % (spec.pattern, function_id),
                    location=static_graph.function(function_id).location,
                )
            )
    live = set()
    for entry in data.get("edge_stats", []):
        if entry.get("invocations", 0) > 0:
            live.add(entry["caller"])
            live.add(entry["callee"])
    dead = sorted(
        fn for fn in targeted_fns if fn not in live and fn >= 0
    )
    if dead:
        findings.append(
            LintFinding(
                rule="dead-targeted-id",
                severity=Severity.INFO,
                message="%d targeted function(s) never appeared on an "
                "invoked edge (e.g. fn%d); their id-space cost bought "
                "no observations" % (len(dead), dead[0]),
            )
        )
    return findings


def lint_engine(
    engine: Any,
    static_graph: Optional[StaticCallGraph] = None,
    margin_bits: int = DEFAULT_MARGIN_BITS,
) -> List[LintFinding]:
    """Lint a *live* engine (tests, examples) via its exported state."""
    from ..core.serialize import decoding_state_to_dict

    return lint_state(
        decoding_state_to_dict(engine),
        static_graph=static_graph,
        margin_bits=margin_bits,
    )
