"""AST-based static call-graph extraction for real Python source.

ACER-style (PAPERS.md): walk each module's AST once, record function
definitions and the call expressions inside them, then *link* the
per-module summaries into one :class:`~repro.static.graph.StaticCallGraph`.
The two-phase shape is what makes the KRAB-style incremental driver
(:mod:`repro.static.incremental`) cheap — a source change re-runs only
the summary phase of the changed module; linking is a fast pure pass.

Resolution is deliberately conservative and *honest about its limits*:

* ``f()`` where ``f`` is defined at module level, or imported via
  ``from m import f`` from an analyzed module — ``HIGH`` confidence.
* ``C()`` instantiation of a local class with an ``__init__`` —
  ``MEDIUM`` (metaclasses / ``__new__`` could redirect).
* ``self.m()`` resolved within the enclosing class — ``MEDIUM``
  (inheritance may override); inherited methods are flagged unresolved.
* ``mod.f()`` through an ``import mod`` of an analyzed module —
  ``MEDIUM`` (the attribute may be rebound at runtime).
* Everything else — calls on call results, subscripts, ``getattr``,
  arbitrary attribute chains — is an :class:`UnresolvedSite` with a
  reason; DACCE's dynamic discovery owns those edges, and the lint
  cross-check excuses them.

Calls to names that resolve to *no analyzed module* (builtins, third
party libraries) are outside the analysis universe and produce neither
edges nor flags — the lint pass likewise only cross-checks dynamic
edges whose endpoints both map into the analyzed set.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.events import CallKind
from .graph import (
    Confidence,
    StaticAnalysisError,
    StaticCallGraph,
    StaticEdge,
    StaticFunction,
    UnresolvedSite,
)

#: Pseudo-function representing a module's top-level code, mirroring the
#: ``<module>`` code objects the interpreter executes.
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class FunctionSummary:
    """One function definition found in a module."""

    qualname: str
    lineno: int
    firstlineno: int
    class_name: Optional[str] = None


@dataclass(frozen=True)
class CallRef:
    """One call expression, described symbolically (pre-link).

    ``target_kind`` selects the resolution rule applied at link time:
    ``local`` (name in the same module), ``imported`` (via ``from m
    import f``), ``module-attr`` (via ``import m; m.f()``),
    ``self-method`` (already resolved to a qualname in this module) or
    ``constructor`` (class instantiation).
    """

    caller: str
    target_kind: str
    target: str
    module: Optional[str]
    lineno: int
    col: int
    confidence: Confidence
    reason: str


@dataclass
class ModuleSummary:
    """Everything the link phase needs to know about one module."""

    module: str
    path: str
    functions: List[FunctionSummary] = field(default_factory=list)
    #: Methods per class name, for ``self.m()`` resolution.
    class_methods: Dict[str, Dict[str, str]] = field(default_factory=dict)
    classes_with_init: Dict[str, str] = field(default_factory=dict)
    calls: List[CallRef] = field(default_factory=list)
    unresolved: List[UnresolvedSite] = field(default_factory=list)


def module_name_for(path: str, root: str) -> str:
    """Dotted module name of ``path`` relative to the source root."""
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    stem, _ = os.path.splitext(relative)
    parts = [p for p in stem.split(os.sep) if p not in ("", os.curdir)]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1] or parts
    return ".".join(parts)


def summarize_source(source: str, module: str, path: str = "") -> ModuleSummary:
    """Phase 1: one module's definitions and symbolic call references."""
    try:
        tree = ast.parse(source, filename=path or module)
    except SyntaxError as error:
        raise StaticAnalysisError(
            "cannot parse %s: %s" % (path or module, error)
        ) from error
    summary = ModuleSummary(module=module, path=path)
    # Defs-only pre-pass: ``self.m()`` may call a method defined further
    # down the class body, so the class-method tables must be complete
    # before any call is classified.  The scratch summary absorbs the
    # duplicate function/flag records the pre-pass would otherwise emit.
    scratch = ModuleSummary(module=module, path=path)
    _DefsOnlyVisitor(scratch).visit(tree)
    summary.class_methods = scratch.class_methods
    summary.classes_with_init = scratch.classes_with_init
    visitor = _ModuleVisitor(summary)
    visitor.visit(tree)
    return summary


def summarize_file(path: str, root: str) -> ModuleSummary:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return summarize_source(source, module_name_for(path, root), path=path)


class _ModuleVisitor(ast.NodeVisitor):
    """Single AST pass collecting definitions, imports and calls."""

    def __init__(self, summary: ModuleSummary) -> None:
        self.summary = summary
        #: (qualname-or-MODULE_BODY, class name of the enclosing class).
        self._scopes: List[Tuple[str, Optional[str]]] = [(MODULE_BODY, None)]
        #: local alias -> ("module", dotted) or ("name", module, original).
        self._imports: Dict[str, Tuple[str, ...]] = {}
        self.summary.functions.append(
            FunctionSummary(qualname=MODULE_BODY, lineno=0, firstlineno=0)
        )

    # -- scope helpers -------------------------------------------------
    @property
    def _caller(self) -> str:
        return self._scopes[-1][0]

    @property
    def _enclosing_class(self) -> Optional[str]:
        return self._scopes[-1][1]

    def _qualify(self, name: str) -> str:
        outer, cls = self._scopes[-1]
        if cls is not None:
            return "%s.%s" % (cls, name)
        return name if outer == MODULE_BODY else "%s.%s" % (outer, name)

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self._imports[local] = ("module", target)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # Relative imports would need the package layout to resolve;
            # flag so the blind spot is auditable.
            self.summary.unresolved.append(
                UnresolvedSite(
                    module=self.summary.module,
                    function=None,
                    lineno=node.lineno,
                    reason="relative-import",
                    detail="from %s import ..." % ("." * node.level),
                )
            )
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self._imports[local] = ("name", node.module, alias.name)

    # -- definitions ---------------------------------------------------
    def _visit_function_def(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        qualname = self._qualify(node.name)
        firstlineno = node.lineno
        if node.decorator_list:
            firstlineno = min(d.lineno for d in node.decorator_list)
        cls = self._enclosing_class
        self.summary.functions.append(
            FunctionSummary(
                qualname=qualname,
                lineno=node.lineno,
                firstlineno=firstlineno,
                class_name=cls,
            )
        )
        if cls is not None:
            methods = self.summary.class_methods.setdefault(cls, {})
            methods[node.name] = qualname
            if node.name == "__init__":
                self.summary.classes_with_init[cls] = qualname
        self._scopes.append((qualname, None))
        for child in node.body:
            self.visit(child)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function_def(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualify(node.name)
        self.summary.class_methods.setdefault(qualname, {})
        self._scopes.append((self._caller, qualname))
        for child in node.body:
            self.visit(child)
        self._scopes.pop()

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._classify_call(node)
        self.generic_visit(node)

    def _classify_call(self, node: ast.Call) -> None:
        func = node.func
        caller = self._caller
        line, col = node.lineno, node.col_offset
        if isinstance(func, ast.Name):
            imported = self._imports.get(func.id)
            if imported is not None and imported[0] == "name":
                self._ref(
                    caller, "imported", imported[2], imported[1], line, col,
                    Confidence.HIGH, "imported-call",
                )
            elif imported is not None:
                # ``import m`` then ``m()`` — calling a module object.
                self._flag(line, "module-called", func.id)
            else:
                self._ref(
                    caller, "local", func.id, None, line, col,
                    Confidence.HIGH, "direct-call",
                )
            return
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self":
                cls = self._enclosing_class_of(caller)
                if cls is not None:
                    methods = self.summary.class_methods.get(cls, {})
                    target = methods.get(func.attr)
                    if target is not None:
                        self._ref(
                            caller, "self-method", target, None, line, col,
                            Confidence.MEDIUM, "self-method",
                        )
                    else:
                        self._flag(
                            line, "inherited-method",
                            "self.%s on %s" % (func.attr, cls),
                        )
                    return
                self._flag(line, "self-outside-class", "self.%s" % func.attr)
                return
            if isinstance(value, ast.Name):
                imported = self._imports.get(value.id)
                if imported is not None and imported[0] == "module":
                    self._ref(
                        caller, "module-attr", func.attr, imported[1],
                        line, col, Confidence.MEDIUM, "module-attr",
                    )
                    return
                self._flag(
                    line, "attribute-call", "%s.%s" % (value.id, func.attr)
                )
                return
            self._flag(line, "attribute-call", ast.dump(func)[:80])
            return
        # Calls on call results, subscripts, lambdas, conditionals, ...
        self._flag(line, "dynamic-call", type(func).__name__)

    def _enclosing_class_of(self, qualname: str) -> Optional[str]:
        for summary in self.summary.functions:
            if summary.qualname == qualname:
                return summary.class_name
        return None

    def _ref(
        self,
        caller: str,
        target_kind: str,
        target: str,
        module: Optional[str],
        lineno: int,
        col: int,
        confidence: Confidence,
        reason: str,
    ) -> None:
        self.summary.calls.append(
            CallRef(
                caller=caller,
                target_kind=target_kind,
                target=target,
                module=module,
                lineno=lineno,
                col=col,
                confidence=confidence,
                reason=reason,
            )
        )

    def _flag(self, lineno: int, reason: str, detail: str) -> None:
        self.summary.unresolved.append(
            UnresolvedSite(
                module=self.summary.module,
                function=None,
                lineno=lineno,
                reason=reason,
                detail=detail,
            )
        )


class _DefsOnlyVisitor(_ModuleVisitor):
    """The definition walk alone — no call classification, no flags."""

    def visit_Call(self, node: ast.Call) -> None:
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        pass

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        pass


class FunctionIndex:
    """Stable ``(module, qualname) -> FunctionId`` allocation.

    Ids are handed out on first sight and never reused, so incremental
    re-analysis keeps every surviving function's id — an engine or a
    tracer holding the previous mapping stays valid (KRAB's contract).
    """

    def __init__(self, first_id: int = 0) -> None:
        self._ids: Dict[Tuple[str, str], int] = {}
        self._next = first_id

    def id_for(self, module: str, qualname: str) -> int:
        key = (module, qualname)
        assigned = self._ids.get(key)
        if assigned is None:
            assigned = self._next
            self._ids[key] = assigned
            self._next += 1
        return assigned

    def lookup(self, module: str, qualname: str) -> Optional[int]:
        return self._ids.get((module, qualname))

    def __len__(self) -> int:
        return len(self._ids)


def link_summaries(
    summaries: Iterable[ModuleSummary],
    index: Optional[FunctionIndex] = None,
    root_function: Optional[Tuple[str, str]] = None,
) -> StaticCallGraph:
    """Phase 2: resolve symbolic references into a static call graph.

    ``root_function`` optionally names ``(module, qualname)`` of the
    entry point; its id becomes the graph root.  Call-site ids are
    assigned deterministically over the sorted call list, so the same
    input always yields the same graph.
    """
    ordered = sorted(summaries, key=lambda s: s.module)
    index = index if index is not None else FunctionIndex()
    graph = StaticCallGraph()

    by_module: Dict[str, ModuleSummary] = {}
    for summary in ordered:
        if summary.module in by_module:
            raise StaticAnalysisError(
                "module %r summarized twice" % summary.module
            )
        by_module[summary.module] = summary

    for summary in ordered:
        for fn in sorted(summary.functions, key=lambda f: f.qualname):
            graph.add_function(
                StaticFunction(
                    id=index.id_for(summary.module, fn.qualname),
                    qualname=fn.qualname,
                    module=summary.module,
                    lineno=fn.lineno,
                    firstlineno=fn.firstlineno,
                )
            )
        graph.unresolved.extend(summary.unresolved)

    if root_function is not None:
        root_id = index.lookup(*root_function)
        # The index is persistent across incremental refreshes: a
        # function whose source file was deleted or renamed still has an
        # id there.  The root must exist in *this* graph — a dangling
        # root id would poison every downstream consumer (warm-start,
        # reachability) with a node no edge can reach.
        if root_id is None or graph.find_function(root_id) is None:
            raise StaticAnalysisError(
                "root function %s.%s not found" % root_function,
                reason="missing-root",
                module=root_function[0],
                qualname=root_function[1],
            )
        graph.root = root_id

    next_callsite = 0
    for summary in ordered:
        calls = sorted(summary.calls, key=lambda c: (c.lineno, c.col))
        for call in calls:
            callsite = next_callsite
            next_callsite += 1
            resolved = _resolve(call, summary, by_module, index)
            if resolved is None:
                continue
            callee, confidence, reason = resolved
            caller_id = index.lookup(summary.module, call.caller)
            if caller_id is None:
                continue
            graph.add_edge(
                StaticEdge(
                    caller=caller_id,
                    callee=callee,
                    callsite=callsite,
                    kind=CallKind.NORMAL,
                    confidence=confidence,
                    lineno=call.lineno,
                    reason=reason,
                )
            )
    return graph


def _resolve(
    call: CallRef,
    summary: ModuleSummary,
    by_module: Dict[str, ModuleSummary],
    index: FunctionIndex,
) -> Optional[Tuple[int, Confidence, str]]:
    """Resolve one symbolic call reference to a function id, if possible."""
    if call.target_kind == "local":
        local = _local_target(summary, call.target, index)
        if local is not None:
            return local[0], min_confidence(call.confidence, local[1]), local[2]
        # Not defined here and not imported: a builtin or a global from
        # another mechanism — outside the analysis universe.
        return None
    if call.target_kind == "self-method":
        callee = index.lookup(summary.module, call.target)
        if callee is None:
            return None
        return callee, call.confidence, call.reason
    if call.target_kind in ("imported", "module-attr"):
        target_module = by_module.get(call.module or "")
        if target_module is None:
            return None  # import of an un-analyzed module
        local = _local_target(target_module, call.target, index)
        if local is None:
            return None
        return local[0], min_confidence(call.confidence, local[1]), (
            call.reason if local[2] == "direct-call" else local[2]
        )
    return None


def _local_target(
    summary: ModuleSummary, name: str, index: FunctionIndex
) -> Optional[Tuple[int, Confidence, str]]:
    """A module-level function or instantiable class named ``name``."""
    for fn in summary.functions:
        if fn.qualname == name and fn.class_name is None:
            assigned = index.lookup(summary.module, name)
            if assigned is None:
                return None
            return assigned, Confidence.HIGH, "direct-call"
    init = summary.classes_with_init.get(name)
    if init is not None:
        assigned = index.lookup(summary.module, init)
        if assigned is None:
            return None
        return assigned, Confidence.MEDIUM, "constructor"
    return None


def min_confidence(a: Confidence, b: Confidence) -> Confidence:
    return a if a.rank <= b.rank else b


def extract_package(
    root: str,
    index: Optional[FunctionIndex] = None,
    root_function: Optional[Tuple[str, str]] = None,
) -> StaticCallGraph:
    """One-shot extraction over every ``*.py`` file under ``root``."""
    summaries = [
        summarize_file(path, root) for path in iter_python_files(root)
    ]
    return link_summaries(summaries, index=index, root_function=root_function)


def iter_python_files(root: str) -> List[str]:
    """All ``*.py`` files under ``root`` (or ``root`` itself), sorted."""
    if os.path.isfile(root):
        return [root]
    found: List[str] = []
    for base, _dirs, files in os.walk(root):
        for name in files:
            if name.endswith(".py"):
                found.append(os.path.join(base, name))
    return sorted(found)
