"""KRAB-style incremental re-analysis of a Python source tree.

The static graph is only useful if it stays *current*: a stale graph
turns the lint cross-check into noise and makes warm-start seed edges
the program no longer has.  Re-running whole-program extraction on every
change is the naive fix; KRAB (PAPERS.md) shows the right shape — keep
per-module artifacts keyed by a content hash and recompute only what
changed, then re-link.

:class:`IncrementalAnalyzer` implements exactly that split over
:mod:`repro.static.pyextract`'s two phases:

* **summary phase** (per module, expensive): parse + AST walk, cached by
  the SHA-256 of the module source;
* **link phase** (whole program, cheap): pure resolution over the cached
  summaries, re-run on every :meth:`refresh`.

Function ids are allocated by a persistent
:class:`~repro.static.pyextract.FunctionIndex`, so a function that
survives an edit keeps its id across refreshes — consumers holding a
mapping (a tracer, a warm-started engine) are never invalidated by
changes elsewhere in the tree.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .graph import StaticCallGraph
from .pyextract import (
    FunctionIndex,
    ModuleSummary,
    iter_python_files,
    module_name_for,
    summarize_source,
)


@dataclass
class RefreshStats:
    """What one :meth:`IncrementalAnalyzer.refresh` pass actually did."""

    modules_seen: int = 0
    modules_analyzed: int = 0
    modules_reused: int = 0
    modules_removed: int = 0

    @property
    def reuse_ratio(self) -> float:
        if not self.modules_seen:
            return 0.0
        return self.modules_reused / self.modules_seen


@dataclass
class _CacheEntry:
    digest: str
    summary: ModuleSummary


@dataclass
class IncrementalAnalyzer:
    """Content-hash-cached extraction over one source root."""

    root: str
    index: FunctionIndex = field(default_factory=FunctionIndex)
    root_function: Optional[Tuple[str, str]] = None
    _cache: Dict[str, _CacheEntry] = field(default_factory=dict)
    #: Cumulative counters across the analyzer's lifetime.
    total_analyzed: int = 0
    total_reused: int = 0

    def refresh(self) -> Tuple[StaticCallGraph, RefreshStats]:
        """Bring the graph up to date with the source tree.

        Re-summarizes only modules whose source hash changed (or that
        are new), drops modules whose files disappeared, and re-links.
        """
        stats = RefreshStats()
        live: Dict[str, _CacheEntry] = {}
        for path in iter_python_files(self.root):
            key = os.path.abspath(path)
            stats.modules_seen += 1
            with open(path, "rb") as handle:
                raw = handle.read()
            digest = hashlib.sha256(raw).hexdigest()
            cached = self._cache.get(key)
            if cached is not None and cached.digest == digest:
                stats.modules_reused += 1
                live[key] = cached
                continue
            summary = summarize_source(
                raw.decode("utf-8"),
                module_name_for(path, self.root),
                path=path,
            )
            stats.modules_analyzed += 1
            live[key] = _CacheEntry(digest=digest, summary=summary)
        stats.modules_removed = len(self._cache) - sum(
            1 for key in self._cache if key in live
        )
        self._cache = live
        self.total_analyzed += stats.modules_analyzed
        self.total_reused += stats.modules_reused
        graph = self.link()
        return graph, stats

    def link(self) -> StaticCallGraph:
        """Re-link the cached summaries without touching any source."""
        from .pyextract import link_summaries

        return link_summaries(
            [entry.summary for entry in self._cache.values()],
            index=self.index,
            root_function=self.root_function,
        )

    def cached_modules(self) -> List[str]:
        return sorted(
            entry.summary.module for entry in self._cache.values()
        )
