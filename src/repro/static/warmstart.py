"""Warm-start seeding: statically known edges encoded at gTimeStamp 0.

DACCE's dynamic discovery (Section 3) pays, per edge, one runtime-handler
invocation plus ``<id, callsite, target>`` ccStack saves on every call
over the edge until the next re-encoding pass.  A warm start moves the
high-confidence static subgraph into the *initial* encoding dictionary,
so those edges are born encoded: their first invocation finds the edge
in the graph (no handler) with a valid ``En`` (no discovery push).

The plan is built offline and is strictly gated: the seeded dictionary
is produced by the *same* :class:`~repro.core.encoder.Encoder` the
engine uses and must pass the full
:func:`~repro.core.invariants.check_dictionary` suite before an engine
will accept it — a broken static graph fails loudly at build time, never
at decode time.

Semantics versus the paper: warm-starting changes *when* edges enter the
dictionary, never *whether* contexts decode correctly.  Unseeded edges
(low-confidence statics, dlopen plugins, unforeseen indirect targets)
still take the Section 3 dynamic-discovery path unchanged, and back
edges stay on the ccStack exactly as before — seeding a recursive edge
only spares its discovery handler, not its ccStack traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..core.callgraph import CallGraph, dfs_classify_back_edges
from ..core.dictionary import EncodingDictionary
from ..core.encoder import EdgeOrderPolicy, Encoder, insertion_order
from ..core.errors import DacceError
from ..core.events import CallKind, CallSiteId, FunctionId
from ..core.invariants import check_dictionary
from .graph import Confidence, StaticCallGraph


class WarmStartError(DacceError):
    """The static subgraph cannot be turned into a sound seed encoding."""


@dataclass
class WarmStartPlan:
    """Everything an engine needs to start pre-seeded.

    ``graph`` is a live :class:`~repro.core.callgraph.CallGraph` whose
    edges are all marked ``seeded``; ``dictionary`` is its gTimeStamp-0
    encoding, already validated by ``check_dictionary``.
    """

    graph: CallGraph
    dictionary: EncodingDictionary
    seeded_edges: int
    #: Static edges excluded by the confidence gate, by confidence level.
    skipped: Dict[str, int] = field(default_factory=dict)

    def indirect_sites(self) -> Dict[CallSiteId, List[FunctionId]]:
        """Seeded indirect sites and their targets, for pre-patching."""
        sites: Dict[CallSiteId, List[FunctionId]] = {}
        for edge in self.graph.edges():
            if edge.kind is CallKind.INDIRECT:
                sites.setdefault(edge.callsite, []).append(edge.callee)
        return sites

    def tail_callers(self) -> Set[FunctionId]:
        """Functions statically known to contain tail calls (Figure 7)."""
        return {
            edge.caller
            for edge in self.graph.edges()
            if edge.kind is CallKind.TAIL
        }


def build_warmstart(
    static_graph: StaticCallGraph,
    root: Optional[FunctionId] = None,
    min_confidence: Confidence = Confidence.HIGH,
    id_bits: int = 64,
    order_policy: EdgeOrderPolicy = insertion_order,
) -> WarmStartPlan:
    """Convert the confident static subgraph into a seed encoding.

    Edges below ``min_confidence`` are skipped (and counted): seeding a
    speculative edge costs id-space for a context that may never exist —
    the PCCE failure mode the paper measures — so the default takes only
    ``HIGH`` edges.
    """
    if root is None:
        root = static_graph.root
    if root is None:
        raise WarmStartError(
            "static graph has no root; pass one explicitly"
        )

    graph = CallGraph(root)
    skipped: Dict[str, int] = {}
    seeded = 0
    for edge in sorted(
        static_graph.edges(), key=lambda e: (e.callsite, e.callee)
    ):
        if not edge.confidence.at_least(min_confidence):
            name = edge.confidence.value
            skipped[name] = skipped.get(name, 0) + 1
            continue
        added = graph.add_edge(
            edge.caller,
            edge.callee,
            edge.callsite,
            kind=edge.kind,
            classify=False,
        )
        added.seeded = True
        seeded += 1
    # Bulk classification: recursion cycles in the seed become back
    # edges in one DFS pass instead of one reachability query per edge.
    dfs_classify_back_edges(graph)

    encoder = Encoder(order_policy=order_policy, id_bits=id_bits)
    dictionary = encoder.encode(graph, timestamp=0)
    violations = check_dictionary(dictionary)
    if violations:
        raise WarmStartError(
            "seed dictionary failed its invariant gate: %s"
            % "; ".join(violations),
            violations=violations,
        )
    return WarmStartPlan(
        graph=graph,
        dictionary=dictionary,
        seeded_edges=seeded,
        skipped=skipped,
    )
