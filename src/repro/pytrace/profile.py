"""Context-sensitive profiling built on the Python tracer.

Aggregates collected samples into a *calling-context profile*: how often
each full context was observed, rolled up per function (flat view) and
per context (context-sensitive view).  Since PR 5 the aggregation runs
through the profiling subsystem (:mod:`repro.prof`): every sample is
folded into a weighted :class:`~repro.prof.CCTAggregator`, and the
familiar :class:`ContextProfile` views are derived from the CCT — which
also makes flamegraph export (:meth:`ContextProfile.to_folded`) and
profile diffing available for free.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..prof import CCTAggregator, to_folded
from .tracer import PythonDacceTracer


@dataclass
class ProfileEntry:
    """One context with its observation count."""

    rendered: str
    functions: Tuple[int, ...]
    count: int
    weight: float = 0.0


@dataclass
class ContextProfile:
    """Aggregated sampling profile over decoded contexts."""

    total_samples: int
    contexts: List[ProfileEntry]
    flat: Dict[str, int]
    aggregator: Optional[CCTAggregator] = field(default=None, repr=False)

    def hottest(self, limit: int = 10) -> List[ProfileEntry]:
        return self.contexts[:limit]

    def flat_hottest(self, limit: int = 10) -> List[Tuple[str, int]]:
        return Counter(self.flat).most_common(limit)

    def self_count(self, function_name: str) -> int:
        """Samples whose innermost frame is ``function_name``."""
        return sum(
            entry.count
            for entry in self.contexts
            if entry.rendered.rsplit(" -> ", 1)[-1].split("*")[0]
            == function_name
        )

    def format(self, limit: int = 10) -> str:
        lines = ["%6s  %s" % ("count", "calling context")]
        for entry in self.hottest(limit):
            lines.append("%6d  %s" % (entry.count, entry.rendered))
        return "\n".join(lines)

    def to_folded(self) -> str:
        """Folded stacks (flamegraph.pl input) for the underlying CCT."""
        if self.aggregator is None:
            raise ValueError("profile built without an aggregator")
        return to_folded(self.aggregator)


def build_profile(
    tracer: PythonDacceTracer,
    weights: Optional[Sequence[float]] = None,
) -> ContextProfile:
    """Decode every collected sample and aggregate the profile.

    ``weights`` defaults to the tracer's own per-sample weights (1.0
    each, or wall-time deltas when the tracer runs with
    ``wall_time=True``); the CCT carries the weights while the
    :class:`ContextProfile` counts stay plain observation counts.
    """
    aggregator = CCTAggregator.from_engine(
        tracer.engine, names=tracer.name_resolver()
    )
    decoder = aggregator.decoder
    assert decoder is not None
    sample_weights = weights if weights is not None else tracer.sample_weights
    by_context: Counter = Counter()
    context_weight: Dict[Tuple[int, ...], float] = {}
    rendered_cache: Dict[Tuple[int, ...], str] = {}
    flat: Counter = Counter()

    for index, sample in enumerate(tracer.samples):
        result = decoder.decode_best_effort(sample)
        weight = (
            float(sample_weights[index])
            if index < len(sample_weights)
            else 1.0
        )
        aggregator.add_decoded(result, weight, timestamp=sample.timestamp)
        key = result.context.functions()
        by_context[key] += 1
        context_weight[key] = context_weight.get(key, 0.0) + weight
        if key not in rendered_cache:
            rendered_cache[key] = tracer.format_context(result.context)
        leaf = key[-1]
        flat[tracer.function_info(leaf).name] += 1

    contexts = [
        ProfileEntry(
            rendered=rendered_cache[key],
            functions=key,
            count=count,
            weight=context_weight[key],
        )
        for key, count in by_context.most_common()
    ]
    return ContextProfile(
        total_samples=len(tracer.samples),
        contexts=contexts,
        flat=dict(flat),
        aggregator=aggregator,
    )


def profile_callable(fn, *args, sample_every: int = 50,
                     wall_time: bool = False, **kwargs):
    """Convenience: trace ``fn(*args, **kwargs)`` and return its profile.

    Returns ``(result, profile)``.  ``wall_time=True`` weighs each
    sample by the wall-clock seconds since the previous one instead of
    by count.
    """
    tracer = PythonDacceTracer(sample_every=sample_every, wall_time=wall_time)
    result = tracer.run(fn, *args, **kwargs)
    return result, build_profile(tracer)
