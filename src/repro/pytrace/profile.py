"""Context-sensitive profiling built on the Python tracer.

Aggregates collected samples into a *calling-context profile*: how often
each full context was observed, rolled up per function (flat view) and
per context (context-sensitive view).  This is the "performance
analysis" application of the paper's introduction in library form — the
`examples/python_profiler.py` scenario as a reusable component.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .tracer import PythonDacceTracer


@dataclass
class ProfileEntry:
    """One context with its observation count."""

    rendered: str
    functions: Tuple[int, ...]
    count: int


@dataclass
class ContextProfile:
    """Aggregated sampling profile over decoded contexts."""

    total_samples: int
    contexts: List[ProfileEntry]
    flat: Dict[str, int]

    def hottest(self, limit: int = 10) -> List[ProfileEntry]:
        return self.contexts[:limit]

    def flat_hottest(self, limit: int = 10) -> List[Tuple[str, int]]:
        return Counter(self.flat).most_common(limit)

    def self_count(self, function_name: str) -> int:
        """Samples whose innermost frame is ``function_name``."""
        return sum(
            entry.count
            for entry in self.contexts
            if entry.rendered.rsplit(" -> ", 1)[-1].split("*")[0]
            == function_name
        )

    def format(self, limit: int = 10) -> str:
        lines = ["%6s  %s" % ("count", "calling context")]
        for entry in self.hottest(limit):
            lines.append("%6d  %s" % (entry.count, entry.rendered))
        return "\n".join(lines)


def build_profile(tracer: PythonDacceTracer) -> ContextProfile:
    """Decode every collected sample and aggregate the profile."""
    decoder = tracer.engine.decoder()
    by_context: Counter = Counter()
    rendered_cache: Dict[Tuple[int, ...], str] = {}
    flat: Counter = Counter()

    for sample in tracer.samples:
        context = decoder.decode(sample)
        key = context.functions()
        by_context[key] += 1
        if key not in rendered_cache:
            rendered_cache[key] = tracer.format_context(context)
        leaf = key[-1]
        flat[tracer.function_info(leaf).name] += 1

    contexts = [
        ProfileEntry(rendered=rendered_cache[key], functions=key, count=count)
        for key, count in by_context.most_common()
    ]
    return ContextProfile(
        total_samples=len(tracer.samples),
        contexts=contexts,
        flat=dict(flat),
    )


def profile_callable(fn, *args, sample_every: int = 50, **kwargs):
    """Convenience: trace ``fn(*args, **kwargs)`` and return its profile.

    Returns ``(result, profile)``.
    """
    tracer = PythonDacceTracer(sample_every=sample_every)
    result = tracer.run(fn, *args, **kwargs)
    return result, build_profile(tracer)
