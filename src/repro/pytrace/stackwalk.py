"""Interpreter stack walking — the validation oracle for pytrace.

The paper cross-validates decoded contexts against stack walks captured
at the same sample points (Section 6.1).  For the Python frontend the
walk is a traversal of ``frame.f_back``, producing the same
``CallingContext`` shape the decoder emits so the two can be compared
step by step.
"""

from __future__ import annotations

import sys
from types import FrameType
from typing import List, Optional

from ..core.context import CallingContext, ContextStep
from .tracer import ROOT_FUNCTION, PythonDacceTracer


def walk_stack(
    tracer: PythonDacceTracer,
    frame: Optional[FrameType] = None,
    skip: int = 1,
) -> CallingContext:
    """Capture the current Python call path as the tracer would name it.

    ``skip`` drops that many innermost frames (this helper itself).
    Frames above the tracer's base (the harness) collapse into the
    root node, matching the engine's view.
    """
    if frame is None:
        frame = sys._getframe(skip)
    functions: List[int] = []
    live = {id(f) for f in tracer._live_frames}
    current: Optional[FrameType] = frame
    while current is not None:
        if id(current) in live:
            functions.append(tracer._function_id(current.f_code))
        current = current.f_back
    functions.append(ROOT_FUNCTION)
    functions.reverse()
    return CallingContext(tuple(ContextStep(fn) for fn in functions))


def contexts_agree(decoded: CallingContext, walked: CallingContext) -> bool:
    """Function-path equality (stack walks carry no call-site info)."""
    return decoded.functions() == walked.functions()
