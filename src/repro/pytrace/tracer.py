"""DACCE over live Python execution.

The paper instruments x86 binaries; this frontend instruments the Python
interpreter itself through ``sys.setprofile``, mapping code objects to
function ids and (caller code object, bytecode offset) pairs to call
sites.  Every Python call/return drives the same :class:`DacceEngine`
used by the synthetic substrate, so real programs get real dynamic
calling-context encoding: ids stay compact, recursion lands on the
ccStack, re-encoding adapts to the program's call mix, and any collected
sample decodes back to the exact Python call path.

This is the reproduction's end-to-end validation path: decoded contexts
are cross-checked against genuine interpreter stack walks
(:mod:`repro.pytrace.stackwalk`), mirroring the paper's libpfm4
cross-validation (Section 6.1).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from types import CodeType, FrameType
from typing import Any, Callable, Dict, List, Optional, Tuple

import os

from ..core.ccstack import UNTRACKED_FUNCTION
from ..core.columnar import EventColumns
from ..core.context import CallingContext, CollectedSample
from ..core.engine import DacceConfig, DacceEngine
from ..core.errors import TraceError

#: Function id reserved for the tracing root (the ``main`` node).
ROOT_FUNCTION = 0

#: Targeted-mode shadow-frame kinds: an in-plan frame, the frame that
#: opened an untracked region (its call/return cross the boundary), and
#: frames entirely inside such a region (zero engine events).
_TRACKED = 0
_REGION_OPEN = 1
_REGION_INNER = 2

#: The tracer never traces the repro package itself — its own engine
#: calls (sampling, decoding) run while the profile hook is active.
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@dataclass
class FunctionInfo:
    """Human-readable identity of a traced Python function."""

    id: int
    name: str
    filename: str
    firstlineno: int

    @property
    def qualified(self) -> str:
        return "%s:%d:%s" % (self.filename, self.firstlineno, self.name)


class PythonDacceTracer:
    """Encode the calling contexts of real Python execution.

    Usage::

        tracer = PythonDacceTracer()
        with tracer:
            my_workload()
        sample = tracer.last_samples[-1]
        text = tracer.format_context(tracer.decode(sample))

    Samples are taken with :meth:`sample` (callable from inside the
    traced code), or automatically every ``sample_every`` calls.

    Limitations (documented, by design): C-level calls are not traced
    (no Python frame), and the tracer follows a single thread — the
    multi-threaded machinery is exercised by the synthetic substrate.
    """

    def __init__(
        self,
        config: Optional[DacceConfig] = None,
        sample_every: int = 0,
        static_graph: Optional[Any] = None,
        source_root: Optional[str] = None,
        wall_time: bool = False,
        targeted: Optional[Any] = None,
    ):
        # Targeted mode (repro.static.targeted): the engine encodes only
        # the plan's sink-reaching subgraph, and the tracer classifies
        # each code object once — out-of-plan code gets no function id,
        # no callsite mapping and (inside an untracked region) no engine
        # events at all.  Under ``sys.setprofile`` the interpreter still
        # invokes the hook, so the modeled saving is everything past the
        # disposition-cache probe; a real deployment (sys.monitoring's
        # per-code DISABLE, or binary patching as in the paper) would
        # also skip the callback itself.
        self.targeted = targeted
        self._plan_fns: Optional[set] = None
        self.skipped_code_objects = 0
        self.suppressed_events = 0
        self._disposition: Dict[CodeType, bool] = {}
        self._frame_kinds: List[int] = []
        self._static_site: Dict[Tuple[int, int], int] = {}
        if targeted is not None:
            if targeted.warm_start.graph.root != ROOT_FUNCTION:
                raise TraceError(
                    "a targeted plan for tracing must be built against the "
                    "tracer root: build_targeted(..., root=%d)"
                    % ROOT_FUNCTION
                )
            if source_root is None:
                raise TraceError(
                    "targeted tracing requires source_root (plan function "
                    "ids are static ids)"
                )
            if static_graph is None:
                # The full analysed graph, so every statically known
                # function resolves to its id for disposition checks.
                static_graph = targeted.report.graph
            self._plan_fns = set(targeted.functions)
            # Tracked-pair -> seeded static call site.  Emitting the
            # *static* site id for tracked calls lands them on the
            # warm-started dictionary edges instead of re-discovering
            # every edge under fresh dynamic site ids (pairs with
            # several static sites collapse onto the smallest — a
            # deliberate precision trade documented in the docs).
            for edge in targeted.static_graph.edges():
                key = (edge.caller, edge.callee)
                site = self._static_site.get(key)
                if site is None or edge.callsite < site:
                    self._static_site[key] = edge.callsite
            self.engine = DacceEngine(config=config, targeted=targeted)
        else:
            self.engine = DacceEngine(root=ROOT_FUNCTION, config=config)
        self.sample_every = sample_every
        self.samples: List[CollectedSample] = []
        #: Per-sample weights, parallel to :attr:`samples`: 1.0 each in
        #: call-count mode, the wall-clock seconds since the previous
        #: sample when ``wall_time`` is set — the two weight models the
        #: profiling subsystem (:mod:`repro.prof`) aggregates by.
        self.wall_time = wall_time
        self.sample_weights: List[float] = []
        self._last_sample_time: Optional[float] = None
        self._functions: Dict[CodeType, FunctionInfo] = {}
        self._function_names: Dict[int, FunctionInfo] = {
            ROOT_FUNCTION: FunctionInfo(ROOT_FUNCTION, "<root>", "<tracer>", 0)
        }
        if targeted is not None:
            self._function_names[UNTRACKED_FUNCTION] = FunctionInfo(
                UNTRACKED_FUNCTION, "<untracked>", "<targeted>", 0
            )
        self._callsites: Dict[Tuple[int, int], int] = {}
        self._next_function = ROOT_FUNCTION + 1
        self._next_callsite = 1
        # Code-object -> static-function-id mapping.  With a
        # ``StaticCallGraph`` (from ``repro.static``) and the source root
        # it was extracted from, traced functions take the *static* ids,
        # so dynamic edges line up with static edges for the lint
        # cross-check.  The graph's ids must avoid ``ROOT_FUNCTION``
        # (allocate the FunctionIndex with ``first_id=1``); an id-0 entry
        # is indistinguishable from the tracing root and is skipped.
        self._static_ids: Dict[Tuple[str, str, int], int] = {}
        self._source_root = ""
        self.static_hits = 0
        if static_graph is not None:
            if source_root is None:
                raise TraceError(
                    "static_graph requires source_root to map filenames"
                )
            self._source_root = os.path.abspath(source_root)
            highest = ROOT_FUNCTION
            for fn in static_graph.functions():
                if fn.id == ROOT_FUNCTION:
                    continue
                name = fn.qualname.rsplit(".", 1)[-1]
                self._static_ids[(fn.module, name, fn.firstlineno)] = fn.id
                self._function_names[fn.id] = FunctionInfo(
                    fn.id, fn.qualname, fn.module, fn.firstlineno
                )
                highest = max(highest, fn.id)
            # Dynamically discovered functions must not collide with the
            # statically allocated id range.
            self._next_function = highest + 1
            if self._plan_fns is not None:
                # Dynamic (boundary) call sites must not collide with
                # the static site ids seeded into the engine dictionary.
                top_site = max(
                    (edge.callsite for edge in static_graph.edges()),
                    default=0,
                )
                self._next_callsite = max(self._next_callsite, top_site + 1)
        #: Frames we have emitted CallEvents for, bottom first.
        self._live_frames: List[FrameType] = []
        self._active = False
        self._calls_since_sample = 0
        self._base_frame: Optional[FrameType] = None
        #: Pending events as a preallocated struct-of-arrays slab,
        #: drained through the engine's code-generated columnar fast
        #: lane.  The per-call profile-hook work is a handful of integer
        #: column stores; anything that observes engine state (sampling,
        #: decoding, the shadow-stack oracle, ``stop``) flushes first,
        #: so observable behaviour is unchanged.  ``clear()`` keeps the
        #: storage, so a long trace never reallocates the slab.
        self._buffer_limit = 512
        self._columns = EventColumns.with_capacity(self._buffer_limit)
        #: Samples delivered by the engine hook while an aggregator is
        #: attached; decoded and folded in one batch per flush instead
        #: of per sample inside the hot callback.
        self._pending_cct: List[Tuple[CollectedSample, float]] = []
        self._cct_aggregator: Optional[Any] = None
        #: True while engine machinery runs under an active profile hook
        #: (flush / sample / decode called from traced code); the hook
        #: ignores those interpreter events — they belong to the tracer,
        #: not the traced program.
        self._in_engine = False

    # ------------------------------------------------------------------
    # identity mapping
    # ------------------------------------------------------------------
    def _function_id(self, code: CodeType) -> int:
        info = self._functions.get(code)
        if info is None:
            assigned = self._static_function_id(code)
            if assigned is None:
                assigned = self._next_function
                self._next_function += 1
            else:
                self.static_hits += 1
            info = FunctionInfo(
                assigned,
                code.co_name,
                code.co_filename,
                code.co_firstlineno,
            )
            self._functions[code] = info
            self._function_names[info.id] = info
        return info.id

    def _static_function_id(self, code: CodeType) -> Optional[int]:
        """The static id of ``code``, when a static mapping is loaded.

        Matching is exact: the dotted module name (derived from the
        filename relative to the source root) plus the bare function
        name plus ``co_firstlineno`` — which the extractor computed
        decorator-adjusted, the way live code objects report it.
        """
        if not self._static_ids:
            return None
        filename = os.path.abspath(code.co_filename)
        if not filename.startswith(self._source_root + os.sep):
            return None
        from ..static.pyextract import MODULE_BODY, module_name_for

        module = module_name_for(filename, self._source_root)
        if code.co_name == "<module>":
            return self._static_ids.get((module, MODULE_BODY, 0))
        return self._static_ids.get(
            (module, code.co_name, code.co_firstlineno)
        )

    def _code_disposition(self, code: CodeType) -> bool:
        """Whether ``code`` is inside the targeted plan (cached).

        Each code object is classified exactly once; out-of-plan code
        never gets a function id or call-site allocation.  Everything
        past this cache probe — id mapping, event construction, engine
        work — is what targeted mode skips for untracked code.
        """
        tracked = self._disposition.get(code)
        if tracked is None:
            assert self._plan_fns is not None
            static_id = self._static_function_id(code)
            tracked = static_id is not None and static_id in self._plan_fns
            self._disposition[code] = tracked
            if not tracked:
                self.skipped_code_objects += 1
        return tracked

    def _callsite_id(self, caller: int, lasti: int) -> int:
        key = (caller, lasti)
        site = self._callsites.get(key)
        if site is None:
            site = self._next_callsite
            self._callsites[key] = site
            self._next_callsite += 1
        return site

    def function_info(self, function_id: int) -> FunctionInfo:
        try:
            return self._function_names[function_id]
        except KeyError:
            raise TraceError("unknown function id %d" % function_id) from None

    # ------------------------------------------------------------------
    # tracing lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "PythonDacceTracer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def start(self) -> None:
        if self._active:
            raise TraceError("tracer already active")
        self._active = True
        self._calls_since_sample = 0
        self._last_sample_time = time.perf_counter()
        # Frames at or above the base frame belong to the harness, not
        # the traced program; they map onto the engine's root node.
        self._base_frame = sys._getframe(1)
        sys.setprofile(self._profile)

    def stop(self) -> None:
        if not self._active:
            return
        sys.setprofile(None)
        self._active = False
        # Synthetically unwind frames that are still live (the traced
        # call may terminate via an exception caught above us).
        while self._live_frames:
            self._live_frames.pop()
            if self._frame_kinds and self._frame_kinds.pop() == _REGION_INNER:
                continue
            self._columns.push_return(0)
        self.flush()
        self._base_frame = None

    def flush(self) -> None:
        """Drain buffered events into the engine's columnar fast lane."""
        cols = self._columns
        if len(cols):
            self._in_engine = True
            try:
                self.engine.process_columns(cols)
            finally:
                self._in_engine = False
                cols.clear()
        if self._pending_cct:
            self._drain_cct_samples()

    # ------------------------------------------------------------------
    def _profile(self, frame: FrameType, event: str, arg: Any) -> None:
        if self._in_engine:
            return
        if event == "call":
            self._on_call(frame)
        elif event == "return":
            self._on_return(frame)
        # c_call / c_return / exception events carry no Python frame
        # transition we need to encode.

    def _on_call(self, frame: FrameType) -> None:
        filename = frame.f_code.co_filename
        if filename.startswith(_PACKAGE_ROOT) or filename.startswith("<frozen"):
            return  # never trace the tracer/engine machinery itself
        if self._plan_fns is not None:
            self._on_call_targeted(frame)
            return
        parent = frame.f_back
        if self._live_frames:
            if parent is not self._live_frames[-1]:
                # A call from outside the traced stack (e.g. a callback
                # from C code whose Python parent we never saw): skip it
                # and everything below it would desynchronise — attach
                # it to the current top instead.
                caller_id = self._function_id(self._live_frames[-1].f_code)
            else:
                caller_id = self._function_id(parent.f_code)
            lasti = parent.f_lasti if parent is not None else 0
        else:
            caller_id = ROOT_FUNCTION
            lasti = 0
        callee_id = self._function_id(frame.f_code)
        callsite = self._callsite_id(caller_id, lasti)
        self._columns.push_call(0, callsite, caller_id, callee_id)
        self._live_frames.append(frame)
        if self.sample_every:
            self._calls_since_sample += 1
            if self._calls_since_sample >= self.sample_every:
                self._calls_since_sample = 0
                self._record_sample()
        if len(self._columns) >= self._buffer_limit:
            self.flush()

    def _on_call_targeted(self, frame: FrameType) -> None:
        kinds = self._frame_kinds
        in_region = bool(kinds) and kinds[-1] != _TRACKED
        if self._code_disposition(frame.f_code):
            if in_region:
                # Re-entry from an untracked region: the true call path
                # passed through unencoded code, so the caller is the
                # merged ``<untracked>`` pseudo-function (the engine
                # pushes the boundary ccStack entry Algorithm 1 needs).
                caller_id = UNTRACKED_FUNCTION
                lasti = 0
            else:
                parent = frame.f_back
                if self._live_frames:
                    if parent is not self._live_frames[-1]:
                        caller_id = self._function_id(
                            self._live_frames[-1].f_code
                        )
                    else:
                        caller_id = self._function_id(parent.f_code)
                    lasti = parent.f_lasti if parent is not None else 0
                else:
                    caller_id = ROOT_FUNCTION
                    lasti = 0
            callee_id = self._function_id(frame.f_code)
            kind = _TRACKED
            if caller_id != UNTRACKED_FUNCTION:
                site = self._static_site.get((caller_id, callee_id))
                if site is not None:
                    self._emit_targeted(frame, site, caller_id, callee_id, kind)
                    return
        elif in_region:
            # Interior of an untracked region: zero engine events.  This
            # is the tracer-side saving of targeted mode — with per-code
            # DISABLE (sys.monitoring) or binary patching the
            # interpreter would not even invoke the hook here.
            self._live_frames.append(frame)
            kinds.append(_REGION_INNER)
            self.suppressed_events += 1
            return
        else:
            # Departure into untracked code: one boundary event opens
            # the region, attributed to the real call site in the
            # tracked caller; everything beneath it is suppressed.
            if self._live_frames:
                top = self._live_frames[-1]
                caller_id = self._function_id(top.f_code)
                parent = frame.f_back
                lasti = parent.f_lasti if parent is top else 0
            else:
                caller_id = ROOT_FUNCTION
                lasti = 0
            callee_id = UNTRACKED_FUNCTION
            kind = _REGION_OPEN
        self._emit_targeted(
            frame,
            self._callsite_id(caller_id, lasti),
            caller_id,
            callee_id,
            kind,
        )

    def _emit_targeted(
        self,
        frame: FrameType,
        callsite: int,
        caller_id: int,
        callee_id: int,
        kind: int,
    ) -> None:
        """Common tail of every event-emitting targeted call path."""
        self._columns.push_call(0, callsite, caller_id, callee_id)
        self._live_frames.append(frame)
        self._frame_kinds.append(kind)
        if self.sample_every:
            self._calls_since_sample += 1
            if self._calls_since_sample >= self.sample_every:
                self._calls_since_sample = 0
                self._record_sample()
        if len(self._columns) >= self._buffer_limit:
            self.flush()

    def _on_return(self, frame: FrameType) -> None:
        if not self._live_frames:
            return
        if self._live_frames[-1] is not frame:
            return  # return of an untracked frame
        self._live_frames.pop()
        if self._frame_kinds:
            if self._frame_kinds.pop() == _REGION_INNER:
                self.suppressed_events += 1
                return
        self._columns.push_return(0)
        if len(self._columns) >= self._buffer_limit:
            self.flush()

    # ------------------------------------------------------------------
    # sampling / decoding
    # ------------------------------------------------------------------
    def sample(self) -> CollectedSample:
        """Record the current context id + ccStack (from traced code)."""
        return self._record_sample()

    def _record_sample(self) -> CollectedSample:
        from ..core.events import SampleEvent

        self.flush()
        self._in_engine = True
        try:
            sample = self.engine.on_sample(SampleEvent(thread=0))
        finally:
            self._in_engine = False
        self.samples.append(sample)
        self.sample_weights.append(self._next_weight())
        return sample

    def _next_weight(self) -> float:
        """The weight of the sample being recorded right now."""
        if not self.wall_time:
            return 1.0
        now = time.perf_counter()
        previous = self._last_sample_time
        self._last_sample_time = now
        return now - previous if previous is not None else 0.0

    def attach_aggregator(
        self,
        aggregator: Any,
        every: int = 64,
        wall_time: Optional[bool] = None,
    ) -> Any:
        """Stream engine-hook samples into a ``CCTAggregator``.

        Installs the engine's continuous-profiling hook
        (:meth:`~repro.core.engine.DacceEngine.install_sample_hook`)
        with a callback that only *records* the sample — the decode and
        CCT fold run batched at the next :meth:`flush` (and at
        :meth:`stop`), with the aggregator's decoder refreshed once per
        drain instead of once per sample.  Deferral is lossless:
        dictionaries are immutable and grow-only, so a decoder built at
        drain time decodes every earlier-epoch sample identically.
        ``wall_time`` overrides the tracer-level weight mode; in call
        mode each sample weighs ``every`` calls, so total CCT weight
        tracks total traced calls.
        """
        use_wall = self.wall_time if wall_time is None else wall_time
        weigher: Optional[Callable[[], float]] = None
        if use_wall:
            last = [time.perf_counter()]

            def weigher() -> float:
                now = time.perf_counter()
                delta = now - last[0]
                last[0] = now
                return delta

        self._cct_aggregator = aggregator
        pending = self._pending_cct

        def deliver(sample: CollectedSample, weight: float) -> None:
            # Hot callback: one list append.  The decode happens in
            # ``_drain_cct_samples`` at the batched flush.
            pending.append((sample, weight))

        return self.engine.install_sample_hook(every, deliver, weigher=weigher)

    def _drain_cct_samples(self) -> None:
        """Decode and fold hook samples collected since the last drain."""
        aggregator = self._cct_aggregator
        if aggregator is None:
            return
        batch = self._pending_cct[:]
        del self._pending_cct[:]
        self._in_engine = True
        try:
            aggregator.decoder = self.engine.decoder()
            for sample, weight in batch:
                aggregator.add_sample(sample, weight)
        finally:
            self._in_engine = False

    def decode(self, sample: CollectedSample) -> CallingContext:
        """Decode a sample back into the full Python call path."""
        self.flush()
        self._in_engine = True
        try:
            return self.engine.decoder().decode(sample)
        finally:
            self._in_engine = False

    def expected_context(self) -> CallingContext:
        """The engine's shadow-stack oracle for the current point."""
        self.flush()
        self._in_engine = True
        try:
            return self.engine.expected_context(0)
        finally:
            self._in_engine = False

    def format_context(self, context: CallingContext) -> str:
        """Render a decoded context with real function names."""
        parts = []
        for step in context.steps:
            info = self._function_names.get(step.function)
            name = info.name if info else "fn%d" % step.function
            if step.count:
                name += "*%d" % (step.count + 1)
            parts.append(name)
        return " -> ".join(parts)

    def name_of(self, function_id: int) -> str:
        """The traced name of a function id, with an ``fnN`` fallback."""
        info = self._function_names.get(function_id)
        return info.name if info is not None else "fn%d" % function_id

    def name_resolver(self) -> Callable[[int], str]:
        """A name resolver for the profiling exporters (`repro.prof`)."""
        from ..prof import default_names

        def resolve(function_id: int) -> str:
            info = self._function_names.get(function_id)
            if info is not None:
                return info.name
            return default_names(function_id)

        return resolve

    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Trace one callable and return its result."""
        with self:
            return fn(*args, **kwargs)

    @property
    def num_functions(self) -> int:
        return self._next_function - 1

    @property
    def num_callsites(self) -> int:
        return self._next_callsite - 1
