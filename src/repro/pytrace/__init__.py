"""DACCE frontend for real Python programs (``sys.setprofile``)."""

from .profile import ContextProfile, ProfileEntry, build_profile, profile_callable
from .stackwalk import contexts_agree, walk_stack
from .tracer import FunctionInfo, PythonDacceTracer, ROOT_FUNCTION

__all__ = [
    "ContextProfile",
    "FunctionInfo",
    "ProfileEntry",
    "PythonDacceTracer",
    "ROOT_FUNCTION",
    "build_profile",
    "contexts_agree",
    "profile_callable",
    "walk_stack",
]

# ``PythonDacceTracer.attach_aggregator`` streams samples into a live
# :class:`repro.prof.CCTAggregator`; import :mod:`repro.prof` directly
# for the CCT, exporters, diffing and the profile server.
