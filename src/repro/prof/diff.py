"""Node-by-node comparison of two calling-context profiles.

``ProfileDiff`` answers the questions a before/after analysis asks —
across a re-encoding pass, a code change, or two production runs:

* which calling contexts are **new** (after only) or **vanished**
  (before only);
* which shared contexts **regressed** (weight grew by more than the
  threshold) or **improved** (shrank by more than it);
* how total and per-node weight shifted.

Both sides are keyed by the rendered frame path, so a diff can compare
any two profiles whose samples decode to the same function universe —
including profiles recorded under different encoding dictionaries,
which is exactly the epoch-merge property of the aggregator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .cct import CCTAggregator, NameResolver
from .export import parse_folded

#: A profile's flattened form: rendered frame path -> self weight.
FlatProfile = Dict[Tuple[str, ...], float]


@dataclass(frozen=True)
class DiffEntry:
    """One calling context's weight on both sides of the diff."""

    stack: Tuple[str, ...]
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> Optional[float]:
        """after/before, or None for new contexts (before == 0)."""
        if self.before == 0:
            return None
        return self.after / self.before

    def to_dict(self) -> Dict[str, object]:
        return {
            "stack": list(self.stack),
            "before": self.before,
            "after": self.after,
            "delta": self.delta,
            "ratio": self.ratio,
        }


@dataclass
class ProfileDiff:
    """The classified comparison of two flattened profiles."""

    before_total: float
    after_total: float
    new: List[DiffEntry] = field(default_factory=list)
    vanished: List[DiffEntry] = field(default_factory=list)
    regressed: List[DiffEntry] = field(default_factory=list)
    improved: List[DiffEntry] = field(default_factory=list)
    unchanged: List[DiffEntry] = field(default_factory=list)

    @property
    def total_delta(self) -> float:
        return self.after_total - self.before_total

    def entries(self) -> List[DiffEntry]:
        return (
            self.new + self.vanished + self.regressed
            + self.improved + self.unchanged
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "before_total": self.before_total,
            "after_total": self.after_total,
            "total_delta": self.total_delta,
            "new": [entry.to_dict() for entry in self.new],
            "vanished": [entry.to_dict() for entry in self.vanished],
            "regressed": [entry.to_dict() for entry in self.regressed],
            "improved": [entry.to_dict() for entry in self.improved],
            "unchanged": len(self.unchanged),
        }

    def render(self, limit: int = 10) -> str:
        """Human-readable summary (the ``dacce profile diff`` output)."""
        lines = [
            "profile diff: total weight %s -> %s (%+g)"
            % (_fmt(self.before_total), _fmt(self.after_total), self.total_delta),
            "  new: %d  vanished: %d  regressed: %d  improved: %d  unchanged: %d"
            % (
                len(self.new),
                len(self.vanished),
                len(self.regressed),
                len(self.improved),
                len(self.unchanged),
            ),
        ]
        for title, entries in (
            ("new contexts", self.new),
            ("vanished contexts", self.vanished),
            ("regressed", self.regressed),
            ("improved", self.improved),
        ):
            if not entries:
                continue
            lines.append("")
            lines.append("%s:" % title)
            for entry in entries[:limit]:
                lines.append(
                    "  %+10g  (%s -> %s)  %s"
                    % (
                        entry.delta,
                        _fmt(entry.before),
                        _fmt(entry.after),
                        ";".join(entry.stack),
                    )
                )
            if len(entries) > limit:
                lines.append("  ... and %d more" % (len(entries) - limit))
        return "\n".join(lines)


def _fmt(weight: float) -> str:
    return str(int(weight)) if weight == int(weight) else "%.3f" % weight


ProfileLike = Union[CCTAggregator, FlatProfile, str]


def flatten(
    profile: ProfileLike, names: Optional[NameResolver] = None
) -> FlatProfile:
    """Normalise a profile to ``{rendered path: self weight}``.

    Accepts an aggregator (flattened under its lock), folded-stack text
    (parsed), or an already-flat mapping.
    """
    if isinstance(profile, CCTAggregator):
        resolve = names or profile.names
        return {
            tuple(resolve(function) for function in path): weight
            for path, weight in profile.leaf_weights().items()
        }
    if isinstance(profile, str):
        return parse_folded(profile)
    return dict(profile)


def diff_profiles(
    before: ProfileLike,
    after: ProfileLike,
    threshold: float = 0.0,
    names: Optional[NameResolver] = None,
) -> ProfileDiff:
    """Compare two profiles node-by-node.

    ``threshold`` is the relative weight change (of the larger side's
    total) below which a shared context counts as unchanged; 0 means
    any delta classifies.
    """
    flat_before = flatten(before, names)
    flat_after = flatten(after, names)
    before_total = sum(flat_before.values())
    after_total = sum(flat_after.values())
    scale = max(before_total, after_total) or 1.0

    result = ProfileDiff(before_total=before_total, after_total=after_total)
    for stack in sorted(set(flat_before) | set(flat_after)):
        entry = DiffEntry(
            stack=stack,
            before=flat_before.get(stack, 0.0),
            after=flat_after.get(stack, 0.0),
        )
        if entry.before == 0.0:
            result.new.append(entry)
        elif entry.after == 0.0:
            result.vanished.append(entry)
        elif abs(entry.delta) / scale > threshold and entry.delta > 0:
            result.regressed.append(entry)
        elif abs(entry.delta) / scale > threshold and entry.delta < 0:
            result.improved.append(entry)
        else:
            result.unchanged.append(entry)

    for bucket in (result.new, result.regressed):
        bucket.sort(key=lambda e: (-e.delta, e.stack))
    for bucket in (result.vanished, result.improved):
        bucket.sort(key=lambda e: (e.delta, e.stack))
    return result
