"""Profile exporters: folded stacks, JSON CCT, top-N hot contexts.

The folded-stack format is the lingua franca of flamegraph tooling
(``flamegraph.pl``, speedscope's "collapsed" importer, inferno): one
line per calling context that received samples, frames root-first
joined with ``;``, a space, then the context's *self* weight::

    main;parse;scan 41
    main;parse;emit 7
    <partial>;scan 3

The total of all line weights therefore equals the total recorded
weight — partial decodes included, because they are filed under the
``<partial>`` pseudo-frame instead of being dropped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .cct import CCT, CCTAggregator, CCTNode, NameResolver, default_names


def _format_weight(weight: float) -> str:
    """Integer rendering when the weight is integral (count mode)."""
    if weight == int(weight):
        return str(int(weight))
    return "%.6f" % weight


def _resolve(
    aggregator_or_cct,
    names: Optional[NameResolver],
) -> Tuple[CCT, NameResolver]:
    if isinstance(aggregator_or_cct, CCTAggregator):
        return (
            aggregator_or_cct.cct,
            names or aggregator_or_cct.names,
        )
    return aggregator_or_cct, names or default_names


def to_folded(
    aggregator_or_cct,
    names: Optional[NameResolver] = None,
) -> str:
    """Render the CCT as folded stacks (flamegraph.pl input).

    Lines are sorted lexicographically by stack so the output is
    deterministic and diff-friendly across runs.
    """
    cct, resolve = _resolve(aggregator_or_cct, names)
    lines: List[Tuple[str, float]] = []
    for path, node in cct.walk():
        if not node.self_samples:
            continue
        stack = ";".join(resolve(function) for function in path)
        lines.append((stack, node.self_weight))
    lines.sort()
    return "\n".join(
        "%s %s" % (stack, _format_weight(weight)) for stack, weight in lines
    )


def parse_folded(text: str) -> Dict[Tuple[str, ...], float]:
    """Parse folded stacks back to ``{frame-tuple: weight}``.

    Used by the diff CLI path and by the CI smoke job to prove the
    exported file round-trips.  Raises :class:`ValueError` on a
    malformed line.
    """
    out: Dict[Tuple[str, ...], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        stack, _, weight = line.rpartition(" ")
        if not stack:
            raise ValueError("folded line %d has no stack: %r" % (lineno, line))
        try:
            value = float(weight)
        except ValueError:
            raise ValueError(
                "folded line %d has a bad weight %r" % (lineno, weight)
            ) from None
        frames = tuple(stack.split(";"))
        out[frames] = out.get(frames, 0.0) + value
    return out


def to_json_dict(
    aggregator: CCTAggregator,
) -> Dict[str, object]:
    """The full profile (tree + counters) as a JSON-ready dict."""
    return aggregator.to_dict()


def top_contexts(
    aggregator_or_cct,
    n: int = 10,
    names: Optional[NameResolver] = None,
    by: str = "self",
) -> List[Dict[str, object]]:
    """The ``n`` hottest contexts, by self weight or total weight."""
    if by not in ("self", "total"):
        raise ValueError("by must be 'self' or 'total', got %r" % by)
    cct, resolve = _resolve(aggregator_or_cct, names)
    rows: List[Tuple[float, Tuple[int, ...], CCTNode]] = []
    for path, node in cct.walk():
        if by == "self":
            if not node.self_samples:
                continue
            weight = node.self_weight
        else:
            weight = node.total_weight()
        rows.append((weight, path, node))
    rows.sort(key=lambda row: (-row[0], row[1]))
    total = cct.total_weight() or 1.0
    return [
        {
            "rank": rank,
            "weight": weight,
            "share": weight / total,
            "samples": node.self_samples if by == "self" else node.total_samples(),
            "stack": [resolve(function) for function in path],
            "path": list(path),
        }
        for rank, (weight, path, node) in enumerate(rows[:n], 1)
    ]


def render_top(
    aggregator_or_cct,
    n: int = 10,
    names: Optional[NameResolver] = None,
    by: str = "self",
) -> str:
    """Human-readable top-N table (the ``dacce profile report`` body)."""
    rows = top_contexts(aggregator_or_cct, n, names, by)
    lines = ["%4s  %10s  %6s  %s" % ("#", "weight", "share", "calling context")]
    for row in rows:
        lines.append(
            "%4d  %10s  %5.1f%%  %s"
            % (
                row["rank"],
                _format_weight(float(row["weight"])),  # type: ignore[arg-type]
                100.0 * float(row["share"]),  # type: ignore[arg-type]
                " -> ".join(row["stack"]),  # type: ignore[arg-type]
            )
        )
    return "\n".join(lines)


def names_from_program(program) -> NameResolver:
    """Name resolver for generated synthetic programs."""
    table = {function.id: function.name for function in program.functions()}

    def resolve(function: int) -> str:
        name = table.get(function)
        return name if name is not None else default_names(function)

    return resolve


def names_from_mapping(mapping: Dict[int, str]) -> NameResolver:
    """Name resolver from a plain ``{id: name}`` mapping (JSON states)."""

    def resolve(function: int) -> str:
        name = mapping.get(function)
        return name if name is not None else default_names(function)

    return resolve
