"""Live profile server: the CCT, the scrape, and the overhead account.

A stdlib-only (``http.server``) endpoint that makes a running engine's
profile observable without stopping it:

====================  =================================================
``GET /``             plain-text index of the routes below
``GET /cct``          the full weighted CCT as nested JSON
``GET /flame``        folded stacks (pipe straight into flamegraph.pl)
``GET /top?n=K``      top-K hot contexts as JSON (``&by=total`` widens)
``GET /metrics``      Prometheus scrape — engine metrics *plus* the
                      ``prof_*`` family the aggregator registers
``GET /overhead``     the profiler's self-overhead account as JSON
``GET /healthz``      liveness (sample/weight totals)
====================  =================================================

The handler only ever *reads*: every aggregator route goes through the
aggregator's lock, engine statistics come from ``stats_snapshot()``,
and the server runs on daemon threads so it never blocks shutdown.
Bind with ``port=0`` to let the OS pick (tests do this).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .cct import CCTAggregator
from .export import to_folded, top_contexts
from .overhead import self_overhead_account

logger = logging.getLogger(__name__)

INDEX_TEXT = """dacce profile server
routes:
  /cct       full weighted calling-context tree (JSON)
  /flame     folded stacks (flamegraph.pl / speedscope input)
  /top?n=K   top-K hot contexts (JSON; &by=total for inclusive weight)
  /metrics   Prometheus exposition (engine + prof_* families)
  /overhead  profiler self-overhead account (JSON)
  /healthz   liveness
"""


class ProfileService:
    """Everything the HTTP handler needs, bundled read-only."""

    def __init__(
        self,
        aggregator: CCTAggregator,
        engine=None,
        telemetry=None,
    ):
        self.aggregator = aggregator
        self.engine = engine
        self.telemetry = telemetry
        if telemetry is not None and getattr(telemetry, "enabled", False):
            aggregator.bind_metrics(telemetry.registry)

    # Each route returns (status, content_type, body).
    def handle(self, path: str, query: Dict[str, list]) -> Tuple[int, str, str]:
        if path in ("/", "/index", "/index.html"):
            return 200, "text/plain; charset=utf-8", INDEX_TEXT
        if path == "/cct":
            return (
                200,
                "application/json",
                json.dumps(self.aggregator.to_dict(), indent=2) + "\n",
            )
        if path == "/flame":
            return (
                200,
                "text/plain; charset=utf-8",
                to_folded(self.aggregator) + "\n",
            )
        if path == "/top":
            try:
                n = int(query.get("n", ["10"])[0])
                by = query.get("by", ["self"])[0]
                rows = top_contexts(self.aggregator, n=n, by=by)
            except ValueError as error:
                return 400, "text/plain; charset=utf-8", "bad query: %s\n" % error
            return 200, "application/json", json.dumps(rows, indent=2) + "\n"
        if path == "/metrics":
            if self.telemetry is None or not getattr(
                self.telemetry, "enabled", False
            ):
                return (
                    503,
                    "text/plain; charset=utf-8",
                    "telemetry disabled on this engine\n",
                )
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                self.telemetry.to_prometheus(),
            )
        if path == "/overhead":
            if self.engine is None:
                return (
                    503,
                    "text/plain; charset=utf-8",
                    "no engine attached; overhead account unavailable\n",
                )
            account = self_overhead_account(self.engine)
            return 200, "application/json", json.dumps(account, indent=2) + "\n"
        if path == "/healthz":
            stats = self.aggregator.stats()
            return 200, "application/json", json.dumps(stats) + "\n"
        return (
            404,
            "application/json",
            json.dumps(
                {
                    "error": "not-found",
                    "path": path,
                    "routes": [
                        "/", "/cct", "/flame", "/top", "/metrics",
                        "/overhead", "/healthz",
                    ],
                },
                indent=2,
            )
            + "\n",
        )


class _ProfileHandler(BaseHTTPRequestHandler):
    service: ProfileService  # injected by ProfileServer

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parsed = urlparse(self.path)
        try:
            status, content_type, body = self.service.handle(
                parsed.path, parse_qs(parsed.query)
            )
        except Exception:
            logger.exception("profile route %s failed", parsed.path)
            status, content_type, body = (
                500,
                "text/plain; charset=utf-8",
                "internal error (see server log)\n",
            )
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        # Live profile documents change between requests; make sure no
        # intermediary serves a stale snapshot.
        self.send_header("Cache-Control", "no-store")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("http %s", format % args)


class ProfileServer:
    """A ThreadingHTTPServer wrapper with background start/stop."""

    def __init__(
        self,
        service: ProfileService,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        handler = type("BoundProfileHandler", (_ProfileHandler,), {
            "service": service,
        })
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def start(self) -> "ProfileServer":
        """Serve on a daemon thread; returns self for chaining."""
        if self._thread is not None:
            raise RuntimeError("profile server already started")
        self._thread = threading.Thread(
            target=self.httpd.serve_forever,
            name="dacce-profile-server",
            daemon=True,
        )
        self._thread.start()
        logger.info("profile server listening on %s", self.url)
        return self

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def serve_profile(
    aggregator: CCTAggregator,
    engine=None,
    telemetry=None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ProfileServer:
    """Convenience: build the service, bind, and start in the background."""
    service = ProfileService(aggregator, engine=engine, telemetry=telemetry)
    return ProfileServer(service, host=host, port=port).start()
