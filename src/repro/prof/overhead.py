"""The profiler's self-overhead account.

A continuous profiler that cannot report its own cost is not honest
enough to leave always-on; the paper's pitch is precisely that DACCE
context collection is cheap enough for production.  This module turns
the engine's existing cycle accounting (:mod:`repro.cost.model`) into a
small report: application cycles vs engine cycles, the per-category
split (id arithmetic, ccStack traffic, indirect dispatch, runtime
handler, re-encoding, sampling), and the overhead ratios Figure 8 is
stated in.  The ``sample`` category is the profiler's own footprint —
CLIENT work, charged separately from the encoding instrumentation.
"""

from __future__ import annotations

from typing import Dict, List

#: Stable category order for rendering (matches docs/PROFILING.md).
CATEGORY_ORDER = (
    "id_update",
    "ccstack",
    "indirect",
    "tcstack",
    "handler",
    "reencode",
    "discovery",
    "sample",
)

CATEGORY_LABELS = {
    "id_update": "id arithmetic",
    "ccstack": "ccStack traffic",
    "indirect": "indirect dispatch",
    "tcstack": "TcStack save/restore",
    "handler": "runtime handler",
    "reencode": "re-encoding passes",
    "discovery": "edge discovery",
    "sample": "profiler sampling",
}


def self_overhead_account(engine) -> Dict[str, object]:
    """Build the self-overhead account from an engine's cost report.

    Shape::

        {"app_cycles": ..., "engine_cycles": ..., "overhead": ...,
         "amortized_overhead": ..., "profiler_cycles": ...,
         "profiler_share": ...,
         "categories": [{"category", "label", "cycles", "share"}, ...]}

    ``share`` is each category's fraction of total engine cycles;
    ``profiler_share`` is the ``sample`` category alone, the cost the
    profiling client adds on top of the encoding instrumentation.
    """
    report = engine.cost.report
    charges = dict(report.charges)
    engine_cycles = report.instrumentation_cycles
    app_cycles = report.baseline_cycles
    profiler_cycles = charges.get("sample", 0.0)

    categories: List[Dict[str, object]] = []
    listed = set()
    for category in CATEGORY_ORDER:
        if category not in charges:
            continue
        listed.add(category)
        categories.append(_category_row(category, charges, engine_cycles))
    for category in sorted(charges):
        if category not in listed:
            categories.append(_category_row(category, charges, engine_cycles))

    return {
        "app_cycles": app_cycles,
        "engine_cycles": engine_cycles,
        "steady_cycles": report.steady_cycles,
        "onetime_cycles": report.onetime_cycles,
        "profiler_cycles": profiler_cycles,
        "overhead": report.overhead,
        "amortized_overhead": report.amortized_overhead(),
        "profiler_share": (
            profiler_cycles / engine_cycles if engine_cycles else 0.0
        ),
        "categories": categories,
    }


def _category_row(
    category: str, charges: Dict[str, float], engine_cycles: float
) -> Dict[str, object]:
    cycles = charges[category]
    return {
        "category": category,
        "label": CATEGORY_LABELS.get(category, category),
        "cycles": cycles,
        "share": cycles / engine_cycles if engine_cycles else 0.0,
    }


def render_overhead(account: Dict[str, object]) -> str:
    """The self-overhead table (``dacce profile report`` footer)."""
    lines = [
        "self-overhead account (abstract cycles):",
        "  application work : %14.0f" % float(account["app_cycles"]),  # type: ignore[arg-type]
        "  engine total     : %14.0f  (%.2f%% raw, %.2f%% amortized)"
        % (
            float(account["engine_cycles"]),  # type: ignore[arg-type]
            100.0 * float(account["overhead"]),  # type: ignore[arg-type]
            100.0 * float(account["amortized_overhead"]),  # type: ignore[arg-type]
        ),
    ]
    for row in account["categories"]:  # type: ignore[union-attr]
        lines.append(
            "    %-22s %14.0f  (%5.1f%% of engine)"
            % (row["label"], float(row["cycles"]), 100.0 * float(row["share"]))
        )
    lines.append(
        "  profiler (sample): %14.0f  (%.1f%% of engine cycles)"
        % (
            float(account["profiler_cycles"]),  # type: ignore[arg-type]
            100.0 * float(account["profiler_share"]),  # type: ignore[arg-type]
        )
    )
    return "\n".join(lines)
