"""Continuous calling-context profiling on top of DACCE sample streams.

The paper's flagship client (Section 6): cheap context ids recorded
continuously, expanded offline (or live) into a weighted Calling
Context Tree.  The subsystem splits into:

* :mod:`repro.prof.cct` — the tree and the epoch-merging aggregator;
* :mod:`repro.prof.export` — folded stacks / JSON / top-N exporters;
* :mod:`repro.prof.diff` — node-by-node profile comparison;
* :mod:`repro.prof.overhead` — the profiler's self-overhead account;
* :mod:`repro.prof.server` — the live stdlib-HTTP profile endpoint.

CLI surface: ``dacce profile {record,report,flame,diff,serve}``.
"""

from .cct import (
    CCT,
    CCTAggregator,
    CCTNode,
    PARTIAL_FUNCTION,
    PARTIAL_NAME,
    ROOT_FUNCTION,
    ROOT_NAME,
    default_names,
)
from .diff import DiffEntry, ProfileDiff, diff_profiles, flatten
from .export import (
    names_from_mapping,
    names_from_program,
    parse_folded,
    render_top,
    to_folded,
    to_json_dict,
    top_contexts,
)
from .overhead import render_overhead, self_overhead_account
from .server import ProfileServer, ProfileService, serve_profile

__all__ = [
    "CCT",
    "CCTAggregator",
    "CCTNode",
    "PARTIAL_FUNCTION",
    "PARTIAL_NAME",
    "ROOT_FUNCTION",
    "ROOT_NAME",
    "default_names",
    "DiffEntry",
    "ProfileDiff",
    "diff_profiles",
    "flatten",
    "names_from_mapping",
    "names_from_program",
    "parse_folded",
    "render_top",
    "to_folded",
    "to_json_dict",
    "top_contexts",
    "render_overhead",
    "self_overhead_account",
    "ProfileServer",
    "ProfileService",
    "serve_profile",
]
