"""Weighted Calling Context Tree aggregation over decoded samples.

The paper's headline application of cheap context ids is *always-on
calling-context profiling* (Section 6): the instrumented process records
``(context_id, gTimeStamp, weight)`` triples continuously, and an
analysis pass expands them into the weighted **Calling Context Tree**
the profiler reports from.  This module is that analysis pass.

The aggregation rule is the *epoch-merge rule*: every sample decodes
against the dictionary of its own ``gTimeStamp``, and the tree is keyed
purely by the **decoded function path** — so the same calling context
observed under two different encoding dictionaries (before and after a
re-encoding pass) folds into one CCT node.  The context-keyed structure
mirrors the value-contexts aggregation of Padhye & Khedker: results are
stored per calling context, and contexts met again (in any epoch) reuse
the node instead of growing the tree.

Samples that only partially decode (damaged logs, dropped dictionaries)
are *not* discarded: their recovered leaf-ward suffix is attached under
a dedicated ``<partial>`` pseudo-node, so the tree's total weight always
equals the total recorded weight and the damage is visible as its own
subtree instead of a silent hole.

Thread safety: a :class:`CCTAggregator` may be fed by one thread while
exporters and the profile server read it from others; all mutation and
traversal happens under the aggregator's internal lock.
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.context import CallingContext, CollectedSample
from ..core.decoder import Decoder
from ..core.errors import DecodingError
from ..core.faults import PartialDecode

#: Sentinel function id for the pseudo-node that collects the decodable
#: suffixes of partially decoded samples.  Negative ids never collide
#: with real function ids (generators and tracers allocate from 0 up).
PARTIAL_FUNCTION = -1

#: Sentinel id of the synthetic tree root (above ``main``).
ROOT_FUNCTION = -2

#: Rendered names of the sentinel nodes.
PARTIAL_NAME = "<partial>"
ROOT_NAME = "<root>"

#: ``names`` callables map a function id to a display name.
NameResolver = Callable[[int], str]


def default_names(function: int) -> str:
    """Fallback display name for a function id."""
    if function == PARTIAL_FUNCTION:
        return PARTIAL_NAME
    if function == ROOT_FUNCTION:
        return ROOT_NAME
    return "fn%d" % function


class CCTNode:
    """One calling context: a path from the root to this node.

    ``self_weight`` / ``self_samples`` count samples whose innermost
    frame landed here; ``total_weight`` (computed) adds every
    descendant's weight — the flamegraph width of the node.
    """

    __slots__ = ("function", "children", "self_weight", "self_samples")

    def __init__(self, function: int):
        self.function = function
        self.children: Dict[int, "CCTNode"] = {}
        self.self_weight = 0.0
        self.self_samples = 0

    def child(self, function: int) -> "CCTNode":
        node = self.children.get(function)
        if node is None:
            node = CCTNode(function)
            self.children[function] = node
        return node

    def total_weight(self) -> float:
        total = self.self_weight
        for node in self.children.values():
            total += node.total_weight()
        return total

    def total_samples(self) -> int:
        total = self.self_samples
        for node in self.children.values():
            total += node.total_samples()
        return total

    def num_nodes(self) -> int:
        return 1 + sum(node.num_nodes() for node in self.children.values())

    def to_dict(self, names: NameResolver = default_names) -> Dict[str, object]:
        """Nested JSON form (the ``/cct`` endpoint and JSON export)."""
        return {
            "function": self.function,
            "name": names(self.function),
            "self_weight": self.self_weight,
            "self_samples": self.self_samples,
            "total_weight": self.total_weight(),
            "children": [
                child.to_dict(names)
                for child in sorted(
                    self.children.values(),
                    key=lambda n: -n.total_weight(),
                )
            ],
        }


class CCT:
    """A weighted calling context tree with a synthetic root.

    Insertion is by *expanded* function path (compressed recursion
    counts expanded, exactly :meth:`CallingContext.functions`), so two
    samples of the same logical context always land on the same node
    regardless of the encoding epoch or ccStack compression state they
    were recorded under.
    """

    def __init__(self) -> None:
        self.root = CCTNode(ROOT_FUNCTION)

    # ------------------------------------------------------------------
    def insert(self, path: Sequence[int], weight: float = 1.0) -> CCTNode:
        """Add one sample along ``path``; returns the leaf node."""
        node = self.root
        for function in path:
            node = node.child(function)
        node.self_weight += weight
        node.self_samples += 1
        return node

    def insert_partial(self, path: Sequence[int], weight: float = 1.0) -> CCTNode:
        """Add a partially decoded sample under the ``<partial>`` node."""
        node = self.root.child(PARTIAL_FUNCTION)
        for function in path:
            node = node.child(function)
        node.self_weight += weight
        node.self_samples += 1
        return node

    # ------------------------------------------------------------------
    @property
    def partial_node(self) -> Optional[CCTNode]:
        return self.root.children.get(PARTIAL_FUNCTION)

    def partial_weight(self) -> float:
        """Total weight filed under ``<partial>`` (0.0 on a clean log)."""
        node = self.partial_node
        return node.total_weight() if node is not None else 0.0

    def total_weight(self) -> float:
        return self.root.total_weight()

    def total_samples(self) -> int:
        return self.root.total_samples()

    def num_nodes(self) -> int:
        """Number of context nodes (the synthetic root excluded)."""
        return self.root.num_nodes() - 1

    def max_depth(self) -> int:
        def depth(node: CCTNode) -> int:
            if not node.children:
                return 0
            return 1 + max(depth(child) for child in node.children.values())

        return depth(self.root)

    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Tuple[Tuple[int, ...], CCTNode]]:
        """Yield ``(path, node)`` pairs depth-first (root excluded)."""
        stack: List[Tuple[Tuple[int, ...], CCTNode]] = [
            ((), self.root)
        ]
        while stack:
            path, node = stack.pop()
            if node is not self.root:
                yield path, node
            for child in node.children.values():
                stack.append((path + (child.function,), child))

    def leaf_weights(self) -> Dict[Tuple[int, ...], float]:
        """``{path: self_weight}`` for every node that received samples."""
        return {
            path: node.self_weight
            for path, node in self.walk()
            if node.self_samples
        }

    def to_dict(self, names: NameResolver = default_names) -> Dict[str, object]:
        return self.root.to_dict(names)


#: One decode result the aggregator can ingest directly.
DecodedSample = Union[CallingContext, PartialDecode]


class CCTAggregator:
    """Incrementally aggregate decoded samples into a weighted CCT.

    Three ingestion paths, all converging on the same tree:

    * :meth:`add_sample` — decode one :class:`CollectedSample` through
      the attached decoder (best-effort: partial decodes are kept).
      This is the live path the engine's sampling hook drives.
    * :meth:`add_decoded` — ingest an already decoded
      :class:`CallingContext` / :class:`PartialDecode`.
    * :meth:`aggregate_log` — batch path: shard a recorded log through
      :func:`~repro.core.parallel.decode_log_parallel` (worker-local
      :class:`~repro.core.decoder.DecodeCache` memoisation) and fold
      the results in record order.
    """

    def __init__(
        self,
        decoder: Optional[Decoder] = None,
        names: NameResolver = default_names,
    ):
        self.cct = CCT()
        self.decoder = decoder
        self.names = names
        self.samples_total = 0
        self.samples_partial = 0
        self.weight_total = 0.0
        self.weight_partial = 0.0
        #: Epochs (gTimeStamps) observed across ingested samples — the
        #: merge evidence the profile report surfaces.
        self.epochs_seen: Dict[int, int] = {}
        self.decode_batches = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_engine(cls, engine, names: NameResolver = default_names) -> "CCTAggregator":
        """An aggregator decoding through the engine's shared cache."""
        return cls(decoder=engine.decoder(), names=names)

    @classmethod
    def aggregate_log(
        cls,
        state_path: str,
        samples: Sequence[CollectedSample],
        jobs: int = 1,
        weights: Optional[Sequence[float]] = None,
        names: NameResolver = default_names,
        best_effort_state: bool = False,
        stats: Optional[dict] = None,
    ) -> "CCTAggregator":
        """Batch-aggregate a recorded log against an exported state file.

        Decoding runs through :func:`decode_log_parallel` — record-range
        sharding, per-worker memoisation — always in best-effort mode,
        so damaged samples land under ``<partial>`` instead of aborting
        the profile.
        """
        from ..core.parallel import decode_log_parallel

        aggregator = cls(names=names)
        results = decode_log_parallel(
            state_path,
            samples,
            jobs=jobs,
            best_effort=True,
            best_effort_state=best_effort_state,
            stats=stats,
        )
        aggregator.extend_decoded(
            results, weights, timestamps=[s.timestamp for s in samples]
        )
        aggregator.decode_batches += 1
        return aggregator

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add_sample(self, sample: CollectedSample, weight: float = 1.0) -> None:
        """Decode one sample (best-effort) and fold it into the tree."""
        decoder = self.decoder
        if decoder is None:
            raise DecodingError(
                "CCTAggregator has no decoder; use add_decoded or "
                "aggregate_log"
            )
        result = decoder.decode_best_effort(sample)
        self.add_decoded(result, weight, timestamp=sample.timestamp)

    def add_samples(
        self,
        samples: Iterable[CollectedSample],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        for index, sample in enumerate(samples):
            weight = weights[index] if weights is not None else 1.0
            self.add_sample(sample, weight)

    def add_decoded(
        self,
        result: DecodedSample,
        weight: float = 1.0,
        timestamp: Optional[int] = None,
    ) -> None:
        """Fold one decode result into the tree (epoch-merge rule)."""
        if isinstance(result, PartialDecode):
            context = result.context
            partial = not result.complete
        else:
            context = result
            partial = False
        path = context.functions()
        with self._lock:
            self.samples_total += 1
            self.weight_total += weight
            if timestamp is not None:
                self.epochs_seen[timestamp] = (
                    self.epochs_seen.get(timestamp, 0) + 1
                )
            if partial:
                self.samples_partial += 1
                self.weight_partial += weight
                self.cct.insert_partial(path, weight)
            else:
                self.cct.insert(path, weight)

    def extend_decoded(
        self,
        results: Iterable[DecodedSample],
        weights: Optional[Sequence[float]] = None,
        timestamps: Optional[Sequence[int]] = None,
    ) -> None:
        for index, result in enumerate(results):
            self.add_decoded(
                result,
                weights[index] if weights is not None else 1.0,
                timestamp=(
                    timestamps[index] if timestamps is not None else None
                ),
            )

    # ------------------------------------------------------------------
    # consistent read-side snapshots (safe while ingestion runs)
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "samples": self.samples_total,
                "samples_partial": self.samples_partial,
                "weight": self.weight_total,
                "weight_partial": self.weight_partial,
                "nodes": self.cct.num_nodes(),
                "max_depth": self.cct.max_depth(),
                "epochs": len(self.epochs_seen),
                "decode_batches": self.decode_batches,
            }

    def leaf_weights(self) -> Dict[Tuple[int, ...], float]:
        with self._lock:
            return self.cct.leaf_weights()

    def to_dict(self) -> Dict[str, object]:
        """The full tree as nested JSON plus the aggregate counters."""
        with self._lock:
            return {
                "samples": self.samples_total,
                "samples_partial": self.samples_partial,
                "weight": self.weight_total,
                "weight_partial": self.weight_partial,
                "epochs": dict(self.epochs_seen),
                "root": self.cct.to_dict(self.names),
            }

    def run_locked(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` under the aggregator lock (exporter plumbing)."""
        with self._lock:
            return fn()

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def bind_metrics(self, registry) -> None:
        """Register ``prof_*`` pull-mode instruments on a registry."""
        samples = registry.counter(
            "prof_samples_total",
            "Profile samples aggregated into the CCT, by decode outcome.",
            labelnames=("result",),
        )
        weight = registry.counter(
            "prof_weight_total",
            "Aggregated profile weight, by decode outcome.",
            labelnames=("result",),
        )
        shape = registry.gauge(
            "prof_cct",
            "Calling-context-tree shape (nodes, depth, epochs).",
            labelnames=("property",),
        )

        def collect() -> None:
            snapshot = self.stats()
            complete = int(snapshot["samples"]) - int(
                snapshot["samples_partial"]
            )
            samples.set_total(complete, "complete")
            samples.set_total(snapshot["samples_partial"], "partial")
            weight.set_total(
                float(snapshot["weight"]) - float(snapshot["weight_partial"]),
                "complete",
            )
            weight.set_total(snapshot["weight_partial"], "partial")
            shape.set_labeled(snapshot["nodes"], "nodes")
            shape.set_labeled(snapshot["max_depth"], "max_depth")
            shape.set_labeled(snapshot["epochs"], "epochs")
            shape.set_labeled(snapshot["decode_batches"], "decode_batches")

        registry.register_collector(collect)
