"""The paper's Issue 5 made runnable: a *global* context identifier.

Section 2.2, Issue 5: PCCE declares the context identifier as a global
variable; in a multi-threaded program all threads then add and subtract
their encodings on the same id, producing "a meaningless or misleading
encoded path value".  DACCE's answer is TLS — one id (and ccStack) per
thread (Section 5.3).

:class:`GlobalIdEngine` deliberately re-creates the broken design: it is
the DACCE engine with every thread reading and writing one shared id
cell (each event performs a read-modify-write on the global, and frame
restores write back whatever the thread saw at call time — exactly the
interleaving corruption the paper describes).  With one thread it
behaves identically to :class:`~repro.core.engine.DacceEngine`; with
several, decoded contexts go wrong, which the Issue 5 integration test
demonstrates and quantifies.
"""

from __future__ import annotations

from typing import Optional

from ..core.engine import DacceConfig, DacceEngine
from ..core.events import (
    CallEvent,
    ReturnEvent,
    SampleEvent,
    ThreadStartEvent,
)
from ..cost.model import CostModel


class GlobalIdEngine(DacceEngine):
    """DACCE with a single shared context identifier (broken on purpose)."""

    def __init__(
        self,
        root: int = 0,
        config: Optional[DacceConfig] = None,
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(root=root, config=config, cost_model=cost_model)
        self._global_id = 0

    # Each handler performs the racy read-modify-write: load the global
    # into the thread's view, run the instrumentation, store it back.
    def _load_global(self, thread: int) -> None:
        state = self._threads.get(thread)
        if state is not None:
            state.id_value = self._global_id

    def _store_global(self, thread: int) -> None:
        state = self._threads.get(thread)
        if state is not None:
            self._global_id = state.id_value

    def on_call(self, event: CallEvent) -> None:
        self._load_global(event.thread)
        super().on_call(event)
        self._store_global(event.thread)

    def on_return(self, event: ReturnEvent) -> None:
        self._load_global(event.thread)
        super().on_return(event)
        self._store_global(event.thread)

    def on_sample(self, event: SampleEvent):
        self._load_global(event.thread)
        return super().on_sample(event)

    def on_thread_start(self, event: ThreadStartEvent) -> None:
        super().on_thread_start(event)
        # The new thread immediately clobbers the shared id with its own
        # initial value — as a global-id design would.
        self._store_global(event.thread)
