"""Calling-context-tree baseline (Ammons/Ball/Larus; Section 7).

Maintains the program's current position in a calling context tree: every
call looks up (or creates) the child node for its call site and moves the
cursor down; every return moves it up.  Identifying the current context
is then O(1) — the cursor's node id — but *every call* pays a lookup,
which is why the related work reports 2-4x slowdowns for CCT-based
profiling.  Included to reproduce the paper's positioning of encodings
versus CCTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.context import CallingContext, ContextStep
from ..core.errors import TraceError
from ..core.events import (
    CallEvent,
    CallKind,
    CallSiteId,
    Event,
    FunctionId,
    LibraryLoadEvent,
    ReturnEvent,
    SampleEvent,
    ThreadExitEvent,
    ThreadId,
    ThreadStartEvent,
)
from ..cost.model import CostModel


@dataclass
class CctNode:
    """One tree node: a (call site, function) pair under a parent."""

    id: int
    function: FunctionId
    callsite: Optional[CallSiteId]
    parent: Optional["CctNode"]
    children: Dict[Tuple[CallSiteId, FunctionId], "CctNode"] = field(
        default_factory=dict
    )
    visits: int = 0


@dataclass
class CctStats:
    calls: int = 0
    returns: int = 0
    samples: int = 0
    nodes_created: int = 0
    lookups: int = 0


class CctEngine:
    """Tracks the current CCT position per thread.

    Each thread keeps a stack of CCT nodes mirroring its machine frames;
    a tail call *replaces* the top of that stack (the new node still hangs
    off the tail-calling node in the tree — the logical context includes
    it — but a single return unwinds the whole chain).
    """

    def __init__(self, root: FunctionId = 0, cost_model: Optional[CostModel] = None):
        self.cost = cost_model or CostModel()
        self.stats = CctStats()
        self._next_id = 0
        self._nodes: List[CctNode] = []
        self.root = self._new_node(root, None, None)
        self._frames: Dict[ThreadId, List[CctNode]] = {0: [self.root]}
        self.sampled_nodes: List[int] = []

    def _new_node(
        self,
        function: FunctionId,
        callsite: Optional[CallSiteId],
        parent: Optional[CctNode],
    ) -> CctNode:
        node = CctNode(self._next_id, function, callsite, parent)
        self._next_id += 1
        self._nodes.append(node)
        self.stats.nodes_created += 1
        return node

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        if isinstance(event, CallEvent):
            self._on_call(event)
        elif isinstance(event, ReturnEvent):
            self._on_return(event)
        elif isinstance(event, SampleEvent):
            self.stats.samples += 1
            self.sampled_nodes.append(self._stack(event.thread)[-1].id)
        elif isinstance(event, ThreadStartEvent):
            entry = self._new_node(event.entry, None, self.root)
            self._frames[event.thread] = [entry]
        elif isinstance(event, ThreadExitEvent):
            del self._frames[event.thread]
        elif isinstance(event, LibraryLoadEvent):
            pass
        else:
            raise TraceError("unknown event %r" % (event,))

    def run(self, events) -> None:
        for event in events:
            self.on_event(event)

    # ------------------------------------------------------------------
    def _stack(self, thread: ThreadId) -> List[CctNode]:
        try:
            return self._frames[thread]
        except KeyError:
            raise TraceError("unknown thread %d" % thread) from None

    def _on_call(self, event: CallEvent) -> None:
        self.stats.calls += 1
        self.stats.lookups += 1
        self.cost.charge_call_baseline()
        self.cost.charge_cct_step()
        stack = self._stack(event.thread)
        cursor = stack[-1]
        key = (event.callsite, event.callee)
        child = cursor.children.get(key)
        if child is None:
            child = self._new_node(event.callee, event.callsite, cursor)
            cursor.children[key] = child
        child.visits += 1
        if event.kind is CallKind.TAIL:
            stack[-1] = child
        else:
            stack.append(child)

    def _on_return(self, event: ReturnEvent) -> None:
        self.stats.returns += 1
        stack = self._stack(event.thread)
        if len(stack) <= 1:
            raise TraceError("return from the CCT root")
        stack.pop()

    # ------------------------------------------------------------------
    def current_context(self, thread: ThreadId = 0) -> CallingContext:
        return self.context_of(self._stack(thread)[-1].id)

    def context_of(self, node_id: int) -> CallingContext:
        """Reconstruct the full context of a recorded node id."""
        if node_id < 0 or node_id >= len(self._nodes):
            raise TraceError("unknown CCT node %d" % node_id)
        node: Optional[CctNode] = self._nodes[node_id]
        steps: List[ContextStep] = []
        while node is not None:
            steps.append(ContextStep(node.function, node.callsite))
            node = node.parent
        return CallingContext(tuple(reversed(steps)))

    @property
    def num_nodes(self) -> int:
        return self._next_id
