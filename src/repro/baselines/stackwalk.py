"""Stack-walking baseline (Section 7, Related Work).

The straightforward way to capture a calling context: walk the frame
chain at every point of interest.  Valgrind and HPCToolkit do this; the
paper dismisses it as too expensive when contexts are needed frequently
— the cost of *one* query is proportional to the current stack depth,
whereas encoded approaches pay O(1) per query.

The baseline keeps a per-thread shadow stack (free — the program
maintains it anyway) and charges the walk cost only when a sample fires,
making it the favourable-to-stackwalk comparison: tools that walk at
every memory access (race detectors) pay orders of magnitude more, which
the walk-per-event mode models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.context import CallingContext, ContextStep
from ..core.errors import TraceError
from ..core.events import (
    CallEvent,
    CallKind,
    Event,
    LibraryLoadEvent,
    ReturnEvent,
    SampleEvent,
    ThreadExitEvent,
    ThreadId,
    ThreadStartEvent,
)
from ..cost.model import CostModel


@dataclass
class StackWalkStats:
    calls: int = 0
    returns: int = 0
    samples: int = 0
    walked_frames: int = 0


class StackWalkEngine:
    """Captures contexts by walking the (shadow) stack at sample points."""

    def __init__(
        self,
        root: int = 0,
        cost_model: Optional[CostModel] = None,
        walk_every_call: bool = False,
    ):
        self.cost = cost_model or CostModel()
        self.stats = StackWalkStats()
        #: When set, a walk is charged at *every* call — the race-detector
        #: usage pattern the paper's introduction motivates.
        self.walk_every_call = walk_every_call
        self._stacks: Dict[ThreadId, List[Tuple[int, Optional[int]]]] = {
            0: [(root, None)]
        }
        self.contexts: List[CallingContext] = []

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        if isinstance(event, CallEvent):
            self.stats.calls += 1
            self.cost.charge_call_baseline()
            stack = self._stack(event.thread)
            if event.kind is CallKind.TAIL:
                stack[-1] = (event.callee, event.callsite)
            else:
                stack.append((event.callee, event.callsite))
            if self.walk_every_call:
                self._walk(event.thread, record=False)
        elif isinstance(event, ReturnEvent):
            self.stats.returns += 1
            stack = self._stack(event.thread)
            if len(stack) <= 1:
                raise TraceError("return from the bottom frame")
            stack.pop()
        elif isinstance(event, SampleEvent):
            self.stats.samples += 1
            self._walk(event.thread, record=True)
        elif isinstance(event, ThreadStartEvent):
            self._stacks[event.thread] = [(event.entry, None)]
        elif isinstance(event, ThreadExitEvent):
            del self._stacks[event.thread]
        elif isinstance(event, LibraryLoadEvent):
            pass
        else:
            raise TraceError("unknown event %r" % (event,))

    def run(self, events) -> None:
        for event in events:
            self.on_event(event)

    # ------------------------------------------------------------------
    def _stack(self, thread: ThreadId) -> List[Tuple[int, Optional[int]]]:
        try:
            return self._stacks[thread]
        except KeyError:
            raise TraceError("unknown thread %d" % thread) from None

    def _walk(self, thread: ThreadId, record: bool) -> CallingContext:
        stack = self._stack(thread)
        self.cost.charge_stack_walk(len(stack))
        self.stats.walked_frames += len(stack)
        context = CallingContext(
            tuple(ContextStep(fn, cs) for fn, cs in stack)
        )
        if record:
            self.contexts.append(context)
        return context

    def current_context(self, thread: ThreadId = 0) -> CallingContext:
        """The exact current context (used as the validation oracle)."""
        stack = self._stack(thread)
        return CallingContext(tuple(ContextStep(fn, cs) for fn, cs in stack))
