"""Probabilistic Calling Context baseline (Bond & McKinley, OOPSLA'07).

PCC maintains a hash of the current context: at every call the per-thread
value is updated as ``V' = 3 * V + cs`` (and restored on return).  The
identifier is cheap and *probabilistically* unique, but it cannot be
decoded back into a call path without extra machinery — the deficiency
the DACCE paper contrasts against (Section 7).  The engine records
collision statistics so the probabilistic nature is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.context import CallingContext, ContextStep
from ..core.errors import TraceError
from ..core.events import (
    CallEvent,
    CallKind,
    Event,
    LibraryLoadEvent,
    ReturnEvent,
    SampleEvent,
    ThreadExitEvent,
    ThreadId,
    ThreadStartEvent,
)
from ..cost.model import CostModel

_MASK_64 = (1 << 64) - 1


@dataclass
class PccStats:
    calls: int = 0
    returns: int = 0
    samples: int = 0
    distinct_values: int = 0
    distinct_contexts: int = 0
    collisions: int = 0


class PccEngine:
    """Bond-McKinley probabilistic context hashing over the event stream."""

    def __init__(self, root: int = 0, cost_model: Optional[CostModel] = None):
        self.cost = cost_model or CostModel()
        self.stats = PccStats()
        #: Per-thread (value, shadow stack of (value-before, fn, cs)).
        self._values: Dict[ThreadId, int] = {0: 0}
        self._stacks: Dict[ThreadId, List[Tuple[int, int, Optional[int]]]] = {
            0: [(0, root, None)]
        }
        self.sampled_values: List[int] = []
        #: value -> set of distinct context signatures seen under it;
        #: more than one signature per value is a collision.
        self._value_contexts: Dict[int, Set[Tuple]] = {}

    # ------------------------------------------------------------------
    def on_event(self, event: Event) -> None:
        if isinstance(event, CallEvent):
            self._on_call(event)
        elif isinstance(event, ReturnEvent):
            self._on_return(event)
        elif isinstance(event, SampleEvent):
            self._on_sample(event)
        elif isinstance(event, ThreadStartEvent):
            self._values[event.thread] = 0
            self._stacks[event.thread] = [(0, event.entry, None)]
        elif isinstance(event, ThreadExitEvent):
            del self._values[event.thread]
            del self._stacks[event.thread]
        elif isinstance(event, LibraryLoadEvent):
            pass
        else:
            raise TraceError("unknown event %r" % (event,))

    def run(self, events) -> None:
        for event in events:
            self.on_event(event)

    # ------------------------------------------------------------------
    def _on_call(self, event: CallEvent) -> None:
        self.stats.calls += 1
        self.cost.charge_call_baseline()
        self.cost.charge_pcc_hash()
        value = self._values[event.thread]
        new_value = (3 * value + event.callsite) & _MASK_64
        stack = self._stacks[event.thread]
        if event.kind is CallKind.TAIL:
            restore = stack[-1][0]
            stack[-1] = (restore, event.callee, event.callsite)
        else:
            stack.append((value, event.callee, event.callsite))
        self._values[event.thread] = new_value

    def _on_return(self, event: ReturnEvent) -> None:
        self.stats.returns += 1
        stack = self._stacks[event.thread]
        if len(stack) <= 1:
            raise TraceError("return from the bottom frame")
        restore, _fn, _cs = stack.pop()
        self._values[event.thread] = restore

    def _on_sample(self, event: SampleEvent) -> None:
        self.stats.samples += 1
        value = self._values[event.thread]
        self.sampled_values.append(value)
        signature = tuple(
            (fn, cs) for _v, fn, cs in self._stacks[event.thread]
        )
        contexts = self._value_contexts.setdefault(value, set())
        if signature not in contexts:
            if contexts:
                self.stats.collisions += 1
            contexts.add(signature)

    # ------------------------------------------------------------------
    def current_context(self, thread: ThreadId = 0) -> CallingContext:
        """Oracle context (PCC itself cannot decode values)."""
        return CallingContext(
            tuple(
                ContextStep(fn, cs) for _v, fn, cs in self._stacks[thread]
            )
        )

    def finalize_stats(self) -> PccStats:
        self.stats.distinct_values = len(self._value_contexts)
        self.stats.distinct_contexts = sum(
            len(contexts) for contexts in self._value_contexts.values()
        )
        return self.stats
