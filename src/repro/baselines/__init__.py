"""Baseline context-identification approaches the paper compares against."""

from .cct import CctEngine, CctNode, CctStats
from .globalid import GlobalIdEngine
from .pcc import PccEngine, PccStats
from .pcce import (
    PcceEngine,
    PcceStaticResult,
    build_static_graph,
    profile_edge_frequencies,
)
from .stackwalk import StackWalkEngine, StackWalkStats

__all__ = [
    "CctEngine",
    "CctNode",
    "CctStats",
    "GlobalIdEngine",
    "PccEngine",
    "PccStats",
    "PcceEngine",
    "PcceStaticResult",
    "StackWalkEngine",
    "StackWalkStats",
    "build_static_graph",
    "profile_edge_frequencies",
]
