"""PCCE baseline — Precise Calling Context Encoding (Sumner et al., ICSE'10).

PCCE encodes the *complete static* call graph once, offline.  Following
Section 6.1 of the DACCE paper, the baseline is given "a full potential of
profiling": a Pin-style profiling run over the same input provides exact
edge frequencies, which PCCE uses to (a) order in-edges so hot edges get
encoding 0 and (b) delete never-invoked edges when the 64-bit encoding
space overflows (the Table 1 fix for 400.perlbench and 403.gcc).

What PCCE structurally cannot do — and what this baseline therefore
reproduces as measurable deficiencies:

* its call graph contains every points-to target of every indirect call
  (false positives inflate nodes/edges/maxID, Issue 1),
* back edges are chosen by static insertion order, so never-executed
  edges can force *hot* edges to become back edges — the cause of PCCE's
  extra ccStack traffic on 400.perlbench/483.xalancbmk (Section 6.4),
* indirect dispatch is always an inline comparison chain over the full
  points-to set (no adaptive hash table — the x264 effect),
* functions of lazily loaded libraries are invisible: calls into them
  can only be saved raw on the ccStack, and such samples cannot be
  decoded (Issue 2),
* there is no re-encoding: the dictionary has a single timestamp.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.adaptive import classify_back_edges
from ..core.callgraph import CallEdge, CallGraph
from ..core.encoder import Encoder, frequency_order
from ..core.engine import CompressionMode, DacceConfig, DacceEngine
from ..core.errors import EncodingError
from ..core.events import CallEvent, CallKind, CallSiteId, FunctionId
from ..cost.model import CostModel
from ..program.model import Program
from ..program.trace import TraceExecutor, WorkloadSpec

EdgeKey = Tuple[CallSiteId, FunctionId]


def profile_edge_frequencies(
    program: Program, spec: WorkloadSpec
) -> Dict[EdgeKey, int]:
    """A Pin-style offline profiling run: exact dynamic edge frequencies.

    The paper grants PCCE profiles collected "with the same input as in
    real runs", i.e. this uses the *same* workload spec (and seed) the
    measured run will use.
    """
    frequencies: Dict[EdgeKey, int] = {}
    executor = TraceExecutor(program, spec)
    for event in executor.events():
        if isinstance(event, CallEvent):
            key = (event.callsite, event.callee)
            frequencies[key] = frequencies.get(key, 0) + 1
    return frequencies


class PcceStaticResult:
    """Output of the offline PCCE encoding phase (feeds Table 1)."""

    def __init__(
        self,
        graph: CallGraph,
        deleted_edges: int,
        overflowed: bool,
        max_id_before_fix: int,
        static_nodes: int,
        static_edges: int,
    ):
        self.graph = graph
        #: Never-invoked edges removed to squeeze maxID under 64 bits.
        self.deleted_edges = deleted_edges
        #: True when the *unfixed* encoding exceeded the id width —
        #: reported as "overflow" in Table 1.
        self.overflowed = overflowed
        self.max_id_before_fix = max_id_before_fix
        #: Size of the complete static graph before any overflow pruning
        #: (the paper's PCCE Nodes/Edges columns).
        self.static_nodes = static_nodes
        self.static_edges = static_edges


def build_static_graph(
    program: Program,
    profile: Optional[Dict[EdgeKey, int]] = None,
    id_bits: int = 64,
) -> PcceStaticResult:
    """Construct and, if needed, profile-prune PCCE's static call graph.

    Edges are inserted in static program order, so back-edge
    classification is frequency-blind — exactly the behaviour that lets
    cold false-positive edges push hot edges into the back-edge set.
    """
    profile = profile or {}
    hidden = set()
    for library in program.libraries.values():
        if library.load_lazily:
            hidden.update(library.functions)
    graph = CallGraph(program.main)
    for function in program.functions():
        if function.id not in hidden:
            graph.add_node(function.id)
    # Binary/source layout order is uncorrelated with dynamic hotness;
    # a deterministic hash shuffle models that, so the DFS back-edge
    # classification below is frequency-blind — letting never-executed
    # edges push *hot* edges into the back-edge set, the root cause of
    # PCCE's extra ccStack traffic on perlbench/xalancbmk (Section 6.4).
    static = sorted(
        program.static_edges(),
        key=lambda item: ((item[2] * 2654435761) ^ item[1]) & 0xFFFFFFFF,
    )
    for caller, callee, callsite, kind in static:
        edge = graph.add_edge(caller, callee, callsite, kind=kind, classify=False)
        edge.invocations = profile.get((callsite, callee), 0)
    # Frequency-blind classification: within each cycle the trapped edge
    # is arbitrary with respect to hotness (static tools pick by program
    # order, which is uncorrelated with dynamic frequency).
    classify_back_edges(graph, priority="random", seed=0x5CCE)

    encoder = Encoder(order_policy=frequency_order, id_bits=id_bits)
    dictionary = encoder.encode(graph)
    max_id_before_fix = dictionary.max_id
    overflowed = dictionary.overflowed
    static_nodes = graph.num_nodes
    static_edge_count = graph.num_edges
    deleted = 0
    if overflowed and profile:
        # The paper's fix: "some edges that are never invoked in real
        # runs (according to the profiled data) are deleted".
        pruned = CallGraph(program.main)
        for function in program.functions():
            if function.id not in hidden:
                pruned.add_node(function.id)
        for edge in graph.edges():
            if edge.invocations > 0:
                new = pruned.add_edge(
                    edge.caller,
                    edge.callee,
                    edge.callsite,
                    kind=edge.kind,
                    classify=False,
                )
                new.invocations = edge.invocations
            else:
                deleted += 1
        classify_back_edges(pruned, priority="random", seed=0x5CCE)
        graph = pruned
    return PcceStaticResult(
        graph,
        deleted_edges=deleted,
        overflowed=overflowed,
        max_id_before_fix=max_id_before_fix,
        static_nodes=static_nodes,
        static_edges=static_edge_count,
    )


class PcceEngine(DacceEngine):
    """Runtime for statically encoded programs.

    Reuses the DACCE runtime machinery (TLS ids, ccStack, frames, tail
    chains) with static-encoding semantics: a fixed dictionary, no
    runtime handler, no re-encoding, no recursion compression, and
    inline-chain-only indirect dispatch over the full points-to sets.
    """

    def __init__(
        self,
        program: Program,
        profile: Optional[Dict[EdgeKey, int]] = None,
        cost_model: Optional[CostModel] = None,
        id_bits: int = 64,
    ):
        static = build_static_graph(program, profile, id_bits=id_bits)
        self.static_result = static
        config = DacceConfig(
            id_bits=id_bits,
            compression=CompressionMode.NEVER,
            max_reencodings=0,
            reclassify_back_edges=False,
            frequency_ordering=True,
            hash_threshold=1 << 60,  # inline chains only
        )
        super().__init__(
            config=config,
            cost_model=cost_model,
            graph=static.graph,
            initial_order_policy=frequency_order,
        )
        #: Dynamic calls over edges absent from the static encoding
        #: (deleted edges, dlopen-ed libraries): PCCE has no encoding for
        #: them; the simulation saves them raw on the ccStack, and the
        #: resulting samples are *not decodable* — a deficiency the paper
        #: calls out, countable via ``stats.unknown_edge_calls``.
        self.unknown_edge_calls = 0
        self._patch_static_indirect_sites(profile or {})

    # -- static patching -------------------------------------------------
    def _patch_static_indirect_sites(self, profile: Dict[EdgeKey, int]) -> None:
        """Install inline chains over every points-to target, hot first."""
        by_site: Dict[CallSiteId, list] = {}
        for edge in self.graph.edges():
            if edge.kind is CallKind.INDIRECT and not edge.is_back:
                by_site.setdefault(edge.callsite, []).append(edge)
        for callsite, edges in by_site.items():
            ordered = sorted(
                edges,
                key=lambda e: -profile.get((e.callsite, e.callee), 0),
            )
            self.indirect.site(callsite).patch(
                [e.callee for e in ordered],
                hash_threshold=self.config.hash_threshold,
            )

    # -- hook overrides ----------------------------------------------------
    def _runtime_handler(self, event: CallEvent) -> CallEdge:
        """PCCE has no runtime handler.

        A call over an edge the static encoding does not know (deleted
        during the overflow fix, or inside a dynamically loaded library)
        is recorded in the runtime graph for bookkeeping but remains
        unencoded forever — and costs nothing extra beyond its ccStack
        save, since there is no patching machinery to invoke.
        """
        self.unknown_edge_calls += 1
        return self.graph.add_edge(
            event.caller, event.callee, event.callsite, kind=event.kind
        )

    def _charge_discovery_push(self) -> None:
        """Real PCCE leaves unknown call sites uninstrumented — no cost.

        The simulation still performs the ccStack save so that decoding
        stays well-defined, but charges nothing: PCCE pays no overhead
        for the calls whose contexts it simply cannot capture.
        """

    def _charge_discovery_pop(self) -> None:
        pass

    def reencode(self, reasons=("manual",)) -> None:  # pragma: no cover
        raise EncodingError("PCCE is a static encoding; re-encoding is not supported")
