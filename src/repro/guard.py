"""Context-sensitive guards over targeted recordings.

Targeted encoding (:mod:`repro.static.targeted`) instruments only the
sink-reaching subgraph, which makes an always-on *guard* deployment
cheap: every call into a declared sink snapshots the encoded context —
a few words — and the decision about whether that call was acceptable
is made offline, with the full decoded call path in hand.

Two halves, mirroring the paper's record/decode split:

* **recording** — :class:`GuardRecorder` rides along an event stream,
  capturing one :class:`~repro.core.context.CollectedSample` per sink
  entry and aggregating identical contexts (same id, gTimeStamp and
  ccStack) into counted :class:`GuardHit` records.  The hit log
  (``*.guard.json``) stores both the raw sample *and* the path decoded
  at record time, so a checker can re-decode against the state file and
  prove the stored path was not tampered with.
* **checking** — :func:`evaluate_policy` applies allow / deny /
  rate-limit rules to decoded paths, :func:`verify_hits` re-decodes the
  raw samples, and :func:`anomaly_scores` compares the context mix
  against a baseline recording: a sink context never seen before scores
  1.0, a context whose share of traffic shifted scores the relative
  shift.

Everything here returns data; rendering and exit codes belong to the
CLI (``dacce guard record`` / ``dacce guard check``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .core.ccstack import UNTRACKED_FUNCTION
from .core.context import CollectedSample
from .core.errors import DacceError
from .core.events import CallEvent, Event, SampleEvent
from .core.serialize import sample_from_dict, sample_to_dict

#: Format version of the ``*.guard.json`` hit log.
GUARD_FORMAT_VERSION = 1

#: Policy rule actions, in documentation order.
ACTIONS = ("allow", "deny", "rate-limit")


class GuardError(DacceError):
    """Invalid guard log, policy document, or unresolvable rule."""


# ----------------------------------------------------------------------
# hit log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GuardHit:
    """One distinct sink-entry context and how often it fired."""

    sample: CollectedSample
    #: Decoded call path, root first, sink last (function ids).
    path: Tuple[int, ...]
    count: int = 1


@dataclass
class GuardLog:
    """A parsed ``*.guard.json`` document."""

    sinks: List[int]
    hits: List[GuardHit]
    names: Dict[int, str] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(hit.count for hit in self.hits)


class GuardRecorder:
    """Capture one sample per call into a sink function.

    Drive it alongside the engine::

        recorder = GuardRecorder(engine, plan.sinks)
        for event in events:
            engine.on_event(event)
            recorder.observe(event)
        hits = recorder.finish()

    ``observe`` must run *after* the engine applied the event, so the
    sample sees the sink frame on top.  Decoding is deferred to
    :meth:`finish` — the decoder carries every dictionary epoch, so
    samples taken before a re-encoding still decode correctly.
    """

    def __init__(self, engine: Any, sinks: Iterable[int]):
        self.engine = engine
        self.sinks = frozenset(sinks)
        self._counts: Dict[CollectedSample, int] = {}

    def observe(self, event: Event) -> None:
        if isinstance(event, CallEvent) and event.callee in self.sinks:
            sample = self.engine.on_sample(SampleEvent(thread=event.thread))
            self._counts[sample] = self._counts.get(sample, 0) + 1

    def finish(self) -> List[GuardHit]:
        decoder = self.engine.decoder()
        hits = []
        for sample, count in self._counts.items():
            path = tuple(
                step.function for step in decoder.decode(sample).steps
            )
            hits.append(GuardHit(sample=sample, path=path, count=count))
        hits.sort(key=lambda hit: (-hit.count, hit.path))
        return hits


def guard_to_dict(
    hits: Iterable[GuardHit],
    sinks: Iterable[int],
    names: Optional[Mapping[int, str]] = None,
) -> Dict[str, Any]:
    return {
        "format": GUARD_FORMAT_VERSION,
        "sinks": sorted(sinks),
        "names": {str(k): v for k, v in (names or {}).items()},
        "hits": [
            {
                **sample_to_dict(hit.sample),
                "path": list(hit.path),
                "count": hit.count,
            }
            for hit in hits
        ],
    }


def parse_guard(data: Any) -> GuardLog:
    if not isinstance(data, dict):
        raise GuardError("guard log must be an object")
    version = data.get("format")
    if version != GUARD_FORMAT_VERSION:
        raise GuardError(
            "unsupported guard-log format %r" % (version,), format=version
        )
    hits = []
    for index, entry in enumerate(data.get("hits", [])):
        try:
            sample = sample_from_dict(entry)
            path = tuple(int(f) for f in entry["path"])
            count = int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as error:
            raise GuardError(
                "guard hit %d is malformed: %s" % (index, error)
            ) from error
        hits.append(GuardHit(sample=sample, path=path, count=count))
    names = {
        int(k): str(v) for k, v in (data.get("names") or {}).items()
    }
    return GuardLog(
        sinks=[int(s) for s in data.get("sinks", [])],
        hits=hits,
        names=names,
    )


def write_guard(
    hits: Iterable[GuardHit],
    sinks: Iterable[int],
    path: str,
    names: Optional[Mapping[int, str]] = None,
) -> str:
    with open(path, "w") as handle:
        json.dump(guard_to_dict(hits, sinks, names), handle, indent=0)
    return path


def load_guard(path: str) -> GuardLog:
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise GuardError("not a guard log: %s" % error) from error
    return parse_guard(data)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyRule:
    """First matching rule wins; the policy default covers the rest."""

    action: str
    #: Restrict the rule to hits on this sink (None = any sink).
    sink: Optional[int] = None
    #: Required tail of the decoded path, sink included (empty = any).
    suffix: Tuple[int, ...] = ()
    #: For ``rate-limit``: max total count across matching hits.
    limit: int = 0
    label: str = ""

    def matches(self, hit: GuardHit) -> bool:
        if self.sink is not None and hit.sample.function != self.sink:
            return False
        if self.suffix and hit.path[-len(self.suffix):] != self.suffix:
            return False
        return True

    def describe(self) -> str:
        parts = [self.action]
        if self.label:
            parts.append("%r" % self.label)
        if self.sink is not None:
            parts.append("sink=%d" % self.sink)
        if self.suffix:
            parts.append("suffix=%s" % (list(self.suffix),))
        if self.action == "rate-limit":
            parts.append("limit=%d" % self.limit)
        return " ".join(parts)


@dataclass(frozen=True)
class GuardPolicy:
    default: str = "allow"
    rules: Tuple[PolicyRule, ...] = ()

    def resolve(self, names: Mapping[int, str]) -> "GuardPolicy":
        """Replace name strings in rules with function ids.

        Policies may reference functions by the names recorded in the
        guard log; unresolvable names raise :class:`GuardError` rather
        than silently matching nothing.
        """
        reverse: Dict[str, int] = {}
        for fid, name in names.items():
            reverse.setdefault(name, fid)

        def lookup(token: Any, what: str) -> int:
            if isinstance(token, bool):
                raise GuardError("%s %r is not a function" % (what, token))
            if isinstance(token, int):
                return token
            if isinstance(token, str):
                if token in reverse:
                    return reverse[token]
                raise GuardError(
                    "%s %r matches no recorded function name" % (what, token)
                )
            raise GuardError("%s %r is not a function" % (what, token))

        resolved = []
        for rule in self.rules:
            resolved.append(
                PolicyRule(
                    action=rule.action,
                    sink=(
                        None
                        if rule.sink is None
                        else lookup(rule.sink, "rule sink")
                    ),
                    suffix=tuple(
                        lookup(token, "rule suffix entry")
                        for token in rule.suffix
                    ),
                    limit=rule.limit,
                    label=rule.label,
                )
            )
        return GuardPolicy(default=self.default, rules=tuple(resolved))


def parse_policy(data: Any) -> GuardPolicy:
    """Parse a guard policy document.

    Shape::

        {"default": "deny",
         "rules": [{"action": "allow", "suffix": [3, 7]},
                   {"action": "rate-limit", "sink": 7, "limit": 100}]}

    ``sink`` and ``suffix`` entries may be function ids or names (names
    resolve against the guard log at check time).
    """
    if not isinstance(data, dict):
        raise GuardError("policy must be an object")
    default = data.get("default", "allow")
    if default not in ("allow", "deny"):
        raise GuardError("policy default must be allow or deny, got %r"
                         % (default,))
    rules = []
    for index, entry in enumerate(data.get("rules", [])):
        if not isinstance(entry, dict):
            raise GuardError("policy rule %d must be an object" % index)
        action = entry.get("action")
        if action not in ACTIONS:
            raise GuardError(
                "policy rule %d: unknown action %r (expected one of %s)"
                % (index, action, ", ".join(ACTIONS))
            )
        suffix = entry.get("suffix", [])
        if not isinstance(suffix, list):
            raise GuardError("policy rule %d: suffix must be a list" % index)
        limit = entry.get("limit", 0)
        if action == "rate-limit" and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
        ):
            raise GuardError(
                "policy rule %d: rate-limit needs a non-negative "
                "integer limit" % index
            )
        rules.append(
            PolicyRule(
                action=action,
                sink=entry.get("sink"),
                suffix=tuple(suffix),
                limit=limit,
                label=str(entry.get("label", "")),
            )
        )
    return GuardPolicy(default=default, rules=tuple(rules))


def load_policy(path: str) -> GuardPolicy:
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as error:
            raise GuardError("not a policy document: %s" % error) from error
    return parse_policy(data)


# ----------------------------------------------------------------------
# checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One policy breach, ready for the CLI to render."""

    kind: str  # denied | rate-limit | anomaly | decode-mismatch
    message: str
    path: Tuple[int, ...] = ()
    count: int = 0


def verify_hits(decoder: Any, hits: Iterable[GuardHit]) -> List[Violation]:
    """Re-decode every raw sample; stored paths must match exactly.

    A mismatch means the guard log and the state file disagree — a
    tampered log, or a log checked against the wrong recording.
    """
    violations = []
    for hit in hits:
        decoded = tuple(
            step.function for step in decoder.decode(hit.sample).steps
        )
        if decoded != hit.path:
            violations.append(
                Violation(
                    kind="decode-mismatch",
                    message="stored path %s does not re-decode from the "
                    "state file (got %s)"
                    % (list(hit.path), list(decoded)),
                    path=hit.path,
                    count=hit.count,
                )
            )
    return violations


def evaluate_policy(
    hits: Iterable[GuardHit], policy: GuardPolicy
) -> List[Violation]:
    """Apply the policy to every hit; first matching rule wins."""
    violations = []
    rate_totals: Dict[int, int] = {}
    rate_paths: Dict[int, Tuple[int, ...]] = {}
    for hit in hits:
        action = policy.default
        rule_index = None
        for index, rule in enumerate(policy.rules):
            if rule.matches(hit):
                action = rule.action
                rule_index = index
                break
        if action == "deny":
            rule = (
                policy.rules[rule_index]
                if rule_index is not None
                else None
            )
            violations.append(
                Violation(
                    kind="denied",
                    message="context %s hit sink %d %d time(s) [%s]"
                    % (
                        list(hit.path),
                        hit.sample.function,
                        hit.count,
                        rule.describe() if rule else "policy default",
                    ),
                    path=hit.path,
                    count=hit.count,
                )
            )
        elif action == "rate-limit":
            assert rule_index is not None
            rate_totals[rule_index] = (
                rate_totals.get(rule_index, 0) + hit.count
            )
            rate_paths.setdefault(rule_index, hit.path)
    for index, total in sorted(rate_totals.items()):
        rule = policy.rules[index]
        if total > rule.limit:
            violations.append(
                Violation(
                    kind="rate-limit",
                    message="%d call(s) exceed limit %d [%s]"
                    % (total, rule.limit, rule.describe()),
                    path=rate_paths[index],
                    count=total,
                )
            )
    return violations


def anomaly_scores(
    current: Iterable[GuardHit], baseline: Iterable[GuardHit]
) -> Dict[Tuple[int, ...], float]:
    """Per-path anomaly of the current context mix against a baseline.

    A path absent from the baseline scores 1.0 (a sink reached through a
    never-before-seen context — the interesting case for a guard).  A
    shared path scores the relative shift of its traffic share:
    ``1 - min(share) / max(share)``, so unchanged mixes score 0.0.
    """
    cur = {hit.path: hit.count for hit in current}
    base = {hit.path: hit.count for hit in baseline}
    cur_total = sum(cur.values()) or 1
    base_total = sum(base.values()) or 1
    scores: Dict[Tuple[int, ...], float] = {}
    for path, count in cur.items():
        if path not in base:
            scores[path] = 1.0
            continue
        share_cur = count / cur_total
        share_base = base[path] / base_total
        scores[path] = 1.0 - (
            min(share_cur, share_base) / max(share_cur, share_base)
        )
    return scores


def render_path(
    path: Iterable[int], names: Optional[Mapping[int, str]] = None
) -> str:
    names = names or {}
    parts = []
    for function in path:
        if function in names:
            parts.append(names[function])
        elif function == UNTRACKED_FUNCTION:
            parts.append("<untracked>")
        else:
            parts.append("fn%d" % function)
    return " -> ".join(parts)
