"""SPEC CPU2006 / Parsec 2.1 benchmark stand-ins seeded from Table 1."""

from .parsec import PARSEC_2_1
from .spec2006 import SPEC_CPU2006
from .suite import (
    CLOCK_HZ,
    BenchmarkSpec,
    BenchmarkSuite,
    PaperRow,
    full_suite,
)

__all__ = [
    "CLOCK_HZ",
    "BenchmarkSpec",
    "BenchmarkSuite",
    "PARSEC_2_1",
    "PaperRow",
    "SPEC_CPU2006",
    "full_suite",
]
