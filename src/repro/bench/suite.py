"""Benchmark suite scaffolding — SPEC CPU2006 + Parsec 2.1 stand-ins.

The paper evaluates on 29 SPEC CPU2006 programs (ref inputs) and 12
Parsec 2.1 programs (native inputs) on a 1.87 GHz Xeon E7-4807.  The
reproduction cannot run those binaries; instead each benchmark is a
:class:`BenchmarkSpec` carrying

* the *published* Table 1 row (:class:`PaperRow`) — the ground truth the
  reproduction is compared against in EXPERIMENTS.md, and
* derivation logic that turns the row into a synthetic-program
  generator configuration and a workload: dynamic node/edge counts size
  the program, PCCE's larger static counts size the never-executed code
  and points-to false positives, the ccStack rate and depth calibrate
  recursion pressure, ``gTS`` sets the number of phase shifts, and
  ``calls/s`` sets the baseline application cycles per call for the
  overhead model (call-dense programs amortise instrumentation over
  fewer cycles — the paper's central overhead correlation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..program.generator import GeneratorConfig
from ..program.trace import PhaseSpec, ThreadSpec, WorkloadSpec

#: The paper's machine: 1.87 GHz Intel Xeon E7-4807.
CLOCK_HZ = 1.87e9


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1 plus the Figure 8 overheads.

    ``pcce_maxid`` is kept as the paper prints it (``"overflow"`` for
    400.perlbench and 403.gcc).  ``overhead_*`` are percentages read off
    Figure 8; the paper only states the geomeans (about 2.5% PCCE, 2%
    DACCE) numerically, so the per-benchmark values are approximate
    digitisations and are treated as such in EXPERIMENTS.md.
    """

    pcce_nodes: int
    pcce_edges: int
    pcce_maxid: str
    pcce_ccstack_s: int
    pcce_depth: float
    nodes: int
    edges: int
    maxid: float
    ccstack_s: int
    depth: float
    gts: int
    costs_us: int
    calls_s: int
    overhead_pcce: float
    overhead_dacce: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """A benchmark: name, suite, paper row, and tuning hints."""

    name: str
    suite: str
    paper: PaperRow
    #: Worker threads (Parsec programs are multi-threaded).
    threads: int = 0
    #: Fraction of call sites that are indirect (perlbench/gobmk/x264
    #: are the paper's function-pointer-heavy cases).
    indirect_fraction: float = 0.04
    #: Dynamic target count range of indirect sites; x264's large sets
    #: are what motivates the hash-table dispatch (Section 3.2).
    indirect_targets: Tuple[int, int] = (2, 4)
    #: Extra seed offset so benchmarks differ structurally.
    seed: int = 0

    # -- derived quantities -------------------------------------------
    @property
    def ccstack_rate(self) -> float:
        """DACCE ccStack operations per dynamic call (from Table 1)."""
        if self.paper.calls_s <= 0:
            return 0.0
        return min(1.0, self.paper.ccstack_s / self.paper.calls_s)

    @property
    def pcce_ccstack_rate(self) -> float:
        """PCCE ccStack operations per dynamic call (from Table 1)."""
        if self.paper.calls_s <= 0:
            return 0.0
        return min(1.0, self.paper.pcce_ccstack_s / self.paper.calls_s)

    @property
    def hot_cycle_edges(self) -> int:
        """Dead cycle-closing static edges through hot code.

        Sized from how much *extra* ccStack traffic PCCE shows over
        DACCE in Table 1 — the signature of hot edges trapped as back
        edges by never-executed code (perlbench, xalancbmk, h264ref...).
        """
        excess = max(0.0, self.pcce_ccstack_rate - self.ccstack_rate)
        if excess <= 0:
            return 0
        return max(2, min(80, int(excess * 400)))

    @property
    def persistent_recursion(self) -> bool:
        """Long-lived recursion bases (depth >= 1 in Table 1)."""
        return self.paper.depth >= 1.0

    @property
    def recursion_affinity(self) -> float:
        """Burst-continuation probability, from Table 1's average depth.

        A geometric burst with continuation ``a`` has mean depth
        ``1 / (1 - a)``; inverting the paper's average ccStack depth
        (clamped — xalancbmk's depth 6 maps to a deep but finite 0.9).
        """
        depth = self.paper.depth
        if depth <= 0.01:
            return 0.0
        return min(0.85, 1.0 - 1.0 / (1.0 + 0.6 * depth))

    @property
    def recursive_sites(self) -> int:
        """Cycle-closing sites; a handful suffices at the right weight."""
        if self.ccstack_rate <= 0 and self.paper.depth <= 0:
            return 1
        return max(1, min(12, int(round(200 * self.ccstack_rate)) + 2))

    @property
    def recursion_weight(self) -> float:
        """Entry weight for recursive sites, from the ccStack op rate.

        Each burst of mean depth d costs about 2d ccStack operations, so
        entries-per-call ~= rate * (1 - affinity) / 2; the weight is that
        entry probability scaled against typical site weights (~1).
        """
        rate = self.ccstack_rate
        if rate <= 0:
            return 0.001
        entry = rate * max(0.1, 1.0 - self.recursion_affinity) / 2.0
        weight = 6.0 * entry
        # In tiny programs the recursion-site functions take a much
        # larger share of execution, so the same site weight would yield
        # far more entries per call; scale it down proportionally.
        size_correction = min(1.0, self.paper.nodes / 80.0)
        return max(0.0005, min(0.2, weight * size_correction))

    @property
    def baseline_cycles_per_call(self) -> float:
        """Application cycles of real work per call at the paper's rate."""
        if self.paper.calls_s <= 0:
            return CLOCK_HZ
        return CLOCK_HZ / self.paper.calls_s

    # -- build ----------------------------------------------------------
    def generator_config(self, scale: float = 1.0) -> GeneratorConfig:
        """Synthetic-program parameters matching this benchmark's shape.

        ``scale`` < 1 shrinks graph sizes proportionally for quick runs;
        dynamic/static proportions are preserved.
        """
        paper = self.paper
        functions = max(3, int(paper.nodes * scale))
        edges = max(functions, int(paper.edges * scale))
        static_fn = max(0, int((paper.pcce_nodes - paper.nodes) * scale))
        static_edges = max(0, int((paper.pcce_edges - paper.edges) * scale))
        library_functions = max(4, functions // 40)
        return GeneratorConfig(
            name=self.name,
            seed=hash(self.name) % 100_000 + self.seed,
            functions=functions,
            edges=edges,
            static_only_functions=static_fn,
            static_only_edges=static_edges,
            hot_cycle_edges=self.hot_cycle_edges,
            indirect_fraction=self.indirect_fraction,
            indirect_targets=self.indirect_targets,
            pointsto_false_targets=(2, max(4, static_fn // 50 + 4)),
            recursive_sites=self.recursive_sites,
            recursion_weight=self.recursion_weight,
            tail_fraction=0.03,
            library_functions=library_functions,
            libraries=2,
            lazy_library=self.suite.startswith("Parsec"),
            hot_skew=1.2,
            max_fanout=max(8, (2 * edges) // max(1, functions) + 4),
        )

    def workload_spec(
        self, calls: int = 40_000, seed: int = 1
    ) -> WorkloadSpec:
        """Workload matching this benchmark's dynamic behaviour."""
        paper = self.paper
        phases = [
            PhaseSpec(
                at_call=int(calls * position),
                seed=seed * 37 + index,
            )
            for index, position in enumerate(
                _phase_positions(min(8, max(0, paper.gts - 1)))
            )
        ]
        threads = [
            ThreadSpec(
                thread=index + 1,
                entry=2 + index,
                spawn_at_call=500 + 400 * index,
            )
            for index in range(self.threads)
        ]
        depth_target = 12 if paper.depth < 1 else 18
        return WorkloadSpec(
            calls=calls,
            seed=seed + (hash(self.name) % 1000),
            sample_period=max(11, calls // 1200),
            target_depth=depth_target,
            max_depth=400,
            recursion_affinity=self.recursion_affinity,
            persistent_recursion=self.persistent_recursion,
            threads=threads,
            phases=phases,
        )


def _phase_positions(count: int) -> List[float]:
    """Spread ``count`` phase changes over the middle of the run."""
    if count <= 0:
        return []
    return [(index + 1) / (count + 1) for index in range(count)]


class BenchmarkSuite:
    """All benchmarks, addressable by name."""

    def __init__(self, benchmarks: List[BenchmarkSpec]):
        self._by_name: Dict[str, BenchmarkSpec] = {}
        for benchmark in benchmarks:
            self._by_name[benchmark.name] = benchmark

    def names(self) -> List[str]:
        return list(self._by_name.keys())

    def get(self, name: str) -> BenchmarkSpec:
        return self._by_name[name]

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)


def full_suite() -> BenchmarkSuite:
    """SPEC CPU2006 + Parsec 2.1, in the paper's Table 1 order."""
    from .parsec import PARSEC_2_1
    from .spec2006 import SPEC_CPU2006

    return BenchmarkSuite(list(SPEC_CPU2006) + list(PARSEC_2_1))
