"""SPEC CPU2006 benchmark definitions (Table 1, upper block).

Every :class:`PaperRow` transcribes the published Table 1 values:
PCCE nodes/edges/maxID/ccStack-per-second/average-depth, then the DACCE
columns, the re-encoding count (gTS), re-encoding cost in microseconds,
and the dynamic call rate.  ``overhead_*`` are approximate Figure 8
read-offs (see :mod:`repro.bench.suite`).

``pcce_maxid`` is a string because the paper prints "overflow" where the
64-bit id space was exceeded (400.perlbench, 403.gcc).
"""

from __future__ import annotations

from .suite import BenchmarkSpec, PaperRow

_SUITE = "SPEC CPU2006"


def _spec(name, row, **kwargs):
    return BenchmarkSpec(name=name, suite=_SUITE, paper=row, **kwargs)


SPEC_CPU2006 = [
    _spec(
        "400.perlbench",
        PaperRow(1468, 21065, "overflow", 4969345, 0.20,
                 684, 3911, 1.4e11, 3095100, 0.20, 23, 1747514, 29205101,
                 16.0, 9.0),
        indirect_fraction=0.12,
        indirect_targets=(4, 12),
    ),
    _spec(
        "401.bzip2",
        PaperRow(122, 321, "833", 0, 0.00,
                 50, 109, 61, 38753, 0.05, 5, 3475, 7687097,
                 2.5, 2.0),
    ),
    _spec(
        "403.gcc",
        PaperRow(3944, 50690, "overflow", 0, 2.94,
                 1931, 11518, 7.0e13, 315406, 0.00, 110, 2866850, 14710894,
                 5.0, 4.0),
        indirect_fraction=0.08,
        indirect_targets=(2, 8),
    ),
    _spec(
        "429.mcf",
        PaperRow(69, 126, "53", 0, 0.00,
                 11, 12, 3, 2069, 0.01, 2, 166, 295581,
                 0.3, 0.3),
    ),
    _spec(
        "445.gobmk",
        PaperRow(2273, 13687, "3.4E+15", 246782, 2.42,
                 1378, 4808, 2.4e11, 250321, 2.47, 76, 1732161, 13355556,
                 8.0, 8.0),
        indirect_fraction=0.10,
        indirect_targets=(4, 10),
    ),
    _spec(
        "456.hmmer",
        PaperRow(249, 1618, "56401", 3082, 0.00,
                 70, 174, 42, 481, 0.02, 2, 1420, 1872530,
                 1.0, 0.8),
    ),
    _spec(
        "458.sjeng",
        PaperRow(139, 678, "33088", 0, 0.00,
                 54, 232, 2945, 233, 0.00, 23, 19560, 18248384,
                 3.5, 4.5),
    ),
    _spec(
        "462.libquantum",
        PaperRow(118, 846, "1202640", 0, 0.00,
                 29, 49, 15, 1, 0.01, 9, 722, 44,
                 0.1, 0.1),
    ),
    _spec(
        "464.h264ref",
        PaperRow(398, 2698, "1.8E+07", 424979, 0.00,
                 201, 1048, 34293, 5310, 0.00, 10, 84556, 7080183,
                 3.0, 2.5),
        indirect_fraction=0.08,
        indirect_targets=(3, 8),
    ),
    _spec(
        "471.omnetpp",
        PaperRow(1706, 11981, "1.2E+07", 302097, 0.11,
                 506, 4135, 8654, 149146, 0.04, 11, 205585, 11656043,
                 5.0, 4.0),
        indirect_fraction=0.10,
    ),
    _spec(
        "473.astar",
        PaperRow(139, 469, "3177", 0, 0.00,
                 60, 140, 101, 10606, 0.03, 10, 1922, 129559,
                 0.5, 0.5),
    ),
    _spec(
        "483.xalancbmk",
        PaperRow(12535, 40392, "3.8E+14", 4375862, 6.91,
                 2170, 7321, 1422838, 596197, 6.01, 27, 3551342, 25341805,
                 18.0, 10.0),
        indirect_fraction=0.12,
        indirect_targets=(3, 8),
    ),
    _spec(
        "410.bwaves",
        PaperRow(369, 2189, "7248401", 0, 0.00,
                 82, 164, 73, 2639, 0.01, 6, 433, 263845,
                 0.3, 0.3),
    ),
    _spec(
        "416.gamess",
        PaperRow(2442, 50080, "1.1E+15", 0, 0.00,
                 362, 2017, 112645, 21925, 0.03, 19, 41810, 3390329,
                 1.5, 1.5),
    ),
    _spec(
        "433.milc",
        PaperRow(177, 667, "5761", 0, 0.00,
                 57, 185, 455, 46156, 0.09, 38, 524072, 380448,
                 0.5, 1.0),
    ),
    _spec(
        "434.zeusmp",
        PaperRow(416, 3598, "2.9E+08", 0, 0.00,
                 118, 528, 5026, 485, 0.05, 81, 9640, 1601,
                 0.1, 0.5),
    ),
    _spec(
        "435.gromacs",
        PaperRow(619, 2919, "351721", 0, 0.00,
                 154, 402, 1553, 5132, 0.01, 8, 4742, 919287,
                 0.8, 0.8),
    ),
    _spec(
        "436.cactusADM",
        PaperRow(876, 6394, "8552489", 0, 0.00,
                 271, 1533, 119729, 3003, 0.01, 3, 16197, 4662,
                 0.1, 0.1),
    ),
    _spec(
        "437.leslie3d",
        PaperRow(434, 3247, "6.0E+07", 0, 0.00,
                 106, 597, 388, 475, 0.00, 2, 880, 85206,
                 0.2, 0.2),
    ),
    _spec(
        "444.namd",
        PaperRow(176, 482, "361", 0, 0.00,
                 61, 101, 31, 19426, 0.02, 20, 4260, 737925,
                 0.5, 0.5),
    ),
    _spec(
        "447.dealII",
        PaperRow(9935, 30204, "254161", 280, 0.12,
                 792, 3369, 1132, 16331, 0.06, 47, 30871, 19533456,
                 6.0, 5.0),
    ),
    _spec(
        "450.soplex",
        PaperRow(784, 1954, "96457", 2590, 0.00,
                 225, 453, 367, 32681, 0.07, 7, 8706, 312430,
                 0.5, 0.5),
    ),
    _spec(
        "453.povray",
        PaperRow(1644, 12056, "8.7E+16", 270387, 0.84,
                 548, 2201, 548645, 69109, 0.76, 6, 113456, 34335309,
                 10.0, 9.0),
        indirect_fraction=0.08,
    ),
    _spec(
        "454.calculix",
        PaperRow(1009, 8307, "1.0E+09", 0, 0.00,
                 416, 1660, 3043, 62812, 0.06, 11, 13485, 3662033,
                 1.5, 1.5),
    ),
    _spec(
        "459.GemsFDTD",
        PaperRow(517, 5076, "5.1E+08", 0, 0.00,
                 175, 2067, 10756, 32749, 0.01, 7, 7690, 1579372,
                 0.8, 0.8),
    ),
    _spec(
        "465.tonto",
        PaperRow(2144, 34717, "4.3E+14", 0, 0.33,
                 657, 4548, 134983, 26186, 0.03, 101, 154889, 9545304,
                 3.0, 2.5),
    ),
    _spec(
        "470.lbm",
        PaperRow(75, 135, "53", 0, 0.00,
                 13, 16, 4, 0, 0.00, 3, 222, 2964,
                 0.05, 0.05),
    ),
    _spec(
        "481.wrf",
        PaperRow(1367, 17330, "4.5E+12", 0, 0.00,
                 660, 5483, 713767, 20138, 0.03, 4, 63147, 2358117,
                 1.0, 1.0),
    ),
    _spec(
        "482.sphinx3",
        PaperRow(273, 1570, "27121", 0, 0.00,
                 134, 404, 92, 4187, 0.00, 6, 1825, 1875791,
                 1.0, 0.8),
    ),
]
