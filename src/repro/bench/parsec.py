"""Parsec 2.1 benchmark definitions (Table 1, lower block).

All Parsec programs run multi-threaded (gcc-pthreads binaries, native
inputs in the paper); the stand-ins spawn four worker threads and load
their last shared library lazily — the dlopen-style plugin case static
encoders cannot see.
"""

from __future__ import annotations

from .suite import BenchmarkSpec, PaperRow

_SUITE = "Parsec 2.1"


def _parsec(name, row, **kwargs):
    kwargs.setdefault("threads", 4)
    return BenchmarkSpec(name=name, suite=_SUITE, paper=row, **kwargs)


PARSEC_2_1 = [
    _parsec(
        "blackscholes",
        PaperRow(12, 26, "4", 0, 0.00,
                 3, 5, 5, 68, 0.00, 11, 644, 14646244,
                 4.0, 3.5),
        threads=2,
    ),
    _parsec(
        "bodytrack",
        PaperRow(1310, 11047, "151775", 0, 0.00,
                 218, 894, 667, 68268, 0.01, 5, 12204, 6928160,
                 2.5, 2.0),
    ),
    _parsec(
        "facesim",
        PaperRow(6213, 24377, "1.8E+10", 0, 0.00,
                 264, 1102, 1104, 24132, 0.00, 5, 11029, 8891290,
                 3.0, 2.5),
    ),
    _parsec(
        "ferret",
        PaperRow(1987, 25270, "7.9E+14", 0, 0.00,
                 354, 1612, 3398, 44682, 0.00, 4, 8972, 4439120,
                 1.5, 1.5),
    ),
    _parsec(
        "raytrace",
        PaperRow(7911, 24577, "6.8E+08", 0, 0.02,
                 177, 632, 235, 370, 0.06, 5, 5631, 3516574,
                 1.5, 1.0),
    ),
    _parsec(
        "swaptions",
        PaperRow(2173, 6372, "2.6E+08", 0, 0.00,
                 15, 136, 51, 3, 0.03, 12, 45821, 21753118,
                 6.0, 5.0),
    ),
    _parsec(
        "fluidanimate",
        PaperRow(2168, 6420, "2.8E+08", 0, 0.00,
                 73, 144, 31, 49, 0.00, 8, 23648, 76287,
                 0.1, 0.1),
    ),
    _parsec(
        "vips",
        PaperRow(5395, 25302, "7.7E+11", 0, 0.00,
                 482, 1555, 26117, 3865, 0.00, 5, 3271, 855060,
                 0.5, 0.5),
    ),
    _parsec(
        "x264",
        PaperRow(820, 3299, "1079001", 0, 0.00,
                 221, 1052, 2017, 15729, 0.00, 4, 84911, 23984355,
                 9.0, 4.0),
        # The paper singles x264 out: "several frequently invoked
        # indirect calls have a large number of targets" — the case the
        # hash-table dispatch (Figure 4) was built for.
        indirect_fraction=0.14,
        indirect_targets=(8, 16),
    ),
    _parsec(
        "canneal",
        PaperRow(2191, 6733, "3.4E+08", 0, 0.00,
                 107, 225, 44, 380, 0.00, 6, 105133, 2276649,
                 1.0, 0.8),
    ),
    _parsec(
        "dedup",
        PaperRow(121, 256, "65", 0, 0.00,
                 21, 30, 5, 30239, 0.00, 4, 7201, 1305985,
                 0.8, 0.6),
    ),
    _parsec(
        "streamcluster",
        PaperRow(2182, 6336, "2.6E+08", 0, 0.00,
                 11, 29, 15, 14, 0.00, 6, 156324, 111153,
                 0.1, 0.1),
    ),
]
