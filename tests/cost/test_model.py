"""Cost-model tests: categories, steady vs one-time, amortization."""

from dataclasses import replace

import pytest

from repro.cost.model import (
    CLIENT_CATEGORIES,
    ONETIME_CATEGORIES,
    CostModel,
    CostParameters,
    CostReport,
)


def test_baseline_accumulates():
    model = CostModel()
    model.charge_call_baseline(calls=10)
    expected = 10 * model.parameters.baseline_cycles_per_call
    assert model.report.baseline_cycles == expected


def test_baseline_custom_work():
    model = CostModel()
    model.charge_call_baseline(calls=2, work=50.0)
    assert model.report.baseline_cycles == 100.0


def test_zero_encoding_free_nonzero_charged():
    model = CostModel()
    model.charge_id_update(0)
    assert model.report.instrumentation_cycles == 0.0
    model.charge_id_update(2)
    assert model.report.instrumentation_cycles == 2 * model.parameters.id_update


def test_categories_split_steady_and_onetime():
    model = CostModel()
    model.charge_ccstack_push()
    model.charge_handler()
    model.charge_reencode(edges=10, threads=1)
    report = model.report
    assert report.steady_cycles == model.parameters.ccstack_push
    assert report.onetime_cycles == (
        model.parameters.handler
        + 10 * model.parameters.reencode_per_edge
        + model.parameters.thread_suspend
    )


def test_sample_cost_is_client_side():
    model = CostModel()
    model.charge_sample(ccstack_entries=3)
    assert model.report.steady_cycles == 0.0
    assert model.report.onetime_cycles == 0.0
    assert model.report.instrumentation_cycles > 0


def test_overhead_raw_vs_amortized():
    model = CostModel(replace(CostParameters(), baseline_cycles_per_call=100))
    model.charge_call_baseline(calls=100)  # baseline = 10_000 cycles
    model.charge_ccstack_push()            # steady ~9
    model.charge_handler()                 # onetime 2500
    raw = model.report.overhead
    amortized = model.report.amortized_overhead(full_run_cycles=1e12)
    assert raw > amortized
    assert amortized == pytest.approx(
        model.parameters.ccstack_push / 10_000 + 2500 / 1e12
    )


def test_amortized_defaults_to_window():
    model = CostModel()
    model.charge_call_baseline(calls=10)
    model.charge_handler()
    assert model.report.amortized_overhead() == pytest.approx(
        model.report.overhead, rel=0.05
    )


def test_empty_report_overheads_are_zero():
    report = CostReport()
    assert report.overhead == 0.0
    assert report.amortized_overhead(1e9) == 0.0


def test_merged_reports():
    a = CostModel()
    a.charge_ccstack_push()
    a.charge_call_baseline(calls=1)
    b = CostModel()
    b.charge_ccstack_pop()
    b.charge_call_baseline(calls=1)
    merged = a.report.merged(b.report)
    assert merged.instrumentation_cycles == (
        a.parameters.ccstack_push + b.parameters.ccstack_pop
    )
    assert merged.baseline_cycles == (
        a.report.baseline_cycles + b.report.baseline_cycles
    )


def test_category_sets_disjoint():
    assert not (ONETIME_CATEGORIES & CLIENT_CATEGORIES)


def test_all_charge_methods_touch_report():
    model = CostModel()
    model.charge_comparisons(3)
    model.charge_hash_lookup()
    model.charge_tcstack()
    model.charge_stack_walk(5)
    model.charge_cct_step()
    model.charge_pcc_hash()
    assert set(model.report.charges) == {
        "indirect", "tcstack", "stackwalk", "cct", "pcc"
    }
