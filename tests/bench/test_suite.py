"""Benchmark-suite tests: Table 1 data integrity and derivations."""

import pytest

from repro.bench import CLOCK_HZ, PARSEC_2_1, SPEC_CPU2006, full_suite


def test_suite_has_all_41_benchmarks():
    suite = full_suite()
    assert len(suite) == 41
    assert len(SPEC_CPU2006) == 29
    assert len(PARSEC_2_1) == 12


def test_names_unique_and_ordered_like_table1():
    suite = full_suite()
    names = suite.names()
    assert len(set(names)) == 41
    assert names[0] == "400.perlbench"
    assert names[-1] == "streamcluster"


def test_paper_overflow_rows():
    suite = full_suite()
    overflowing = [
        b.name for b in suite if b.paper.pcce_maxid == "overflow"
    ]
    assert overflowing == ["400.perlbench", "403.gcc"]


def test_pcce_graphs_dominate_dacce_graphs():
    for benchmark in full_suite():
        paper = benchmark.paper
        assert paper.pcce_nodes >= paper.nodes
        assert paper.pcce_edges >= paper.edges


def test_parsec_benchmarks_are_threaded():
    for benchmark in PARSEC_2_1:
        assert benchmark.threads >= 2
    for benchmark in SPEC_CPU2006:
        assert benchmark.threads == 0


def test_known_characteristics_spot_checks():
    suite = full_suite()
    gobmk = suite.get("445.gobmk").paper
    assert gobmk.gts == 76
    assert gobmk.depth == pytest.approx(2.47)
    xalan = suite.get("483.xalancbmk").paper
    assert xalan.pcce_nodes == 12535
    assert xalan.ccstack_s == 596197
    lbm = suite.get("470.lbm").paper
    assert lbm.calls_s == 2964


def test_derived_recursion_quantities_sane():
    for benchmark in full_suite():
        assert 0.0 <= benchmark.recursion_affinity <= 0.9
        assert 1 <= benchmark.recursive_sites <= 40
        assert 0.0 < benchmark.recursion_weight <= 0.6
        assert 0.0 <= benchmark.ccstack_rate <= 1.0


def test_deep_recursion_benchmarks_are_persistent():
    suite = full_suite()
    assert suite.get("445.gobmk").persistent_recursion
    assert suite.get("483.xalancbmk").persistent_recursion
    assert not suite.get("433.milc").persistent_recursion
    assert not suite.get("470.lbm").persistent_recursion


def test_hot_cycle_edges_follow_pcce_excess():
    suite = full_suite()
    assert suite.get("400.perlbench").hot_cycle_edges > 0
    assert suite.get("483.xalancbmk").hot_cycle_edges > 0
    assert suite.get("470.lbm").hot_cycle_edges == 0


def test_baseline_cycles_reflect_call_rate():
    suite = full_suite()
    dense = suite.get("453.povray")  # 34M calls/s
    sparse = suite.get("470.lbm")    # 3k calls/s
    assert dense.baseline_cycles_per_call < 100
    assert sparse.baseline_cycles_per_call > 100_000
    assert dense.baseline_cycles_per_call == pytest.approx(
        CLOCK_HZ / dense.paper.calls_s
    )


def test_generator_config_scales():
    benchmark = full_suite().get("403.gcc")
    full = benchmark.generator_config(1.0)
    half = benchmark.generator_config(0.5)
    assert full.functions == benchmark.paper.nodes
    assert half.functions == benchmark.paper.nodes // 2
    assert half.static_only_functions < full.static_only_functions


def test_workload_spec_structure():
    benchmark = full_suite().get("x264")
    spec = benchmark.workload_spec(calls=10_000, seed=3)
    assert spec.calls == 10_000
    assert len(spec.threads) == 4
    assert spec.phases  # gts > 1 implies phase changes
    assert all(0 < p.at_call < 10_000 for p in spec.phases)


def test_x264_is_indirect_heavy():
    benchmark = full_suite().get("x264")
    assert benchmark.indirect_targets[1] >= 10
    assert benchmark.indirect_fraction > 0.1
