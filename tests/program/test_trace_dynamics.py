"""Executor dynamics tests: unwind episodes, phase clamping, coverage."""

from collections import Counter

from repro.core.events import CallEvent, CallKind, ReturnEvent
from repro.program.generator import GeneratorConfig, generate_program
from repro.program.trace import PhaseSpec, TraceExecutor, WorkloadSpec


def depths_over_time(program, spec):
    depth = 1
    out = []
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, CallEvent):
            if event.kind is not CallKind.TAIL:
                depth += 1
        elif isinstance(event, ReturnEvent):
            depth -= 1
        out.append(depth)
    return out


def test_unwind_episodes_return_to_shallow_depth():
    program = generate_program(GeneratorConfig(seed=4, functions=40))
    spec = WorkloadSpec(calls=10_000, seed=2, unwind_period=150,
                        sample_period=0)
    depths = depths_over_time(program, spec)
    shallow_visits = sum(1 for d in depths if d <= 2)
    # The walk repeatedly restarts from (near) the bottom frame.
    assert shallow_visits > 20


def test_no_unwind_episodes_when_disabled():
    program = generate_program(GeneratorConfig(seed=4, functions=40))
    lively = WorkloadSpec(calls=8_000, seed=2, unwind_period=100,
                          sample_period=0)
    frozen = WorkloadSpec(calls=8_000, seed=2, unwind_period=0,
                          sample_period=0)
    lively_shallow = sum(1 for d in depths_over_time(program, lively) if d <= 2)
    frozen_shallow = sum(1 for d in depths_over_time(program, frozen) if d <= 2)
    assert lively_shallow > frozen_shallow


def test_unwind_improves_function_coverage():
    program = generate_program(GeneratorConfig(seed=4, functions=60,
                                               edges=140))
    def coverage(unwind):
        spec = WorkloadSpec(calls=10_000, seed=2, unwind_period=unwind,
                            sample_period=0)
        seen = set()
        for event in TraceExecutor(program, spec).events():
            if isinstance(event, CallEvent):
                seen.add(event.callee)
        return len(seen)

    assert coverage(200) >= coverage(0)


def test_phase_multipliers_are_clamped():
    program = generate_program(GeneratorConfig(seed=6, functions=40))
    executor = TraceExecutor(
        program, WorkloadSpec(calls=100, seed=1,
                              phases=[PhaseSpec(at_call=0, seed=9)])
    )
    list(executor.events())
    scales = list(executor._site_scale.values())
    assert scales
    assert all(0.25 <= s <= 4.0 for s in scales)


def test_recursion_bases_capped():
    from repro.program.trace import _ExecThread

    state = _ExecThread(stack=[], persist_bases=True)
    state.push(0, False)
    for n in range(1, 30):
        state.push(n, True)
    assert len(state.rec_positions) == _ExecThread.MAX_BASES
    # Unwinding drops bases exactly when their frames pop.
    while state.depth > 1:
        state.pop()
    assert state.rec_positions == []


def test_effective_depth_resets_at_base():
    from repro.program.trace import _ExecThread

    state = _ExecThread(stack=[], persist_bases=True)
    state.push(0, False)
    state.push(1, False)
    state.push(2, True)   # base at index 2
    state.push(3, False)
    assert state.depth == 4
    assert state.effective_depth == 2  # frames above the base


def test_scheduler_interleaves_threads(small_program):
    from repro.program.trace import ThreadSpec

    spec = WorkloadSpec(
        calls=6_000, seed=2, scheduler_burst=8, sample_period=0,
        # fn 3 has live call sites in the fixture program (a thread whose
        # entry only contains dead code would idle, which is legal).
        threads=[ThreadSpec(thread=1, entry=3, spawn_at_call=200)],
    )
    switches = 0
    last = None
    per_thread = Counter()
    for event in TraceExecutor(small_program, spec).events():
        if isinstance(event, CallEvent):
            per_thread[event.thread] += 1
            if last is not None and event.thread != last:
                switches += 1
            last = event.thread
    assert per_thread[0] > 100 and per_thread[1] > 100
    assert switches > 50
