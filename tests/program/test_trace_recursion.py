"""Executor recursion/tail-chain behaviour tests (shape calibration)."""

from collections import Counter

from repro.core.events import CallEvent, CallKind, ReturnEvent
from repro.program.generator import GeneratorConfig, generate_program
from repro.program.model import CallSiteDef, FunctionDef, Program
from repro.program.trace import TraceExecutor, WorkloadSpec


def tail_chain_program(length=30):
    """main -> f1, plus a long forward chain of tail-call sites."""
    functions = [FunctionDef(0, "main", callsites=[
        CallSiteDef(id=1, targets=[1]),
    ])]
    for n in range(1, length):
        functions.append(
            FunctionDef(
                n,
                "f%d" % n,
                callsites=[
                    CallSiteDef(
                        id=n + 1, kind=CallKind.TAIL, targets=[n + 1]
                    )
                ],
            )
        )
    functions.append(FunctionDef(length, "leaf"))
    return Program(functions)


def test_tail_chains_are_capped():
    program = tail_chain_program()
    spec = WorkloadSpec(calls=2_000, seed=1, max_tail_chain=3,
                        sample_period=0)
    longest = 0
    current = 0
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, CallEvent):
            if event.kind is CallKind.TAIL:
                current += 1
                longest = max(longest, current)
            else:
                current = 0
        elif isinstance(event, ReturnEvent):
            current = 0
    assert longest <= 3


def test_tail_cap_configurable():
    program = tail_chain_program()
    spec = WorkloadSpec(calls=2_000, seed=1, max_tail_chain=10,
                        sample_period=0)
    longest = 0
    current = 0
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, CallEvent) and event.kind is CallKind.TAIL:
            current += 1
            longest = max(longest, current)
        else:
            current = 0
    assert 3 < longest <= 10


def test_recursion_only_through_designated_sites():
    """Incidental on-stack targets must not trigger burst machinery."""
    program = generate_program(
        GeneratorConfig(seed=5, functions=40, edges=100, recursive_sites=3,
                        recursion_weight=0.05)
    )
    recursive_sites = {
        s.id for _f, s in program.all_callsites() if s.recursive
    }
    spec = WorkloadSpec(calls=10_000, seed=2, recursion_affinity=0.7)
    by_site = Counter()
    stack = [program.main]
    cycle_calls_not_at_designated = 0
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, CallEvent):
            if event.callee in stack and event.callsite not in recursive_sites:
                cycle_calls_not_at_designated += 1
            if event.kind is CallKind.TAIL:
                stack[-1] = event.callee
            else:
                stack.append(event.callee)
            by_site[event.callsite] += 1
        elif isinstance(event, ReturnEvent):
            stack.pop()
    designated_calls = sum(by_site[s] for s in recursive_sites)
    # Designated sites execute; nothing else closes cycles (normal
    # edges are strictly forward in generated programs).
    assert designated_calls > 0
    assert cycle_calls_not_at_designated == 0


def test_depth_stays_bounded_under_persistent_recursion():
    program = generate_program(
        GeneratorConfig(seed=7, functions=60, edges=150, recursive_sites=6,
                        recursion_weight=0.05)
    )
    spec = WorkloadSpec(calls=15_000, seed=3, recursion_affinity=0.8,
                        persistent_recursion=True, max_depth=200)
    depth = 1
    peak = 0
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, CallEvent):
            if event.kind is not CallKind.TAIL:
                depth += 1
            peak = max(peak, depth)
        elif isinstance(event, ReturnEvent):
            depth -= 1
    assert peak <= 200


def test_transient_recursion_unwinds_quickly():
    """Non-persistent mode: high op rate but near-zero resident depth."""
    program = generate_program(
        GeneratorConfig(seed=9, functions=40, edges=100, recursive_sites=4,
                        recursion_weight=0.1)
    )
    spec = WorkloadSpec(calls=10_000, seed=4, recursion_affinity=0.2,
                        persistent_recursion=False, sample_period=31)
    from repro.core.engine import DacceEngine
    from repro.core.events import SampleEvent

    engine = DacceEngine(root=program.main)
    depths = []
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
        if isinstance(event, SampleEvent):
            depths.append(
                engine.ccstack_depth(event.thread, include_discovery=False)
            )
    assert depths
    assert sum(depths) / len(depths) < 1.5
