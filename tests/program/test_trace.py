"""Trace-executor tests: balance, determinism, threads, phases, recursion."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.core.events import (
    CallEvent,
    CallKind,
    LibraryLoadEvent,
    ReturnEvent,
    SampleEvent,
    ThreadExitEvent,
    ThreadStartEvent,
)
from repro.program.generator import GeneratorConfig, generate_program
from repro.program.trace import (
    PhaseSpec,
    ThreadSpec,
    TraceExecutor,
    WorkloadSpec,
    run_workload,
)


def collect(program, spec):
    return list(TraceExecutor(program, spec).events())


def test_deterministic_in_seed(small_program):
    spec = WorkloadSpec(calls=2000, seed=3)
    assert collect(small_program, spec) == collect(small_program, spec)


def test_emits_requested_call_count(small_program):
    spec = WorkloadSpec(calls=2000, seed=3)
    calls = sum(
        1 for e in collect(small_program, spec) if isinstance(e, CallEvent)
    )
    assert calls == 2000


def test_calls_and_returns_balance_per_thread(small_program):
    """Every thread fully unwinds; tail calls collapse a whole chain."""
    spec = WorkloadSpec(
        calls=3000,
        seed=5,
        threads=[ThreadSpec(thread=1, entry=2, spawn_at_call=500)],
    )
    depth = {0: 1, 1: 1}
    for event in collect(small_program, spec):
        if isinstance(event, CallEvent):
            if event.kind is not CallKind.TAIL:
                depth[event.thread] += 1
        elif isinstance(event, ReturnEvent):
            depth[event.thread] -= 1
            assert depth[event.thread] >= 1
        elif isinstance(event, ThreadExitEvent):
            assert depth[event.thread] == 1
    assert depth[0] == 1


def test_caller_consistency(small_program):
    """Each call's caller is the current top frame of its thread."""
    spec = WorkloadSpec(calls=3000, seed=7)
    stack = {0: [small_program.main]}
    for event in collect(small_program, spec):
        if isinstance(event, CallEvent):
            assert event.caller == stack[event.thread][-1]
            if event.kind is CallKind.TAIL:
                stack[event.thread][-1] = event.callee
            else:
                stack[event.thread].append(event.callee)
        elif isinstance(event, ReturnEvent):
            stack[event.thread].pop()
        elif isinstance(event, ThreadStartEvent):
            stack[event.thread] = [event.entry]


def test_calls_use_existing_callsites(small_program):
    spec = WorkloadSpec(calls=2000, seed=9)
    for event in collect(small_program, spec):
        if isinstance(event, CallEvent):
            site = small_program.callsite(event.callsite)
            assert event.callee in site.targets
            assert small_program.callsite_owner(event.callsite) == event.caller


def test_samples_emitted_periodically(small_program):
    spec = WorkloadSpec(calls=2000, seed=3, sample_period=20)
    samples = sum(
        1 for e in collect(small_program, spec) if isinstance(e, SampleEvent)
    )
    assert samples > 50


def test_sampling_disabled(small_program):
    spec = WorkloadSpec(calls=500, seed=3, sample_period=0)
    assert not any(
        isinstance(e, SampleEvent) for e in collect(small_program, spec)
    )


def test_threads_spawn_and_exit(small_program):
    spec = WorkloadSpec(
        calls=3000,
        seed=3,
        threads=[
            ThreadSpec(thread=1, entry=2, spawn_at_call=100),
            ThreadSpec(thread=2, entry=3, spawn_at_call=500),
        ],
    )
    events = collect(small_program, spec)
    starts = [e for e in events if isinstance(e, ThreadStartEvent)]
    exits = [e for e in events if isinstance(e, ThreadExitEvent)]
    assert {s.thread for s in starts} == {1, 2}
    assert {x.thread for x in exits} == {1, 2}


def test_lazy_library_load_event_before_first_plt_call():
    program = generate_program(
        GeneratorConfig(seed=11, library_functions=6, libraries=2,
                        lazy_library=True)
    )
    lazy = [l for l in program.libraries.values() if l.load_lazily][0]
    spec = WorkloadSpec(calls=30_000, seed=3)
    loaded = False
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, LibraryLoadEvent) and event.library == lazy.name:
            loaded = True
        if isinstance(event, CallEvent) and event.callee in lazy.functions:
            assert loaded
            return
    # The lazy library may legitimately never be called for some seeds;
    # then no load event is required either.
    assert not loaded or True


def test_phase_changes_shift_hot_sites(small_program):
    base = WorkloadSpec(calls=6000, seed=3)
    phased = WorkloadSpec(
        calls=6000, seed=3, phases=[PhaseSpec(at_call=3000, seed=77)]
    )
    def hot_sites(spec, start, end):
        counts = Counter()
        calls = 0
        for event in collect(small_program, spec):
            if isinstance(event, CallEvent):
                calls += 1
                if start <= calls < end:
                    counts[event.callsite] += 1
        return {s for s, _c in counts.most_common(5)}

    before = hot_sites(phased, 0, 3000)
    after = hot_sites(phased, 3000, 6000)
    assert before != after


def test_recursion_affinity_creates_recursive_calls():
    program = generate_program(
        GeneratorConfig(seed=5, recursive_sites=4, recursion_weight=0.1)
    )
    spec = WorkloadSpec(calls=8000, seed=3, recursion_affinity=0.7)
    on_stack = [program.main]
    recursive_calls = 0
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, CallEvent):
            if event.callee in on_stack:
                recursive_calls += 1
            if event.kind is CallKind.TAIL:
                on_stack[-1] = event.callee
            else:
                on_stack.append(event.callee)
        elif isinstance(event, ReturnEvent):
            on_stack.pop()
    assert recursive_calls > 10


def test_run_workload_drives_engine(small_program):
    class Recorder:
        def __init__(self):
            self.count = 0

        def on_event(self, _event):
            self.count += 1

    recorder = Recorder()
    run_workload(small_program, WorkloadSpec(calls=500, seed=1), recorder)
    assert recorder.count > 500


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=15, deadline=None)
def test_property_stream_always_balanced(seed):
    program = generate_program(
        GeneratorConfig(seed=seed % 7, functions=20, edges=40,
                        recursive_sites=2, tail_fraction=0.1)
    )
    spec = WorkloadSpec(calls=800, seed=seed, recursion_affinity=0.3,
                        threads=[ThreadSpec(thread=1, entry=2,
                                            spawn_at_call=200)])
    depth = {}
    for event in TraceExecutor(program, spec).events():
        if isinstance(event, ThreadStartEvent):
            depth[event.thread] = 1
        elif isinstance(event, CallEvent):
            depth.setdefault(event.thread, 1)
            if event.kind is not CallKind.TAIL:
                depth[event.thread] += 1
        elif isinstance(event, ReturnEvent):
            depth[event.thread] -= 1
            assert depth[event.thread] >= 1
    for thread, d in depth.items():
        assert d == 1
