"""Program-model validation tests."""

import pytest

from repro.core.errors import ProgramModelError
from repro.core.events import CallKind
from repro.program.model import CallSiteDef, FunctionDef, LibraryDef, Program


def simple_program(**kwargs):
    functions = [
        FunctionDef(0, "main", callsites=[CallSiteDef(id=1, targets=[1])]),
        FunctionDef(1, "leaf"),
    ]
    return Program(functions, **kwargs)


def test_basic_construction():
    program = simple_program()
    assert program.num_functions == 2
    assert program.function(0).name == "main"
    assert program.callsite_owner(1) == 0
    assert program.callsite(1).targets == [1]


def test_callsite_without_targets_rejected():
    with pytest.raises(ProgramModelError):
        CallSiteDef(id=1, targets=[])


def test_target_weight_mismatch_rejected():
    with pytest.raises(ProgramModelError):
        CallSiteDef(id=1, targets=[1, 2], target_weights=[1.0])


def test_static_targets_default_to_dynamic():
    site = CallSiteDef(id=1, targets=[3, 4])
    assert site.static_targets == [3, 4]


def test_duplicate_function_id_rejected():
    with pytest.raises(ProgramModelError):
        Program([FunctionDef(0, "a"), FunctionDef(0, "b")])


def test_duplicate_callsite_rejected():
    functions = [
        FunctionDef(0, "main", callsites=[CallSiteDef(id=1, targets=[1])]),
        FunctionDef(1, "x", callsites=[CallSiteDef(id=1, targets=[0])]),
    ]
    with pytest.raises(ProgramModelError):
        Program(functions)


def test_unknown_entry_rejected():
    with pytest.raises(ProgramModelError):
        Program([FunctionDef(0, "main")], main=7)


def test_unknown_target_rejected():
    functions = [
        FunctionDef(0, "main", callsites=[CallSiteDef(id=1, targets=[9])]),
    ]
    with pytest.raises(ProgramModelError):
        Program(functions)


def test_unknown_lookups_raise():
    program = simple_program()
    with pytest.raises(ProgramModelError):
        program.function(42)
    with pytest.raises(ProgramModelError):
        program.callsite_owner(42)
    with pytest.raises(ProgramModelError):
        program.function(0).callsite(99)


def test_static_edges_expand_pointsto():
    functions = [
        FunctionDef(
            0,
            "main",
            callsites=[
                CallSiteDef(
                    id=1,
                    kind=CallKind.INDIRECT,
                    targets=[1],
                    static_targets=[1, 2],
                )
            ],
        ),
        FunctionDef(1, "a"),
        FunctionDef(2, "b"),
    ]
    program = Program(functions)
    edges = program.static_edges()
    assert len(edges) == 2
    assert {callee for _caller, callee, _cs, _k in edges} == {1, 2}


def test_lazy_library_hidden_from_static_view():
    functions = [
        FunctionDef(0, "main", callsites=[
            CallSiteDef(id=1, targets=[1]),
            CallSiteDef(id=2, kind=CallKind.PLT, targets=[2]),
        ]),
        FunctionDef(1, "app"),
        FunctionDef(2, "plugin_fn", library="plugin.so"),
    ]
    library = LibraryDef("plugin.so", functions=[2], load_lazily=True)
    program = Program(functions, libraries=[library])
    static = program.static_edges()
    assert all(callee != 2 for _c, callee, _cs, _k in static)
    full = program.static_edges(include_lazy_libraries=True)
    assert any(callee == 2 for _c, callee, _cs, _k in full)
    assert program.library_of(2) == "plugin.so"
    assert program.library_of(1) is None
