"""Generator tests: structure, determinism, parameter effects."""

from repro.core.events import CallKind
from repro.program.generator import GeneratorConfig, generate_program


def test_deterministic_in_seed():
    a = generate_program(GeneratorConfig(seed=5))
    b = generate_program(GeneratorConfig(seed=5))
    assert a.num_functions == b.num_functions
    sites_a = [(f.id, s.id, tuple(s.targets)) for f, s in a.all_callsites()]
    sites_b = [(f.id, s.id, tuple(s.targets)) for f, s in b.all_callsites()]
    assert sites_a == sites_b


def test_different_seeds_differ():
    a = generate_program(GeneratorConfig(seed=1))
    b = generate_program(GeneratorConfig(seed=2))
    sites_a = [(f.id, s.id, tuple(s.targets)) for f, s in a.all_callsites()]
    sites_b = [(f.id, s.id, tuple(s.targets)) for f, s in b.all_callsites()]
    assert sites_a != sites_b


def test_function_count_matches_config():
    program = generate_program(
        GeneratorConfig(functions=40, library_functions=6,
                        static_only_functions=10)
    )
    assert program.num_functions == 56


def test_every_function_has_a_caller():
    program = generate_program(GeneratorConfig(seed=9, functions=50))
    called = set()
    for _fn, site in program.all_callsites():
        called.update(site.targets)
    for fid in range(1, 50):  # app functions (main excluded)
        assert fid in called


def test_indirect_sites_present_with_false_targets():
    program = generate_program(
        GeneratorConfig(seed=3, indirect_fraction=0.2,
                        pointsto_false_targets=(3, 5))
    )
    indirect = [
        s for _f, s in program.all_callsites() if s.kind is CallKind.INDIRECT
    ]
    assert indirect
    assert any(len(s.static_targets) > len(s.targets) for s in indirect)


def test_static_only_edges_have_zero_weight():
    program = generate_program(GeneratorConfig(seed=3, static_only_edges=40))
    dead = [s for _f, s in program.all_callsites() if s.weight == 0]
    assert len(dead) >= 40


def test_hot_cycle_edges_point_backward():
    program = generate_program(
        GeneratorConfig(seed=3, hot_cycle_edges=10)
    )
    dead_backward = [
        (f.id, s.targets[0])
        for f, s in program.all_callsites()
        if s.weight == 0 and s.targets[0] < f.id
    ]
    assert dead_backward


def test_recursive_sites_are_phase_stable():
    program = generate_program(GeneratorConfig(seed=3, recursive_sites=4))
    recursive = [
        s
        for f, s in program.all_callsites()
        if s.weight > 0 and any(t <= f.id for t in s.targets)
    ]
    assert recursive
    assert all(s.phase_stable for s in recursive)


def test_tail_sites_not_in_main():
    program = generate_program(GeneratorConfig(seed=7, tail_fraction=0.5))
    main_sites = program.function(0).callsites
    assert all(s.kind is not CallKind.TAIL for s in main_sites)


def test_libraries_created_with_plt_callsites():
    program = generate_program(
        GeneratorConfig(seed=3, library_functions=8, libraries=2,
                        lazy_library=True)
    )
    assert len(program.libraries) == 2
    lazy = [l for l in program.libraries.values() if l.load_lazily]
    assert len(lazy) == 1
    plt = [s for _f, s in program.all_callsites() if s.kind is CallKind.PLT]
    assert len(plt) == 8


def test_scale_free_of_crashes_for_tiny_configs():
    program = generate_program(
        GeneratorConfig(functions=3, edges=3, library_functions=0,
                        static_only_functions=0, static_only_edges=0,
                        recursive_sites=1, indirect_fraction=0)
    )
    assert program.num_functions == 3
