"""Stack-walking, CCT and PCC baseline tests."""

from repro.baselines.cct import CctEngine
from repro.baselines.pcc import PccEngine
from repro.baselines.stackwalk import StackWalkEngine
from repro.core.events import (
    CallEvent,
    CallKind,
    ReturnEvent,
    SampleEvent,
    ThreadExitEvent,
    ThreadStartEvent,
)
from repro.program.trace import TraceExecutor, WorkloadSpec


def drive(engine, events):
    for event in events:
        engine.on_event(event)
    return engine


def simple_events():
    return [
        CallEvent(thread=0, callsite=1, caller=0, callee=1),
        CallEvent(thread=0, callsite=2, caller=1, callee=2),
        SampleEvent(thread=0),
        ReturnEvent(thread=0),
        CallEvent(thread=0, callsite=3, caller=1, callee=3),
        SampleEvent(thread=0),
        ReturnEvent(thread=0),
        ReturnEvent(thread=0),
    ]


class TestStackWalk:
    def test_contexts_recorded_at_samples(self):
        engine = drive(StackWalkEngine(root=0), simple_events())
        assert len(engine.contexts) == 2
        assert engine.contexts[0].functions() == (0, 1, 2)
        assert engine.contexts[1].functions() == (0, 1, 3)

    def test_walk_cost_proportional_to_depth(self):
        engine = drive(StackWalkEngine(root=0), simple_events())
        assert engine.stats.walked_frames == 3 + 3

    def test_walk_every_call_mode_charges_more(self):
        light = drive(StackWalkEngine(root=0), simple_events())
        heavy = drive(
            StackWalkEngine(root=0, walk_every_call=True), simple_events()
        )
        assert (
            heavy.cost.report.charges["stackwalk"]
            > light.cost.report.charges["stackwalk"]
        )

    def test_tail_call_replaces_frame(self):
        events = [
            CallEvent(thread=0, callsite=1, caller=0, callee=1),
            CallEvent(thread=0, callsite=2, caller=1, callee=2,
                      kind=CallKind.TAIL),
        ]
        engine = drive(StackWalkEngine(root=0), events)
        assert engine.current_context().functions() == (0, 2)

    def test_threads_tracked(self):
        events = [
            ThreadStartEvent(thread=1, parent=0, entry=5),
            CallEvent(thread=1, callsite=9, caller=5, callee=6),
            SampleEvent(thread=1),
            ReturnEvent(thread=1),
            ThreadExitEvent(thread=1),
        ]
        engine = drive(StackWalkEngine(root=0), events)
        assert engine.contexts[0].functions() == (5, 6)


class TestCct:
    def test_tree_builds_and_positions_track(self):
        engine = drive(CctEngine(root=0), simple_events())
        assert engine.num_nodes == 4  # root, 1, 2, 3
        assert len(engine.sampled_nodes) == 2
        first = engine.context_of(engine.sampled_nodes[0])
        assert first.functions() == (0, 1, 2)

    def test_repeated_paths_reuse_nodes(self):
        events = simple_events() + simple_events()
        engine = drive(CctEngine(root=0), events)
        assert engine.num_nodes == 4
        assert engine.stats.lookups == 6

    def test_tail_call_hangs_child_under_logical_parent(self):
        events = [
            CallEvent(thread=0, callsite=1, caller=0, callee=1),
            CallEvent(thread=0, callsite=2, caller=1, callee=2,
                      kind=CallKind.TAIL),
            SampleEvent(thread=0),
            ReturnEvent(thread=0),  # unwinds the whole chain
        ]
        engine = drive(CctEngine(root=0), events)
        sampled = engine.context_of(engine.sampled_nodes[0])
        assert sampled.functions() == (0, 1, 2)
        assert engine.current_context().functions() == (0,)

    def test_every_call_pays_a_lookup(self, small_program):
        spec = WorkloadSpec(calls=1000, seed=1)
        engine = CctEngine(root=small_program.main)
        engine.run(TraceExecutor(small_program, spec).events())
        assert engine.stats.lookups == 1000
        assert "cct" in engine.cost.report.charges


class TestPcc:
    def test_values_restore_on_return(self):
        engine = drive(PccEngine(root=0), simple_events())
        assert engine._values[0] == 0  # fully unwound

    def test_sampled_values_probabilistically_distinct(self, small_program):
        spec = WorkloadSpec(calls=5000, seed=2, sample_period=17)
        engine = PccEngine(root=small_program.main)
        engine.run(TraceExecutor(small_program, spec).events())
        stats = engine.finalize_stats()
        assert stats.samples > 100
        # PCC is probabilistic: collisions happen (that is the paper's
        # criticism of it), but most contexts get distinct values.
        assert stats.distinct_values >= stats.distinct_contexts * 0.9
        assert stats.collisions < stats.distinct_contexts * 0.1

    def test_same_context_same_value(self):
        events = simple_events() + simple_events()
        engine = drive(PccEngine(root=0), events)
        assert engine.sampled_values[0] == engine.sampled_values[2]
        assert engine.sampled_values[1] == engine.sampled_values[3]

    def test_different_contexts_different_values(self):
        engine = drive(PccEngine(root=0), simple_events())
        assert engine.sampled_values[0] != engine.sampled_values[1]

    def test_tail_call_keeps_chain_restore_value(self):
        events = [
            CallEvent(thread=0, callsite=1, caller=0, callee=1),
            CallEvent(thread=0, callsite=2, caller=1, callee=2,
                      kind=CallKind.TAIL),
            ReturnEvent(thread=0),
        ]
        engine = drive(PccEngine(root=0), events)
        assert engine._values[0] == 0
        assert engine.current_context().functions() == (0,)
