"""PCCE baseline tests: static graph, profiling, overflow fix, runtime."""

import pytest

from repro.baselines.pcce import (
    PcceEngine,
    build_static_graph,
    profile_edge_frequencies,
)
from repro.core.errors import EncodingError
from repro.core.events import CallEvent, SampleEvent
from repro.program.generator import GeneratorConfig, generate_program
from repro.program.trace import TraceExecutor, WorkloadSpec


def make_program(**kwargs):
    defaults = dict(
        seed=4,
        functions=30,
        edges=70,
        static_only_functions=15,
        static_only_edges=40,
        indirect_fraction=0.1,
        recursive_sites=2,
        library_functions=4,
    )
    defaults.update(kwargs)
    return generate_program(GeneratorConfig(**defaults))


def test_profile_counts_every_call():
    program = make_program()
    spec = WorkloadSpec(calls=2000, seed=1)
    profile = profile_edge_frequencies(program, spec)
    assert sum(profile.values()) == 2000


def test_static_graph_includes_never_executed_code():
    program = make_program()
    result = build_static_graph(program)
    dynamic_functions = 30 + 4  # app + libs
    assert result.static_nodes > dynamic_functions
    assert result.graph.num_edges > 70


def test_static_graph_excludes_lazy_libraries():
    program = make_program(lazy_library=True, library_functions=6, libraries=2)
    lazy = [l for l in program.libraries.values() if l.load_lazily][0]
    result = build_static_graph(program)
    for fid in lazy.functions:
        assert not result.graph.has_node(fid)


def test_overflow_fix_deletes_cold_edges():
    # A big static graph with heavy multiplicity overflows 64-bit ids.
    program = make_program(
        functions=200,
        edges=800,
        static_only_functions=200,
        static_only_edges=4000,
        pointsto_false_targets=(10, 20),
        indirect_fraction=0.2,
        max_fanout=40,
    )
    spec = WorkloadSpec(calls=3000, seed=1)
    profile = profile_edge_frequencies(program, spec)
    result = build_static_graph(program, profile, id_bits=16)
    assert result.overflowed
    assert result.deleted_edges > 0
    assert result.graph.num_edges < result.static_edges


def test_engine_decodes_profiled_workload_exactly():
    program = make_program()
    spec = WorkloadSpec(calls=4000, seed=2, sample_period=31,
                        recursion_affinity=0.4)
    profile = profile_edge_frequencies(program, spec)
    engine = PcceEngine(program, profile)
    expectations = []
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
        if isinstance(event, SampleEvent):
            expectations.append(
                (engine.samples[-1], engine.expected_context(event.thread))
            )
    decoder = engine.decoder()
    assert expectations
    for sample, expected in expectations:
        decoded = decoder.decode(sample)
        assert [s.function for s in decoded.steps] == [
            s.function for s in expected.steps
        ]


def test_engine_never_reencodes():
    program = make_program()
    spec = WorkloadSpec(calls=4000, seed=2)
    engine = PcceEngine(program, profile_edge_frequencies(program, spec))
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
    assert engine.stats.reencodings == 0
    assert engine.timestamp == 0
    with pytest.raises(EncodingError):
        engine.reencode()


def test_no_handler_invocations_for_static_edges():
    program = make_program()
    spec = WorkloadSpec(calls=4000, seed=2)
    engine = PcceEngine(program, profile_edge_frequencies(program, spec))
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
    # All executed edges were in the static graph: nothing "unknown".
    assert engine.unknown_edge_calls == 0
    assert engine.stats.handler_invocations == 0


def test_lazy_library_calls_are_unknown_and_cost_nothing():
    program = make_program(lazy_library=True, library_functions=6, libraries=2)
    lazy = [l for l in program.libraries.values() if l.load_lazily][0]
    spec = WorkloadSpec(calls=30_000, seed=6)
    engine = PcceEngine(program, profile_edge_frequencies(program, spec))
    lazy_called = False
    for event in TraceExecutor(program, spec).events():
        engine.on_event(event)
        if isinstance(event, CallEvent) and event.callee in lazy.functions:
            lazy_called = True
    if lazy_called:
        assert engine.unknown_edge_calls > 0
        assert "discovery" not in engine.cost.report.charges


def test_indirect_sites_always_inline_chains():
    from repro.core.indirect import DispatchStrategy

    program = make_program(indirect_fraction=0.2, indirect_targets=(6, 10))
    spec = WorkloadSpec(calls=2000, seed=2)
    engine = PcceEngine(program, profile_edge_frequencies(program, spec))
    assert engine.indirect.sites()
    for site in engine.indirect.sites():
        assert site.strategy is DispatchStrategy.INLINE_CACHE


def test_hot_edges_get_zero_encoding_with_profile():
    program = make_program()
    spec = WorkloadSpec(calls=6000, seed=2)
    profile = profile_edge_frequencies(program, spec)
    engine = PcceEngine(program, profile)
    dictionary = engine.current_dictionary
    # For each node with several encoded in-edges, the hottest profiled
    # edge must carry encoding 0.
    checked = 0
    for fn in engine.graph.functions():
        infos = dictionary.encoded_in_edges(fn)
        if len(infos) < 2:
            continue
        hottest = max(
            infos, key=lambda i: profile.get((i.callsite, i.callee), 0)
        )
        if profile.get((hottest.callsite, hottest.callee), 0) == 0:
            continue
        assert hottest.encoding == 0
        checked += 1
    assert checked > 0
