"""Size/age rotation for the JSONL trace mirror."""

import json

import pytest

from repro.obs import RotatingTraceStream, TraceEmitter


def record_line(index):
    return json.dumps({"seq": index, "event": "tick"}) + "\n"


def test_requires_some_rotation_policy(tmp_path):
    with pytest.raises(ValueError):
        RotatingTraceStream(str(tmp_path / "t.jsonl"), max_bytes=0)
    with pytest.raises(ValueError):
        RotatingTraceStream(str(tmp_path / "t.jsonl"), backups=-1)


def test_size_rotation_shifts_backups(tmp_path):
    path = tmp_path / "trace.jsonl"
    stream = RotatingTraceStream(str(path), max_bytes=100, backups=2)
    for index in range(12):
        stream.write(record_line(index))
    stream.close()
    assert stream.rotations > 0
    files = stream.files()
    assert str(path) == files[0]
    assert len(files) <= 3  # active + 2 backups
    # Every surviving line is intact JSON: rotation never splits records.
    seqs = []
    for name in files:
        for line in open(name).read().splitlines():
            seqs.append(json.loads(line)["seq"])
    # Newest records are always retained in the active file.
    assert 11 in seqs
    assert sorted(seqs) == list(range(min(seqs), 12))


def test_oldest_backup_is_dropped(tmp_path):
    path = tmp_path / "trace.jsonl"
    stream = RotatingTraceStream(str(path), max_bytes=30, backups=1)
    for index in range(20):
        stream.write(record_line(index))
    stream.close()
    assert stream.rotations >= 3
    assert len(stream.files()) == 2
    leftover = (tmp_path / "trace.jsonl.2")
    assert not leftover.exists()


def test_zero_backups_truncates_in_place(tmp_path):
    path = tmp_path / "trace.jsonl"
    stream = RotatingTraceStream(str(path), max_bytes=50, backups=0)
    for index in range(10):
        stream.write(record_line(index))
    stream.close()
    assert stream.files() == [str(path)]
    lines = path.read_text().splitlines()
    assert json.loads(lines[-1])["seq"] == 9


def test_age_rotation_uses_injected_clock(tmp_path):
    now = [1000.0]
    stream = RotatingTraceStream(
        str(tmp_path / "trace.jsonl"),
        max_bytes=10**9,
        max_age_seconds=60.0,
        backups=2,
        clock=lambda: now[0],
    )
    stream.write(record_line(0))
    now[0] += 30.0
    stream.write(record_line(1))
    assert stream.rotations == 0
    now[0] += 31.0
    stream.write(record_line(2))
    assert stream.rotations == 1
    stream.close()
    assert len(stream.files()) == 2


def test_single_record_may_overshoot_but_rotates_next(tmp_path):
    path = tmp_path / "trace.jsonl"
    stream = RotatingTraceStream(str(path), max_bytes=10, backups=1)
    big = json.dumps({"seq": 0, "pad": "x" * 50}) + "\n"
    stream.write(big)  # first record always lands in the active file
    assert stream.rotations == 0
    stream.write(record_line(1))
    assert stream.rotations == 1
    stream.close()


def test_write_after_close_raises(tmp_path):
    stream = RotatingTraceStream(str(tmp_path / "t.jsonl"), max_bytes=100)
    stream.close()
    assert stream.closed
    with pytest.raises(ValueError):
        stream.write("x\n")


def test_append_resumes_existing_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text(record_line(0))
    stream = RotatingTraceStream(str(path), max_bytes=10**6)
    stream.write(record_line(1))
    stream.close()
    assert len(path.read_text().splitlines()) == 2


def test_emitter_mirrors_through_rotating_stream(tmp_path):
    """The emitter's bounded ring is unchanged; only the mirror rotates."""
    path = tmp_path / "trace.jsonl"
    stream = RotatingTraceStream(str(path), max_bytes=200, backups=2)
    emitter = TraceEmitter(capacity=4, stream=stream)
    for index in range(25):
        emitter.emit("tick", index=index)
    stream.flush()
    assert len(emitter) == 4  # in-memory semantics intact
    assert emitter.emitted == 25
    assert stream.rotations > 0
    mirrored = []
    for name in stream.files():
        mirrored.extend(json.loads(line) for line in open(name))
    assert any(record["index"] == 24 for record in mirrored)
    stream.close()


def test_read_rotated_jsonl_chronological(tmp_path):
    from repro.obs import read_rotated_jsonl, rotated_files

    path = tmp_path / "trace.jsonl"
    stream = RotatingTraceStream(str(path), max_bytes=200, backups=3)
    emitter = TraceEmitter(capacity=4, stream=stream)
    for index in range(30):
        emitter.emit("tick", index=index)
    stream.close()
    shards = rotated_files(str(path))
    assert shards[-1] == str(path)  # active file last = newest
    records = list(read_rotated_jsonl(str(path)))
    indexes = [record["index"] for record in records]
    # Oldest-first and strictly increasing across the shard boundary.
    assert indexes == sorted(indexes)
    assert indexes[-1] == 29


def test_read_rotated_jsonl_skips_torn_lines(tmp_path):
    from repro.obs import read_rotated_jsonl

    path = tmp_path / "trace.jsonl"
    (tmp_path / "trace.jsonl.1").write_text('{"seq": 0}\n{"torn": \n')
    path.write_text('\n{"seq": 1}\nnot-json\n')
    records = list(read_rotated_jsonl(str(path)))
    assert [record["seq"] for record in records] == [0, 1]


def test_read_rotated_jsonl_finds_shards_beyond_backups(tmp_path):
    from repro.obs import read_rotated_jsonl

    path = tmp_path / "trace.jsonl"
    for index in (1, 2, 3, 4, 5):
        (tmp_path / ("trace.jsonl.%d" % index)).write_text(
            '{"shard": %d}\n' % index
        )
    # A reader configured with fewer backups than exist still reads all.
    records = list(read_rotated_jsonl(str(path), backups=3))
    assert [record["shard"] for record in records] == [5, 4, 3, 2, 1]
