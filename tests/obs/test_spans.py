"""Span recorder + consumer-side reconstruction (repro.obs.spans)."""

import io
import json

import pytest

from repro.obs import (
    DEFAULT_SPAN_CAPACITY,
    NULL_SPANS,
    PIPELINE_STAGES,
    SPAN_SCHEMA,
    RotatingTraceStream,
    SpanContext,
    SpanRecorder,
    build_waterfall,
    group_traces,
    load_span_records,
    stage_summary,
)
from repro.obs.spans import is_span_record


def make_recorder(**kwargs):
    """Deterministic recorder: fixed clocks, sequential ids."""
    counter = {"n": 0}

    def ids():
        counter["n"] += 1
        return "t%032d" % counter["n"], "s%015d" % counter["n"]

    ticks = {"wall": 0.0, "mono": 0.0}

    def clock():
        ticks["wall"] += 1.0
        return ticks["wall"]

    def monotonic():
        ticks["mono"] += 0.5
        return ticks["mono"]

    kwargs.setdefault("clock", clock)
    kwargs.setdefault("monotonic", monotonic)
    kwargs.setdefault("id_source", ids)
    return SpanRecorder("test", **kwargs)


class TestSpanRecorder:
    def test_span_record_shape(self):
        recorder = make_recorder()
        with recorder.span("emit.flush", stage="emit", frames=3):
            pass
        (record,) = recorder.spans()
        assert record["schema"] == SPAN_SCHEMA
        assert record["name"] == "emit.flush"
        assert record["stage"] == "emit"
        assert record["svc"] == "test"
        assert record["attrs"] == {"frames": 3}
        assert record["dur"] == pytest.approx(0.5)
        assert "parent" not in record

    def test_nested_spans_share_trace_and_parent(self):
        recorder = make_recorder()
        with recorder.span("outer", stage="emit") as outer:
            with recorder.span("inner", stage="send") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        inner_rec, outer_rec = recorder.spans()
        assert inner_rec["trace"] == outer_rec["trace"]
        assert inner_rec["parent"] == outer_rec["span"]

    def test_new_trace_forces_root_inside_open_span(self):
        recorder = make_recorder()
        with recorder.span("outer") as outer:
            with recorder.span("root2", new_trace=True) as fresh:
                assert fresh.trace_id != outer.trace_id
                assert fresh.parent_id is None

    def test_explicit_parent_continues_propagated_trace(self):
        recorder = make_recorder()
        parent = SpanContext("cafe" * 8, "beef" * 4)
        with recorder.span("ingest.fold", stage="fold", parent=parent):
            pass
        (record,) = recorder.spans()
        assert record["trace"] == parent.trace_id
        assert record["parent"] == parent.span_id

    def test_current_reflects_innermost_open_span(self):
        recorder = make_recorder()
        assert recorder.current() is None
        with recorder.span("outer") as outer:
            assert recorder.current().span_id == outer.span_id
        assert recorder.current() is None

    def test_exception_sets_error_attr_and_closes(self):
        recorder = make_recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("boom"):
                raise RuntimeError("nope")
        (record,) = recorder.spans()
        assert record["attrs"]["error"] == "RuntimeError"
        assert recorder.current() is None

    def test_double_finish_raises(self):
        recorder = make_recorder()
        span = recorder.span("once")
        span.finish()
        with pytest.raises(ValueError):
            span.finish()

    def test_record_after_the_fact(self):
        recorder = make_recorder()
        parent = SpanContext("ab" * 16, "cd" * 8)
        record = recorder.record(
            "ingest.admit", stage="admit", duration=0.25, parent=parent,
            outcome="folded",
        )
        assert record["trace"] == parent.trace_id
        assert record["parent"] == parent.span_id
        assert record["dur"] == 0.25
        assert record["attrs"] == {"outcome": "folded"}
        assert recorder.spans(stage="admit") == [record]

    def test_ring_bounds_and_dropped_counter(self):
        recorder = make_recorder(capacity=4)
        for index in range(10):
            recorder.record("r%d" % index)
        assert len(recorder) == 4
        assert recorder.emitted == 10
        assert recorder.dropped == 6
        names = [r["name"] for r in recorder.spans()]
        assert names == ["r6", "r7", "r8", "r9"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder("test", capacity=0)

    def test_default_capacity(self):
        assert SpanRecorder("test").capacity == DEFAULT_SPAN_CAPACITY

    def test_stream_mirroring_is_sorted_jsonl(self):
        stream = io.StringIO()
        recorder = make_recorder(stream=stream)
        with recorder.span("emit.flush", stage="emit"):
            pass
        line = stream.getvalue()
        assert line.endswith("\n")
        assert json.loads(line) == recorder.spans()[0]
        assert line == json.dumps(recorder.spans()[0], sort_keys=True) + "\n"

    def test_failing_stream_detaches_but_keeps_recording(self):
        class Broken:
            def write(self, data):
                raise OSError("disk gone")

        recorder = make_recorder(stream=Broken())
        recorder.record("first")
        assert recorder.stream is None
        recorder.record("second")
        assert len(recorder) == 2

    def test_spans_filtering(self):
        recorder = make_recorder()
        recorder.record("a", stage="emit")
        recorder.record("b", stage="fold")
        recorder.record("a", stage="fold")
        assert len(recorder.spans(stage="fold")) == 2
        assert len(recorder.spans(name="a")) == 2
        assert len(recorder.spans(stage="fold", name="a")) == 1


class TestNullSpans:
    def test_disabled_and_inert(self):
        assert NULL_SPANS.enabled is False
        span = NULL_SPANS.span("anything", stage="emit")
        with span:
            span.set(key="value")
        assert NULL_SPANS.record("x") == {}
        assert NULL_SPANS.spans() == []
        assert NULL_SPANS.current() is None
        assert len(NULL_SPANS) == 0
        NULL_SPANS.flush()
        NULL_SPANS.clear()

    def test_null_span_is_shared_and_stateless(self):
        a = NULL_SPANS.span("a")
        b = NULL_SPANS.span("b")
        assert a is b
        assert a.attrs == {}


class TestSpanContext:
    def test_frame_field_round_trip(self):
        context = SpanContext("ab" * 16, "cd" * 8)
        field = context.to_frame_field()
        assert field == {"id": context.trace_id, "span": context.span_id}
        parsed = SpanContext.from_frame_field(field)
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id

    @pytest.mark.parametrize(
        "field",
        [None, "nope", 7, {}, {"id": "x"}, {"span": "y"},
         {"id": 3, "span": "y"}, {"id": "", "span": "y"}],
    )
    def test_malformed_frame_field_returns_none(self, field):
        assert SpanContext.from_frame_field(field) is None


class TestConsumers:
    def test_is_span_record_rejects_other_jsonl(self):
        assert not is_span_record({"event": "call", "fn": 3})
        assert not is_span_record({"schema": SPAN_SCHEMA})
        recorder = make_recorder()
        assert is_span_record(recorder.record("ok"))

    def test_group_traces_sorts_by_start(self):
        recorder = make_recorder()
        recorder.record("late", trace_id="T1", ts=5.0)
        recorder.record("early", trace_id="T1", ts=1.0)
        recorder.record("other", trace_id="T2", ts=3.0)
        traces = group_traces(recorder.spans() + [{"not": "a span"}])
        assert set(traces) == {"T1", "T2"}
        assert [r["name"] for r in traces["T1"]] == ["early", "late"]

    def test_stage_summary_percentiles(self):
        recorder = make_recorder()
        for duration in (0.1, 0.2, 0.3, 0.4):
            recorder.record("ingest.fold", stage="fold", duration=duration)
        summary = stage_summary(recorder.spans())
        row = summary["fold/ingest.fold"]
        assert row["count"] == 4
        assert row["total"] == pytest.approx(1.0)
        assert row["max"] == pytest.approx(0.4)
        assert row["p50"] == pytest.approx(0.3)

    def test_build_waterfall_nests_children(self):
        recorder = make_recorder()
        with recorder.span("root", stage="emit"):
            with recorder.span("child", stage="send"):
                with recorder.span("grandchild", stage="send"):
                    pass
        (trace,) = group_traces(recorder.spans()).values()
        rows = build_waterfall(trace)
        assert [(depth, r["name"]) for depth, r in rows] == [
            (0, "root"), (1, "child"), (2, "grandchild"),
        ]

    def test_build_waterfall_promotes_orphans(self):
        # Parent span lost (rotated away): the child still shows, as a
        # root of its own.
        rows = build_waterfall(
            [
                {"schema": SPAN_SCHEMA, "trace": "T", "span": "a",
                 "parent": "gone", "name": "orphan", "stage": "fold",
                 "ts": 1.0, "dur": 0.1},
            ]
        )
        assert [(depth, r["name"]) for depth, r in rows] == [(0, "orphan")]

    def test_pipeline_stages_constant(self):
        assert PIPELINE_STAGES == (
            "emit", "spool", "send", "admit", "fold", "publish"
        )

    def test_load_span_records_folds_rotated_shards(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        stream = RotatingTraceStream(path, max_bytes=400, backups=3)
        recorder = make_recorder(stream=stream)
        for index in range(12):
            recorder.record("span%02d" % index, stage="emit", duration=0.01)
        stream.write(json.dumps({"event": "call", "fn": 1}) + "\n")
        stream.close()
        names = [r["name"] for r in load_span_records([path])]
        # Oldest-first across shards, non-span lines skipped; the
        # oldest shard may have rotated out of the backup window.
        assert names == sorted(names)
        assert names[-1] == "span11"
        assert len(names) >= 4
