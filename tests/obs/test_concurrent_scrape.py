"""Concurrent scrape safety.

The profile server scrapes engine statistics and the Prometheus
exposition from daemon threads while the workload thread is inside
``process_batch`` — including mid-stream re-encoding passes.  The
engine gives no stronger guarantee than "reads never raise and counters
never go backwards"; this suite pins exactly that.
"""

import threading

from repro.core.engine import DacceEngine
from repro.obs import Telemetry
from repro.prof import CCTAggregator
from repro.program.generator import GeneratorConfig, generate_program
from repro.program.trace import TraceExecutor, ThreadSpec, WorkloadSpec


def build_workload(calls=60_000):
    program = generate_program(
        GeneratorConfig(seed=13, recursive_sites=3, indirect_fraction=0.12)
    )
    spec = WorkloadSpec(
        calls=calls,
        seed=14,
        sample_period=0,
        recursion_affinity=0.4,
        threads=[ThreadSpec(thread=1, entry=2, spawn_at_call=calls // 10)],
    )
    return program, spec


MONOTONIC_KEYS = ("calls", "returns", "reencodings", "profile_samples")


def test_scrapes_survive_batched_ingest_and_reencode():
    program, spec = build_workload()
    telemetry = Telemetry()
    engine = DacceEngine(root=program.main, telemetry=telemetry)
    aggregator = CCTAggregator()
    aggregator.bind_metrics(telemetry.registry)
    engine.install_sample_hook(
        64, lambda sample, weight: aggregator.add_decoded(
            engine.decoder().decode_best_effort(sample),
            weight,
            timestamp=sample.timestamp,
        )
    )

    errors = []
    done = threading.Event()

    def scrape():
        last = {key: 0 for key in MONOTONIC_KEYS}
        last_prof = 0.0
        while not done.is_set():
            try:
                snapshot = engine.stats_snapshot()
                for key in MONOTONIC_KEYS:
                    value = snapshot[key]
                    assert value >= last[key], (
                        "%s went backwards: %s -> %s" % (key, last[key], value)
                    )
                    last[key] = value
                text = telemetry.to_prometheus()
                assert "dacce_events_total" in text
                assert "dacce_prof_samples_total" in text
                stats = aggregator.stats()
                weight = float(stats["weight"])
                assert weight >= last_prof, "prof weight went backwards"
                last_prof = weight
                engine.ccstack_stats()
            except Exception as error:  # noqa: BLE001 - the assertion target
                errors.append(error)
                return

    scrapers = [threading.Thread(target=scrape) for _ in range(4)]
    for thread in scrapers:
        thread.start()
    try:
        # Feed the fast lane in small slices so scrapes interleave with
        # many process_batch calls, several of which re-encode.
        batch = []
        for record in TraceExecutor(program, spec).compact_events():
            batch.append(record)
            if len(batch) == 256:
                engine.process_batch(batch)
                batch.clear()
        if batch:
            engine.process_batch(batch)
    finally:
        done.set()
        for thread in scrapers:
            thread.join(timeout=30)

    assert not errors, "scrape raised: %r" % errors[0]
    assert engine.stats.reencodings >= 1, "no re-encoding happened mid-stream"
    assert engine.stats.profile_samples > 0
    final = engine.stats_snapshot()
    assert final["calls"] == engine.stats.calls
    # The scrape has a consistent post-run view too.
    assert aggregator.stats()["samples"] == engine.stats.profile_samples


def test_scrape_during_explicit_reencode():
    """Drive reencode() directly (not via triggers) under scrape load."""
    program, spec = build_workload(calls=20_000)
    telemetry = Telemetry()
    engine = DacceEngine(root=program.main, telemetry=telemetry)

    errors = []
    done = threading.Event()

    def scrape():
        while not done.is_set():
            try:
                engine.stats_snapshot()
                telemetry.to_prometheus()
            except Exception as error:  # noqa: BLE001
                errors.append(error)
                return

    scraper = threading.Thread(target=scrape)
    scraper.start()
    try:
        events = list(TraceExecutor(program, spec).compact_events())
        third = len(events) // 3
        engine.process_batch(events[:third])
        engine.reencode(reasons=("scrape-test",))
        engine.process_batch(events[third:2 * third])
        engine.reencode(reasons=("scrape-test",))
        engine.process_batch(events[2 * third:])
    finally:
        done.set()
        scraper.join(timeout=30)
    assert not errors, "scrape raised: %r" % errors[0]
    assert engine.stats.reencodings >= 2
